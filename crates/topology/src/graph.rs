//! Topology data model.

use innet_click::ClickConfig;
use innet_packet::Cidr;
use serde::{Deserialize, Serialize};

/// Index of a node within a [`Topology`].
pub type NodeId = usize;

/// Default link capacity when none is specified: 10 GbE, the paper's
/// testbed NICs (§6 "10Gb Ethernet").
pub const DEFAULT_LINK_BANDWIDTH_BPS: u64 = 10_000_000_000;

/// Default one-way link latency when none is specified: 50 µs, a
/// same-PoP wire. Wide-area links set their own (see
/// [`crate::generate_fleet`]).
pub const DEFAULT_LINK_LATENCY_NS: u64 = 50_000;

/// Deployment attributes of a processing platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Address pool from which module addresses are assigned.
    pub addr_pool: Cidr,
    /// Whether traffic from the Internet can reach this platform at all
    /// (the paper's Figure 3: Platforms 1 and 2 are not reachable from
    /// the outside, only Platform 3 is).
    pub external: bool,
    /// Maximum number of concurrent processing modules.
    pub capacity: usize,
    /// Physical memory in MB (drives the VM-count model of §6).
    pub mem_mb: u64,
    /// CPU cores.
    pub cores: u32,
}

impl Default for PlatformSpec {
    fn default() -> Self {
        PlatformSpec {
            addr_pool: "192.0.2.0/24".parse().expect("valid literal"),
            external: true,
            capacity: 1000,
            mem_mb: 16 * 1024,
            cores: 4,
        }
    }
}

/// What a topology node is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The Internet edge: arbitrary external traffic enters and leaves
    /// here.
    Internet,
    /// A subnet of the operator's own customers.
    ClientSubnet(Cidr),
    /// A router: longest-prefix-match over `(prefix, output port)`.
    Router(Vec<(Cidr, usize)>),
    /// An operator middlebox expressed as a Click configuration whose
    /// `FromNetfront(i)`/`ToNetfront(i)` elements bind to the node's
    /// topology ports.
    Middlebox(ClickConfig),
    /// A processing platform.
    Platform(PlatformSpec),
}

/// A named topology node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopoNode {
    /// Unique node name.
    pub name: String,
    /// Node kind and configuration.
    pub kind: NodeKind,
}

/// A directed link between node ports, with capacity attributes.
///
/// Bandwidth and latency are integers (bits per second, nanoseconds) so
/// the struct stays `Eq + Hash` and generation stays bit-identical
/// across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Source output port.
    pub from_port: usize,
    /// Destination node.
    pub to: NodeId,
    /// Destination input port.
    pub to_port: usize,
    /// Link capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency in nanoseconds.
    pub latency_ns: u64,
}

/// Attributes of a shortest (minimum-latency) path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathAttrs {
    /// Total one-way latency along the path in nanoseconds.
    pub latency_ns: u64,
    /// Bottleneck (minimum) link bandwidth along the path.
    pub bandwidth_bps: u64,
    /// Number of links traversed.
    pub hops: u32,
}

/// Errors raised while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoError {
    /// A node name was used twice.
    DuplicateName(String),
    /// A referenced node does not exist.
    UnknownNode(String),
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoError::DuplicateName(n) => write!(f, "duplicate node '{n}'"),
            TopoError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
        }
    }
}

impl std::error::Error for TopoError {}

/// The operator's network graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<TopoNode>,
    /// Directed links.
    pub links: Vec<Link>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node, returning its id.
    pub fn add(&mut self, name: impl Into<String>, kind: NodeKind) -> Result<NodeId, TopoError> {
        let name = name.into();
        if self.index_of(&name).is_some() {
            return Err(TopoError::DuplicateName(name));
        }
        self.nodes.push(TopoNode { name, kind });
        Ok(self.nodes.len() - 1)
    }

    /// Looks up a node id by name.
    pub fn index_of(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &TopoNode {
        &self.nodes[id]
    }

    /// Adds a directed link with default capacity attributes.
    pub fn link(&mut self, from: NodeId, from_port: usize, to: NodeId, to_port: usize) {
        self.link_with(
            from,
            from_port,
            to,
            to_port,
            DEFAULT_LINK_BANDWIDTH_BPS,
            DEFAULT_LINK_LATENCY_NS,
        );
    }

    /// Adds a directed link with explicit bandwidth and latency.
    #[allow(clippy::too_many_arguments)]
    pub fn link_with(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
        bandwidth_bps: u64,
        latency_ns: u64,
    ) {
        self.links.push(Link {
            from,
            from_port,
            to,
            to_port,
            bandwidth_bps,
            latency_ns,
        });
    }

    /// Adds a pair of links wiring `a` and `b` in both directions on the
    /// given ports (out and in share the port index on each side).
    pub fn link_bidir(&mut self, a: NodeId, a_port: usize, b: NodeId, b_port: usize) {
        self.link(a, a_port, b, b_port);
        self.link(b, b_port, a, a_port);
    }

    /// Like [`Topology::link_bidir`] but with explicit bandwidth and
    /// latency shared by both directions.
    #[allow(clippy::too_many_arguments)]
    pub fn link_bidir_with(
        &mut self,
        a: NodeId,
        a_port: usize,
        b: NodeId,
        b_port: usize,
        bandwidth_bps: u64,
        latency_ns: u64,
    ) {
        self.link_with(a, a_port, b, b_port, bandwidth_bps, latency_ns);
        self.link_with(b, b_port, a, a_port, bandwidth_bps, latency_ns);
    }

    /// The link leaving `(node, port)`, if any.
    pub fn out_link(&self, from: NodeId, from_port: usize) -> Option<&Link> {
        self.links
            .iter()
            .find(|l| l.from == from && l.from_port == from_port)
    }

    /// All platform node ids.
    pub fn platforms(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Platform(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// All client-subnet node ids with their CIDRs, ascending by id.
    pub fn client_subnets(&self) -> Vec<(NodeId, Cidr)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.kind {
                NodeKind::ClientSubnet(cidr) => Some((i, *cidr)),
                _ => None,
            })
            .collect()
    }

    /// The PoP index a node belongs to, parsed from the `"pop{N}-"`
    /// name prefix that [`crate::generate_fleet`] assigns (core and
    /// aggregation nodes belong to no PoP).
    pub fn pop_of(&self, id: NodeId) -> Option<usize> {
        let name = &self.nodes.get(id)?.name;
        let rest = name.strip_prefix("pop")?;
        let digits = rest.split('-').next()?;
        digits.parse().ok()
    }

    /// Node ids in PoP `pop` (see [`Topology::pop_of`]), ascending.
    pub fn pop_members(&self, pop: usize) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.pop_of(i) == Some(pop))
            .collect()
    }

    /// Minimum-latency paths from `src` to every node (Dijkstra over
    /// [`Link::latency_ns`], deterministic: ties break on the smaller
    /// node id). `result[n]` is `None` when `n` is unreachable; the
    /// source itself gets a zero-latency, infinite-bandwidth path.
    ///
    /// The controller's placement scoring and the fleet fabric both
    /// lean on this: latency drives candidate ranking and cross-host
    /// delivery times, bottleneck bandwidth drives link headroom and
    /// migration transfer cost.
    pub fn paths_from(&self, src: NodeId) -> Vec<Option<PathAttrs>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        let mut out: Vec<Option<PathAttrs>> = vec![None; n];
        if src >= n {
            return out;
        }
        // Adjacency: per-node outgoing (to, latency, bandwidth).
        let mut adj: Vec<Vec<(NodeId, u64, u64)>> = vec![Vec::new(); n];
        for l in &self.links {
            if l.from < n && l.to < n {
                adj[l.from].push((l.to, l.latency_ns, l.bandwidth_bps));
            }
        }
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        out[src] = Some(PathAttrs {
            latency_ns: 0,
            bandwidth_bps: u64::MAX,
            hops: 0,
        });
        heap.push(Reverse((0, src)));
        while let Some(Reverse((dist, node))) = heap.pop() {
            let Some(cur) = out[node] else { continue };
            if dist > cur.latency_ns {
                continue; // Stale heap entry.
            }
            for &(next, lat, bw) in &adj[node] {
                let cand = PathAttrs {
                    latency_ns: cur.latency_ns.saturating_add(lat),
                    bandwidth_bps: cur.bandwidth_bps.min(bw),
                    hops: cur.hops.saturating_add(1),
                };
                let better = match out[next] {
                    None => true,
                    // Strict improvement only: equal-latency alternatives
                    // keep the first (lowest-id-reached) path, so the
                    // result is independent of heap internals.
                    Some(p) => cand.latency_ns < p.latency_ns,
                };
                if better {
                    out[next] = Some(cand);
                    heap.push(Reverse((cand.latency_ns, next)));
                }
            }
        }
        out
    }

    /// Count of middlebox nodes (the x-axis of Figure 10).
    pub fn middlebox_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Middlebox(_)))
            .count()
    }

    /// The paper's Figure 3 topology.
    ///
    /// ```text
    /// internet ── border router ──┬── nat&fw1 ── platform1
    ///                             ├── nat&fw2 ── http-optimizer ── platform2
    ///                             ├── platform3            (externally reachable)
    ///                             └── clients (172.16.0.0/16)
    /// ```
    ///
    /// Platforms 1 and 2 sit behind operator NAT/firewall middleboxes and
    /// are not reachable from the Internet; HTTP traffic toward clients
    /// is steered through the HTTP optimizer.
    pub fn figure3() -> Topology {
        let mut t = Topology::new();
        let internet = t.add("internet", NodeKind::Internet).expect("fresh");
        let clients = t
            .add(
                "clients",
                NodeKind::ClientSubnet("172.16.0.0/16".parse().expect("valid literal")),
            )
            .expect("fresh");

        // Border router: port 0 internet, 1..=3 platforms, 4 clients.
        let router = t
            .add(
                "border",
                NodeKind::Router(vec![
                    ("192.0.2.0/24".parse().expect("valid"), 1),
                    ("198.51.100.0/24".parse().expect("valid"), 2),
                    ("203.0.113.0/24".parse().expect("valid"), 3),
                    ("172.16.0.0/16".parse().expect("valid"), 4),
                    (Cidr::ANY, 0),
                ]),
            )
            .expect("fresh");

        // Operator middleboxes guarding platforms 1 and 2: stateful
        // firewalls that only let operator-side traffic out.
        let fw_cfg = ClickConfig::parse(
            r#"
            in  :: FromNetfront(0);
            out :: FromNetfront(1);
            fw  :: StatefulFirewall(allow tcp, allow udp, allow icmp);
            to_in  :: ToNetfront(0);
            to_out :: ToNetfront(1);
            in  -> [1]fw;  fw[1] -> to_out;
            out -> [0]fw;  fw[0] -> to_in;
            "#,
        )
        .expect("valid literal config");
        let natfw1 = t
            .add("natfw1", NodeKind::Middlebox(fw_cfg.clone()))
            .expect("fresh");
        let natfw2 = t.add("natfw2", NodeKind::Middlebox(fw_cfg)).expect("fresh");

        // The HTTP optimizer on the path to platform 2 (it rewrites the
        // TOS byte of web traffic; what matters is that it *modifies*
        // HTTP flows, which the static checks must notice).
        let http_opt_cfg = ClickConfig::parse(
            r#"
            in :: FromNetfront(0);
            c  :: IPClassifier(tcp src port 80 or tcp dst port 80, -);
            opt :: SetTOS(46);
            out :: ToNetfront(1);
            rin :: FromNetfront(1);
            rout :: ToNetfront(0);
            in -> c; c[0] -> opt -> out; c[1] -> out;
            rin -> rout;
            "#,
        )
        .expect("valid literal config");
        let http_opt = t
            .add("HTTPOptimizer", NodeKind::Middlebox(http_opt_cfg))
            .expect("fresh");

        let p1 = t
            .add(
                "platform1",
                NodeKind::Platform(PlatformSpec {
                    addr_pool: "192.0.2.0/24".parse().expect("valid"),
                    external: false,
                    ..PlatformSpec::default()
                }),
            )
            .expect("fresh");
        let p2 = t
            .add(
                "platform2",
                NodeKind::Platform(PlatformSpec {
                    addr_pool: "198.51.100.0/24".parse().expect("valid"),
                    external: false,
                    ..PlatformSpec::default()
                }),
            )
            .expect("fresh");
        let p3 = t
            .add(
                "platform3",
                NodeKind::Platform(PlatformSpec {
                    addr_pool: "203.0.113.0/24".parse().expect("valid"),
                    external: true,
                    ..PlatformSpec::default()
                }),
            )
            .expect("fresh");

        t.link_bidir(internet, 0, router, 0);
        t.link_bidir(router, 1, natfw1, 0);
        t.link_bidir(natfw1, 1, p1, 0);
        t.link_bidir(router, 2, natfw2, 0);
        t.link_bidir(natfw2, 1, http_opt, 0);
        t.link_bidir(http_opt, 1, p2, 0);
        t.link_bidir(router, 3, p3, 0);
        t.link_bidir(router, 4, clients, 0);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape() {
        let t = Topology::figure3();
        assert_eq!(t.platforms().len(), 3);
        assert_eq!(t.middlebox_count(), 3);
        assert!(t.index_of("HTTPOptimizer").is_some());
        // Platform 3 is the only externally reachable one.
        let externals: Vec<&str> = t
            .platforms()
            .into_iter()
            .filter(|&p| matches!(&t.node(p).kind, NodeKind::Platform(s) if s.external))
            .map(|p| t.node(p).name.as_str())
            .collect();
        assert_eq!(externals, vec!["platform3"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add("x", NodeKind::Internet).unwrap();
        assert!(t.add("x", NodeKind::Internet).is_err());
    }

    #[test]
    fn out_link_lookup() {
        let t = Topology::figure3();
        let router = t.index_of("border").unwrap();
        let internet = t.index_of("internet").unwrap();
        let l = t.out_link(router, 0).unwrap();
        assert_eq!(l.to, internet);
        assert!(t.out_link(router, 99).is_none());
    }

    #[test]
    fn bidirectional_links_paired() {
        let t = Topology::figure3();
        for l in &t.links {
            assert!(
                t.links.iter().any(|m| m.from == l.to && m.to == l.from),
                "every link has a reverse"
            );
        }
    }
}
