//! Regression tests: malformed tenant input must surface as typed
//! `DeployError`s, never as a controller panic. Requests are built both
//! from hostile text and programmatically via `ClientRequest::click` /
//! `ClientRequest::stock`, which bypass every parse-time check.

use innet::prelude::*;

fn fresh() -> Controller {
    let mut c = Controller::new(Topology::figure3());
    c.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    c
}

/// Every deploy below must return; `Err` is fine, unwinding is not.
fn deploy_must_not_panic(
    label: &str,
    request: ClientRequest,
) -> Result<DeployResponse, DeployError> {
    let mut c = fresh();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.deploy("mobile-7", request)
    }));
    outcome.unwrap_or_else(|_| panic!("deploy panicked on {label}"))
}

#[test]
fn unknown_element_class_is_a_typed_error() {
    let req = ClientRequest::parse("module m:\nFromNetfront() -> Frobnicator(3) -> ToNetfront();")
        .unwrap();
    let err = deploy_must_not_panic("unknown element class", req).unwrap_err();
    // The lint pass (IN-L002) catches this before symbolic modeling; both
    // are typed refusals.
    assert!(
        matches!(err, DeployError::BadConfig(_) | DeployError::Lint(_)),
        "{err}"
    );
}

#[test]
fn dangling_connections_are_a_typed_error() {
    // A connection between elements that were never declared.
    let mut cfg = ClickConfig::new();
    cfg.connect("ghost", 0, "phantom", 0);
    let req = ClientRequest::click("m", cfg);
    let err = deploy_must_not_panic("dangling connection", req).unwrap_err();
    // The lint pass (IN-L005) catches this before symbolic modeling; both
    // are typed refusals.
    assert!(
        matches!(err, DeployError::BadConfig(_) | DeployError::Lint(_)),
        "{err}"
    );
}

#[test]
fn empty_config_does_not_panic() {
    // Zero elements, zero connections: nothing to check, nothing to
    // crash on. Accept or reject, but return.
    let req = ClientRequest::click("m", ClickConfig::new());
    let _ = deploy_must_not_panic("empty config", req);
}

#[test]
fn self_loop_does_not_panic() {
    // An element wired to itself: the symbolic executor must bound the
    // loop rather than recurse forever or panic.
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("c", "Counter", &[]);
    cfg.connect("in", 0, "c", 0);
    cfg.connect("c", 0, "c", 0);
    let req = ClientRequest::click("m", cfg);
    let _ = deploy_must_not_panic("self loop", req);
}

#[test]
fn hostile_arguments_do_not_panic() {
    // Arguments that are not remotely parseable as what the element
    // expects.
    for args in [
        &["-1"][..],
        &["999999999999999999999999"][..],
        &["\u{0}\u{ffff}"][..],
        &["$SELF$SELF$SELF"][..],
        &[""][..],
    ] {
        let mut cfg = ClickConfig::new();
        cfg.add_element("in", "FromNetfront", &[]);
        cfg.add_element("f", "IPFilter", args);
        cfg.add_element("out", "ToNetfront", &[]);
        cfg.connect("in", 0, "f", 0);
        cfg.connect("f", 0, "out", 0);
        let req = ClientRequest::click("m", cfg);
        let _ = deploy_must_not_panic("hostile args", req);
    }
}

#[test]
fn unknown_client_is_a_typed_error() {
    let mut c = fresh();
    let req = ClientRequest::parse("stock s: geo-dns").unwrap();
    let err = c.deploy("nobody", req).unwrap_err();
    assert!(matches!(err, DeployError::UnknownClient(_)), "{err}");
    // Unknown-client outcomes are not verdicts about the request and must
    // not be memoized.
    assert_eq!(c.cached_verdicts(), 0);
}

#[test]
fn kill_of_unknown_module_is_a_typed_error() {
    let mut c = fresh();
    assert!(matches!(
        c.kill(12345),
        Err(DeployError::NoSuchModule(12345))
    ));
}

#[test]
fn garbage_requirements_are_typed_errors() {
    // A requirement way-point that exists in no network.
    let req = ClientRequest::stock("m", StockModule::GeoDns)
        .require(Requirement::parse("reach from internet -> Narnia").unwrap());
    let err = deploy_must_not_panic("unknown way-point", req).unwrap_err();
    assert!(
        matches!(
            err,
            DeployError::Verify(_) | DeployError::NoFeasiblePlacement { .. }
        ),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Hostile classifier patterns: parse AND push, on both engines.
// ---------------------------------------------------------------------------

use innet::click::CompiledRouter;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// A three-element pipeline around one hostile middle element.
fn pipeline(class: &str, args: &[&str]) -> ClickConfig {
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("x", class, args);
    cfg.add_element("out", "ToNetfront", &[]);
    cfg.connect("in", 0, "x", 0);
    cfg.connect("x", 0, "out", 0);
    cfg
}

/// Drives `frames` through `cfg` on the interpreter and on the compiled
/// plan (when the hostile arguments survive construction). Returning at
/// all is the assertion; any index-arithmetic panic fails the test.
fn push_both_engines(cfg: &ClickConfig, frames: Vec<Packet>) {
    let registry = Registry::standard();
    if let Ok(mut r) = Router::from_config(cfg, &registry) {
        r.push_batch(frames.clone(), 0, 100);
    }
    if let Ok(mut c) = CompiledRouter::compile(cfg, &registry) {
        c.push_batch(frames, 0, 100);
    }
}

/// Frames chosen to stress bounds logic: empty, truncated, exactly
/// header-sized, oversized, and one well-formed UDP packet.
fn hostile_frames(len: usize) -> Vec<Packet> {
    vec![
        Packet::from_bytes(Vec::new()),
        Packet::from_bytes(vec![0xAA; len % 33]),
        Packet::from_bytes(vec![0x45; 34]),
        PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 5000)
            .dst(Ipv4Addr::new(203, 0, 113, 7), 80)
            .pad_to(64 + len % 1600)
            .build(),
    ]
}

#[test]
fn max_offset_classifier_pattern_does_not_panic() {
    // Regression for the `ByteCheck::matches` overflow: at
    // `offset = usize::MAX` the old `offset + value.len()` bound
    // wrapped (out-of-bounds indexing in release) or overflowed (panic
    // in debug). The first pushed packet took the panic.
    let cfg = pipeline("Classifier", &["18446744073709551615/ffff", "-"]);
    let req = ClientRequest::click("m", cfg.clone());
    let _ = deploy_must_not_panic("max-offset classifier", req);
    push_both_engines(&cfg, hostile_frames(64));
}

/// Hostile rule fragments for the tcpdump-style classifiers: nonsense
/// tokens, out-of-range values, and a few valid rules so construction
/// sometimes succeeds and the push path actually runs.
const HOSTILE_IP_RULES: &[&str] = &[
    "dst host 203.0.113.7",
    "allow udp dst port 65535",
    "dst port 18446744073709551615",
    "src net 256.256.256.256/99",
    "proto 999",
    "tcp syn",
    "udp",
    "allow",
    "deny all",
    "-",
    "",
    "%%%%",
    "\u{0}\u{ffff}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw byte patterns with tenant-controlled offsets, values and
    /// masks: every combination must parse-or-refuse and push without
    /// unwinding, at any offset up to `u64::MAX` and against frames
    /// from empty to oversized.
    #[test]
    fn hostile_classifier_patterns_never_panic(
        offset in proptest::arbitrary::any::<u64>(),
        val_len in 1usize..48,
        with_mask in proptest::arbitrary::any::<bool>(),
        frame_len in 0usize..4096,
    ) {
        let mut term = format!("{offset}/{}", "ff".repeat(val_len));
        if with_mask {
            term.push_str(&format!("%{}", "aa".repeat(val_len)));
        }
        let cfg = pipeline("Classifier", &[&term, "-"]);
        let _ = deploy_must_not_panic("hostile byte pattern", ClientRequest::click("m", cfg.clone()));
        push_both_engines(&cfg, hostile_frames(frame_len));
    }

    /// Rule-list classifiers (`IPClassifier`/`IPFilter`) built from
    /// hostile fragments, pushed as well as parsed.
    #[test]
    fn hostile_ip_rules_never_panic(
        picks in proptest::collection::vec(0usize..HOSTILE_IP_RULES.len(), 1..4),
        frame_len in 0usize..4096,
    ) {
        let args: Vec<&str> = picks.iter().map(|&i| HOSTILE_IP_RULES[i]).collect();
        for class in ["IPClassifier", "IPFilter"] {
            let cfg = pipeline(class, &args);
            let _ = deploy_must_not_panic("hostile ip rules", ClientRequest::click("m", cfg.clone()));
            push_both_engines(&cfg, hostile_frames(frame_len));
        }
    }

    /// `MarkIPHeader(N)` writes a tenant-chosen L3 offset into packet
    /// metadata; header accessors downstream must bounds-check it at
    /// any value.
    #[test]
    fn hostile_mark_ip_header_offsets_never_panic(
        offset in proptest::arbitrary::any::<u64>(),
        frame_len in 0usize..4096,
    ) {
        let arg = format!("{offset}");
        let mut cfg = ClickConfig::new();
        cfg.add_element("in", "FromNetfront", &[]);
        cfg.add_element("m", "MarkIPHeader", &[&arg]);
        cfg.add_element("t", "DecIPTTL", &[]);
        cfg.add_element("out", "ToNetfront", &[]);
        cfg.connect("in", 0, "m", 0);
        cfg.connect("m", 0, "t", 0);
        cfg.connect("t", 0, "out", 0);
        let _ = deploy_must_not_panic("hostile mark offset", ClientRequest::click("m", cfg.clone()));
        push_both_engines(&cfg, hostile_frames(frame_len));
    }
}
