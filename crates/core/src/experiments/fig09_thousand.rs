//! Figure 9: cumulative throughput as the platform scales to 1,000
//! clients at 8 Mb/s each, with 50/100/200 client configurations packed
//! per VM.
//!
//! Demand grows linearly (n × 8 Mb/s); the platform sustains it as long
//! as (a) memory admits the required VM count and (b) the measured
//! per-core packet rate of a consolidated VM covers the aggregate packet
//! load. Both constraints are evaluated: memory from the paper-calibrated
//! model, packet rate measured natively on this machine.

use innet_packet::PacketBuilder;
use innet_platform::{
    calib::{vm_mem_mb, VmTimingKind},
    consolidated_config, NativeRunner,
};
use std::net::Ipv4Addr;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Active clients.
    pub clients: usize,
    /// VMs instantiated (⌈clients / per_vm⌉).
    pub vms: usize,
    /// Offered load in Gbit/s (clients × 8 Mb/s).
    pub offered_gbps: f64,
    /// Sustained throughput in Gbit/s.
    pub achieved_gbps: f64,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScaleParams {
    /// Clients per VM (the paper plots 50, 100, 200).
    pub per_vm: usize,
    /// Per-client rate (8 Mb/s).
    pub per_client_bps: f64,
    /// Host memory in MB (16 GB, the paper's cheap Xeon E3).
    pub host_mem_mb: u64,
    /// Frame size used for the packet-rate measurement.
    pub frame: usize,
}

impl Default for ScaleParams {
    fn default() -> Self {
        ScaleParams {
            per_vm: 100,
            per_client_bps: 8e6,
            host_mem_mb: 16 * 1024,
            frame: 1472,
        }
    }
}

/// Measures the single-core packet rate of one consolidated VM with
/// `per_vm` tenant configurations.
pub fn measure_core_pps(per_vm: usize, frame: usize) -> f64 {
    let clients: Vec<Ipv4Addr> = (0..per_vm)
        .map(|i| Ipv4Addr::new(10, 60, (i / 250) as u8, (1 + i % 250) as u8))
        .collect();
    let cfg = consolidated_config(&clients);
    let mut runner = NativeRunner::new(&cfg).expect("valid config");
    let pkts: Vec<_> = clients
        .iter()
        .take(64)
        .map(|&c| PacketBuilder::tcp().dst(c, 80).pad_to(frame).build())
        .collect();
    runner.run(&pkts, 2);
    runner.run(&pkts, 20).pps()
}

/// Sweeps client counts up to 1,000.
pub fn thousand_clients(params: &ScaleParams, steps: &[usize]) -> Vec<ScalePoint> {
    let core_pps = measure_core_pps(params.per_vm, params.frame);
    let per_client_pps = params.per_client_bps / (params.frame as f64 * 8.0);
    steps
        .iter()
        .map(|&clients| {
            let vms = clients.div_ceil(params.per_vm);
            let mem_ok = (vms as u64 * vm_mem_mb(VmTimingKind::ClickOs)) <= params.host_mem_mb;
            let offered_gbps = clients as f64 * params.per_client_bps / 1e9;
            // All VMs are pinned to a single core in the paper's run: the
            // measured core rate caps the aggregate.
            let capacity_gbps = core_pps * params.frame as f64 * 8.0 / 1e9;
            let achieved = if mem_ok {
                offered_gbps.min(capacity_gbps)
            } else {
                0.0
            };
            let _ = per_client_pps;
            ScalePoint {
                clients,
                vms,
                offered_gbps,
                achieved_gbps: achieved,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_linearly_to_eight_gbps() {
        let params = ScaleParams::default();
        let pts = thousand_clients(&params, &[100, 200, 400, 600, 800, 1000]);
        // Offered load is linear; with 1,000 clients it is 8 Gb/s.
        assert!((pts.last().expect("nonempty").offered_gbps - 8.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(w[1].offered_gbps > w[0].offered_gbps);
            assert!(w[1].achieved_gbps >= w[0].achieved_gbps * 0.99);
        }
    }

    #[test]
    fn memory_admits_all_group_sizes() {
        for per_vm in [50usize, 100, 200] {
            let pts = thousand_clients(
                &ScaleParams {
                    per_vm,
                    ..ScaleParams::default()
                },
                &[1000],
            );
            let p = pts[0];
            assert_eq!(p.vms, 1000usize.div_ceil(per_vm));
            assert!(
                p.achieved_gbps > 0.0,
                "16 GB hosts all configurations: {p:?}"
            );
        }
    }
}
