//! TCP header view.

use crate::{PacketError, Result};
use serde::{Deserialize, Serialize};

/// Length in bytes of a TCP header without options.
pub const TCP_HDR_LEN: usize = 20;

/// TCP flag bits (lower byte of the flags word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Whether all bits in `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// Whether this is a bare SYN (SYN set, ACK clear) — the "new flow"
    /// signal used by the platform's on-the-fly VM instantiation.
    pub fn is_initial_syn(self) -> bool {
        self.contains(TcpFlags::SYN) && !self.contains(TcpFlags::ACK)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

/// A typed view of a TCP header over a byte buffer that begins at the first
/// byte of the TCP header.
#[derive(Debug)]
pub struct TcpView<T> {
    buf: T,
    header_len: usize,
}

impl<T: AsRef<[u8]>> TcpView<T> {
    /// Validates data-offset/length and wraps the buffer.
    pub fn new(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        if b.len() < TCP_HDR_LEN {
            return Err(PacketError::Truncated {
                what: "TCP header",
                need: TCP_HDR_LEN,
                have: b.len(),
            });
        }
        let data_off = b[12] >> 4;
        if data_off < 5 {
            return Err(PacketError::BadHeaderLength(data_off));
        }
        let header_len = usize::from(data_off) * 4;
        if b.len() < header_len {
            return Err(PacketError::Truncated {
                what: "TCP options",
                need: header_len,
                have: b.len(),
            });
        }
        Ok(TcpView { buf, header_len })
    }

    fn b(&self) -> &[u8] {
        self.buf.as_ref()
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.b()[4..8].try_into().expect("validated length"))
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.b()[8..12].try_into().expect("validated length"))
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.b()[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.b()[14], self.b()[15]])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpView<T> {
    /// Validates and wraps the buffer for mutation.
    pub fn new_mut(buf: T) -> Result<Self> {
        TcpView::new(buf)
    }

    fn bm(&mut self) -> &mut [u8] {
        self.buf.as_mut()
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.bm()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.bm()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, s: u32) {
        self.bm()[4..8].copy_from_slice(&s.to_be_bytes());
    }

    /// Sets the acknowledgment number.
    pub fn set_ack(&mut self, a: u32) {
        self.bm()[8..12].copy_from_slice(&a.to_be_bytes());
    }

    /// Sets the flag bits.
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.bm()[13] = f.0;
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, w: u16) {
        self.bm()[14..16].copy_from_slice(&w.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<u8> {
        let mut b = vec![0u8; TCP_HDR_LEN];
        b[12] = 5 << 4;
        b
    }

    #[test]
    fn roundtrip() {
        let mut buf = base();
        let mut v = TcpView::new_mut(&mut buf[..]).unwrap();
        v.set_src_port(80);
        v.set_dst_port(55555);
        v.set_seq(0x01020304);
        v.set_ack(0x0a0b0c0d);
        v.set_flags(TcpFlags::SYN | TcpFlags::ACK);
        v.set_window(65535);
        assert_eq!(v.src_port(), 80);
        assert_eq!(v.dst_port(), 55555);
        assert_eq!(v.seq(), 0x01020304);
        assert_eq!(v.ack(), 0x0a0b0c0d);
        assert!(v.flags().contains(TcpFlags::SYN));
        assert!(v.flags().contains(TcpFlags::ACK));
        assert_eq!(v.window(), 65535);
    }

    #[test]
    fn initial_syn_detection() {
        assert!(TcpFlags::SYN.is_initial_syn());
        assert!(!(TcpFlags::SYN | TcpFlags::ACK).is_initial_syn());
        assert!(!TcpFlags::ACK.is_initial_syn());
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = base();
        buf[12] = 2 << 4;
        assert_eq!(
            TcpView::new(&buf[..]).unwrap_err(),
            PacketError::BadHeaderLength(2)
        );
    }

    #[test]
    fn options_need_room() {
        let mut buf = base();
        buf[12] = 8 << 4; // 32-byte header, 20-byte buffer.
        assert!(matches!(
            TcpView::new(&buf[..]),
            Err(PacketError::Truncated { .. })
        ));
    }
}
