//! `IPRewriter` — pattern-based header rewriting, Click style.

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_packet::{FlowKey, IpProto, Packet};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// One field of a rewrite pattern: keep (`-`) or overwrite with a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldSpec<T> {
    /// `-` — leave the field unchanged.
    Keep,
    /// Overwrite with this value.
    Set(T),
}

impl<T: Copy> FieldSpec<T> {
    /// Applies the spec to a current value.
    pub fn apply(self, cur: T) -> T {
        match self {
            FieldSpec::Keep => cur,
            FieldSpec::Set(v) => v,
        }
    }
}

/// The parsed `pattern SADDR SPORT DADDR DPORT FWD REV` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewritePattern {
    /// New source address.
    pub saddr: FieldSpec<Ipv4Addr>,
    /// New source port.
    pub sport: FieldSpec<u16>,
    /// New destination address.
    pub daddr: FieldSpec<Ipv4Addr>,
    /// New destination port.
    pub dport: FieldSpec<u16>,
    /// Output port for forward-direction packets.
    pub fwd_out: usize,
    /// Output port for reverse-direction packets.
    pub rev_out: usize,
}

fn parse_field<T: std::str::FromStr>(s: &str, what: &str) -> Result<FieldSpec<T>, ElementError> {
    if s == "-" {
        Ok(FieldSpec::Keep)
    } else {
        s.parse::<T>()
            .map(FieldSpec::Set)
            .map_err(|_| ElementError::BadArgs {
                class: "IPRewriter",
                message: format!("bad {what} '{s}'"),
            })
    }
}

impl RewritePattern {
    /// Parses the whitespace-separated pattern specification.
    pub fn parse(spec: &str) -> Result<RewritePattern, ElementError> {
        let bad = |message: String| ElementError::BadArgs {
            class: "IPRewriter",
            message,
        };
        let toks: Vec<&str> = spec.split_whitespace().collect();
        match toks.as_slice() {
            ["pattern", saddr, sport, daddr, dport, fwd, rev] => Ok(RewritePattern {
                saddr: parse_field(saddr, "source address")?,
                sport: parse_field(sport, "source port")?,
                daddr: parse_field(daddr, "destination address")?,
                dport: parse_field(dport, "destination port")?,
                fwd_out: fwd
                    .parse()
                    .map_err(|_| bad(format!("bad forward port '{fwd}'")))?,
                rev_out: rev
                    .parse()
                    .map_err(|_| bad(format!("bad reverse port '{rev}'")))?,
            }),
            _ => Err(bad(format!(
                "expected 'pattern SADDR SPORT DADDR DPORT FWD REV', got '{spec}'"
            ))),
        }
    }
}

/// `IPRewriter(pattern SADDR SPORT DADDR DPORT FWD REV)`.
///
/// Forward packets (input 0) have the non-`-` fields overwritten and leave
/// on output `FWD`; the element remembers the mapping so reverse packets
/// (input 1) addressed to the rewritten endpoint are restored and leave on
/// output `REV`. This is exactly how the paper's Figure 4 module steers
/// notifications to the client's private address.
#[derive(Debug)]
pub struct IPRewriter {
    pattern: RewritePattern,
    /// rewritten-flow (as seen by the far side, reversed) -> original flow.
    reverse_map: HashMap<FlowKey, FlowKey>,
    rewritten: u64,
    restored: u64,
    dropped: u64,
}

impl IPRewriter {
    /// Parses `IPRewriter(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<IPRewriter, ElementError> {
        args.expect_len(1)?;
        Ok(IPRewriter {
            pattern: RewritePattern::parse(args.str_at(0)?)?,
            reverse_map: HashMap::new(),
            rewritten: 0,
            restored: 0,
            dropped: 0,
        })
    }

    /// Counters: (rewritten, restored, dropped).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.rewritten, self.restored, self.dropped)
    }

    /// The configured rewrite pattern.
    pub fn pattern(&self) -> &RewritePattern {
        &self.pattern
    }

    fn apply(pkt: &mut Packet, key: FlowKey, new: FlowKey) {
        if let Ok(mut ip) = pkt.ipv4_mut() {
            ip.set_src(new.src);
            ip.set_dst(new.dst);
            ip.update_checksum();
        }
        match key.proto {
            IpProto::Udp => {
                if let Ok(mut u) = pkt.udp_mut() {
                    u.set_src_port(new.src_port);
                    u.set_dst_port(new.dst_port);
                }
            }
            IpProto::Tcp => {
                if let Ok(mut t) = pkt.tcp_mut() {
                    t.set_src_port(new.src_port);
                    t.set_dst_port(new.dst_port);
                }
            }
            _ => {}
        }
    }
}

impl Element for IPRewriter {
    fn class_name(&self) -> &'static str {
        "IPRewriter"
    }

    fn ports(&self) -> PortCount {
        let outs = self.pattern.fwd_out.max(self.pattern.rev_out) + 1;
        PortCount::new(2, outs)
    }

    fn push(&mut self, port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let Ok(key) = FlowKey::of(&pkt) else {
            self.dropped += 1;
            return;
        };
        match port {
            0 => {
                let new = FlowKey {
                    src: self.pattern.saddr.apply(key.src),
                    src_port: self.pattern.sport.apply(key.src_port),
                    dst: self.pattern.daddr.apply(key.dst),
                    dst_port: self.pattern.dport.apply(key.dst_port),
                    proto: key.proto,
                };
                // Remember how to undo this for replies: a reply to `new`
                // arrives with the reversed 5-tuple.
                self.reverse_map.insert(new.reversed(), key.reversed());
                IPRewriter::apply(&mut pkt, key, new);
                self.rewritten += 1;
                out.push(self.pattern.fwd_out, pkt);
            }
            _ => match self.reverse_map.get(&key).copied() {
                Some(orig) => {
                    IPRewriter::apply(&mut pkt, key, orig);
                    self.restored += 1;
                    out.push(self.pattern.rev_out, pkt);
                }
                None => self.dropped += 1,
            },
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(172, 16, 15, 133);
    const REMOTE: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
    const MODULE: Ipv4Addr = Ipv4Addr::new(5, 5, 5, 5);

    fn rewriter() -> IPRewriter {
        IPRewriter::from_args(&ConfigArgs::parse(
            "IPRewriter",
            "pattern - - 172.16.15.133 - 0 0",
        ))
        .unwrap()
    }

    #[test]
    fn figure4_dst_rewrite() {
        let mut rw = rewriter();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp()
            .src(REMOTE, 999)
            .dst(MODULE, 1500)
            .build();
        rw.push(0, pkt, &Context::default(), &mut s);
        let out = s.only(0).unwrap();
        let ip = out.ipv4().unwrap();
        assert_eq!(ip.dst(), CLIENT);
        assert_eq!(ip.src(), REMOTE, "source untouched (the '-' fields)");
        assert_eq!(out.udp().unwrap().dst_port(), 1500);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn reverse_direction_restored() {
        let mut rw = rewriter();
        let mut s = VecSink::new();
        rw.push(
            0,
            PacketBuilder::udp()
                .src(REMOTE, 999)
                .dst(MODULE, 1500)
                .build(),
            &Context::default(),
            &mut s,
        );
        // The client answers: src=CLIENT:1500 dst=REMOTE:999.
        let reply = PacketBuilder::udp()
            .src(CLIENT, 1500)
            .dst(REMOTE, 999)
            .build();
        rw.push(1, reply, &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 2);
        let restored = &s.pushed[1].1;
        // The reply must look like it came from the module address.
        assert_eq!(restored.ipv4().unwrap().src(), MODULE);
        assert_eq!(restored.ipv4().unwrap().dst(), REMOTE);
    }

    #[test]
    fn unknown_reverse_dropped() {
        let mut rw = rewriter();
        let mut s = VecSink::new();
        rw.push(
            1,
            PacketBuilder::udp().src(CLIENT, 1).dst(REMOTE, 2).build(),
            &Context::default(),
            &mut s,
        );
        assert!(s.pushed.is_empty());
        assert_eq!(rw.counters().2, 1);
    }

    #[test]
    fn full_rewrite_pattern() {
        let rw = IPRewriter::from_args(&ConfigArgs::parse(
            "IPRewriter",
            "pattern 1.1.1.1 1000 2.2.2.2 2000 0 1",
        ))
        .unwrap();
        assert_eq!(rw.ports().outputs, 2);
    }

    #[test]
    fn bad_patterns_rejected() {
        for bad in [
            "pattern - - - -",
            "pattern x - - - 0 0",
            "rewrite - - - - 0 0",
            "pattern - - - - a 0",
        ] {
            assert!(
                IPRewriter::from_args(&ConfigArgs::parse("IPRewriter", bad)).is_err(),
                "{bad} should fail"
            );
        }
    }
}
