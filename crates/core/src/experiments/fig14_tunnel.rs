//! Figure 14: SCTP throughput when tunneled over TCP versus UDP, as loss
//! varies — plus the §8 reachability-probe comparison.

use innet_sim::transport::{sctp_over_tcp, sctp_over_udp, TunnelPath};

/// One loss-rate point, averaged over seeds.
#[derive(Debug, Clone, Copy)]
pub struct TunnelPoint {
    /// Loss rate in percent.
    pub loss_pct: f64,
    /// SCTP-over-UDP goodput in Mb/s.
    pub udp_mbps: f64,
    /// SCTP-over-TCP goodput in Mb/s.
    pub tcp_mbps: f64,
}

/// Sweeps loss rates (the paper plots 0–5%).
pub fn tunnel_sweep(loss_pcts: &[f64], seeds: u64) -> Vec<TunnelPoint> {
    loss_pcts
        .iter()
        .map(|&pct| {
            let path = TunnelPath::paper(pct / 100.0);
            let avg =
                |f: &dyn Fn(u64) -> f64| -> f64 { (0..seeds).map(f).sum::<f64>() / seeds as f64 };
            TunnelPoint {
                loss_pct: pct,
                udp_mbps: avg(&|s| sctp_over_udp(&path, s).goodput_mbps),
                tcp_mbps: avg(&|s| sctp_over_tcp(&path, s).goodput_mbps),
            }
        })
        .collect()
}

/// §8: choosing the right tunnel. Probing UDP reachability through the
/// In-Net API takes one controller round-trip (~200 ms); discovering a
/// UDP-hostile path by timeout costs the SCTP INIT timer (3 s per spec).
#[derive(Debug, Clone, Copy)]
pub struct ProbeComparison {
    /// In-Net API reachability check latency (ms).
    pub api_probe_ms: f64,
    /// SCTP INIT timeout fallback latency (ms).
    pub timeout_fallback_ms: f64,
}

/// The probe-vs-timeout numbers (API latency from a figure-3-sized
/// controller request; timeout from RFC 4960's RTO.Initial).
pub fn probe_comparison(api_probe_ms: f64) -> ProbeComparison {
    ProbeComparison {
        api_probe_ms,
        timeout_fallback_ms: 3000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_beats_tcp_by_2_to_5x() {
        let pts = tunnel_sweep(&[1.0, 3.0, 5.0], 5);
        for p in &pts {
            let ratio = p.udp_mbps / p.tcp_mbps;
            assert!(
                (1.5..=8.0).contains(&ratio),
                "loss {}%: {} vs {} (ratio {ratio:.2})",
                p.loss_pct,
                p.udp_mbps,
                p.tcp_mbps
            );
        }
    }

    #[test]
    fn both_decline_with_loss() {
        let pts = tunnel_sweep(&[0.0, 1.0, 5.0], 5);
        assert!(pts[0].udp_mbps > pts[1].udp_mbps);
        assert!(pts[1].udp_mbps > pts[2].udp_mbps);
        assert!(pts[1].tcp_mbps > pts[2].tcp_mbps);
    }

    #[test]
    fn api_probe_is_an_order_faster_than_timeout() {
        let c = probe_comparison(200.0);
        assert!(c.timeout_fallback_ms / c.api_probe_ms >= 10.0);
    }
}
