//! # innet-sim
//!
//! Discrete-event network substrate for the In-Net wide-area experiments.
//!
//! The paper's evaluation mixes data-plane measurements (done natively by
//! `innet-platform`) with wide-area and device-level experiments that
//! depend on protocol and hardware dynamics: stacked congestion control
//! (Figure 14), connection starvation under Slowloris (Figure 15),
//! geolocation latency (Figure 16), 3G radio energy (Figure 13), and the
//! MAWI backbone workload (§6). This crate rebuilds those substrates:
//!
//! * [`des`] — a generic event queue with deterministic ordering.
//! * [`link`] — rate/latency/loss link arithmetic.
//! * [`transport`] — packet-level TCP-style and SCTP-style congestion
//!   control, plus the tunnel-stacking model (SCTP over TCP suffers the
//!   tunnel's in-order recovery stalls).
//! * [`energy`] — a 3G RRC state machine (IDLE/FACH/DCH with promotion
//!   and tail timers) integrated over a delivery schedule.
//! * [`workload`] — MAWI-style synthetic traces and active-flow counting.
//!
//! Everything is parameterized and deterministic given an RNG seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod energy;
pub mod link;
pub mod transport;
pub mod workload;
