//! Queueing elements: `Queue` and the batcher `TimedUnqueue`.

use std::any::Any;
use std::collections::VecDeque;

use innet_packet::Packet;

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// `Queue([CAPACITY])` — stores packets (tail-dropping beyond capacity,
/// default 1000) and releases everything stored on each tick.
#[derive(Debug)]
pub struct Queue {
    q: VecDeque<Packet>,
    cap: usize,
    dropped: u64,
    has_pending: bool,
}

impl Queue {
    /// Parses `Queue([CAPACITY])`.
    pub fn from_args(args: &ConfigArgs) -> Result<Queue, ElementError> {
        args.expect_len_range(0, 1)?;
        let cap: usize = args.parse_or(0, 1000)?;
        Ok(Queue {
            q: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
            has_pending: false,
        })
    }

    /// Packets currently stored.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Packets tail-dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for Queue {
    fn class_name(&self) -> &'static str {
        "Queue"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, _out: &mut dyn Sink) {
        if self.q.len() < self.cap {
            self.q.push_back(pkt);
            self.has_pending = true;
        } else {
            self.dropped += 1;
        }
    }

    fn tick(&mut self, _ctx: &Context, out: &mut dyn Sink) {
        while let Some(pkt) = self.q.pop_front() {
            out.push(0, pkt);
        }
        self.has_pending = false;
    }

    fn next_tick_ns(&self) -> Option<u64> {
        // Ready as soon as anything is queued.
        if self.has_pending {
            Some(0)
        } else {
            None
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `TimedUnqueue(INTERVAL_S[, BURST])` — the paper's batcher: stores
/// packets and releases up to `BURST` of them every `INTERVAL_S` seconds
/// (fractional seconds accepted; default burst 1).
///
/// The push-notification use case (paper §4.5 and Figure 13) instantiates
/// `TimedUnqueue(120, 100)` so a mobile device's radio only wakes every two
/// minutes.
#[derive(Debug)]
pub struct TimedUnqueue {
    interval_ns: u64,
    burst: usize,
    q: VecDeque<Packet>,
    /// Next scheduled release, set when the first packet arrives.
    next_release_ns: Option<u64>,
    /// Releases performed (for tests and the energy model).
    pub releases: u64,
}

impl TimedUnqueue {
    /// Creates a batcher with the given interval and burst.
    pub fn new(interval_ns: u64, burst: usize) -> TimedUnqueue {
        TimedUnqueue {
            interval_ns: interval_ns.max(1),
            burst: burst.max(1),
            q: VecDeque::new(),
            next_release_ns: None,
            releases: 0,
        }
    }

    /// Parses `TimedUnqueue(INTERVAL_S[, BURST])`.
    pub fn from_args(args: &ConfigArgs) -> Result<TimedUnqueue, ElementError> {
        args.expect_len_range(1, 2)?;
        let interval_s: f64 = args.parse_at(0)?;
        if interval_s <= 0.0 {
            return Err(ElementError::BadArgs {
                class: "TimedUnqueue",
                message: "interval must be positive".to_string(),
            });
        }
        let burst: usize = args.parse_or(1, 1)?;
        Ok(TimedUnqueue::new((interval_s * 1e9) as u64, burst))
    }

    /// Packets currently held.
    pub fn queued(&self) -> usize {
        self.q.len()
    }

    /// The configured batching interval in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }
}

impl Element for TimedUnqueue {
    fn class_name(&self) -> &'static str {
        "TimedUnqueue"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, ctx: &Context, _out: &mut dyn Sink) {
        if self.next_release_ns.is_none() {
            self.next_release_ns = Some(ctx.now_ns + self.interval_ns);
        }
        self.q.push_back(pkt);
    }

    fn tick(&mut self, ctx: &Context, out: &mut dyn Sink) {
        let Some(next) = self.next_release_ns else {
            return;
        };
        if ctx.now_ns < next {
            return;
        }
        self.releases += 1;
        for _ in 0..self.burst {
            match self.q.pop_front() {
                Some(pkt) => out.push(0, pkt),
                None => break,
            }
        }
        self.next_release_ns = if self.q.is_empty() {
            None
        } else {
            Some(ctx.now_ns + self.interval_ns)
        };
    }

    fn next_tick_ns(&self) -> Option<u64> {
        self.next_release_ns
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn queue_stores_and_releases_on_tick() {
        let mut q = Queue::from_args(&ConfigArgs::parse("Queue", "")).unwrap();
        let mut s = VecSink::new();
        q.push(0, PacketBuilder::udp().build(), &Context::at(0), &mut s);
        q.push(0, PacketBuilder::udp().build(), &Context::at(0), &mut s);
        assert!(s.pushed.is_empty());
        assert_eq!(q.len(), 2);
        q.tick(&Context::at(1), &mut s);
        assert_eq!(s.pushed.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_tail_drop() {
        let mut q = Queue::from_args(&ConfigArgs::parse("Queue", "2")).unwrap();
        let mut s = VecSink::new();
        for _ in 0..5 {
            q.push(0, PacketBuilder::udp().build(), &Context::at(0), &mut s);
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 3);
    }

    #[test]
    fn timed_unqueue_batches() {
        // 2-second interval, burst 3.
        let mut tu = TimedUnqueue::from_args(&ConfigArgs::parse("TimedUnqueue", "2, 3")).unwrap();
        let mut s = VecSink::new();
        for _ in 0..5 {
            tu.push(0, PacketBuilder::udp().build(), &Context::at(0), &mut s);
        }
        assert_eq!(tu.next_tick_ns(), Some(2_000_000_000));
        // Too early: nothing released.
        tu.tick(&Context::at(1_000_000_000), &mut s);
        assert!(s.pushed.is_empty());
        // First release: burst of 3.
        tu.tick(&Context::at(2_000_000_000), &mut s);
        assert_eq!(s.pushed.len(), 3);
        assert_eq!(tu.queued(), 2);
        // Second release empties it.
        tu.tick(&Context::at(4_000_000_000), &mut s);
        assert_eq!(s.pushed.len(), 5);
        assert_eq!(tu.next_tick_ns(), None);
        assert_eq!(tu.releases, 2);
    }

    #[test]
    fn fractional_interval() {
        let tu = TimedUnqueue::from_args(&ConfigArgs::parse("TimedUnqueue", "0.5")).unwrap();
        assert_eq!(tu.interval_ns(), 500_000_000);
    }

    #[test]
    fn bad_interval_rejected() {
        assert!(TimedUnqueue::from_args(&ConfigArgs::parse("TimedUnqueue", "0")).is_err());
        assert!(TimedUnqueue::from_args(&ConfigArgs::parse("TimedUnqueue", "")).is_err());
    }
}
