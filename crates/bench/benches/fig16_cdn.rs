//! Figure 16: CDF of 1 KB download delay from the origin versus the
//! In-Net CDN caches.

use innet::experiments::fig16_cdn::{cdn_downloads, percentile, CdnParams};
use innet_bench::Report;

fn main() {
    let clients = cdn_downloads(&CdnParams::default());
    let origin: Vec<f64> = clients.iter().map(|c| c.origin_ms).collect();
    let cdn: Vec<f64> = clients.iter().map(|c| c.cdn_ms).collect();

    let mut r = Report::new(
        "fig16_cdn",
        "Figure 16: 1 KB download delay CDF, 75 clients, origin vs CDN",
    );
    r.line(&format!(
        "{:>8} {:>12} {:>12}",
        "pct", "origin (ms)", "CDN (ms)"
    ));
    for p in [5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
        r.line(&format!(
            "{:>7}% {:>12.1} {:>12.1}",
            p,
            percentile(origin.clone(), p),
            percentile(cdn.clone(), p)
        ));
    }
    r.blank();
    r.line(&format!(
        "median {:.1}x lower, p90 {:.1}x lower (paper: 2x and 4x)",
        percentile(origin.clone(), 50.0) / percentile(cdn.clone(), 50.0),
        percentile(origin, 90.0) / percentile(cdn, 90.0)
    ));
    r.finish();
}
