//! Protocol tunneling (§8): deploying SCTP over the middlebox-ossified
//! Internet, and why the tunnel choice matters (Figure 14).
//!
//! Run with: `cargo run -p innet-examples --bin protocol_tunneling`

use innet::experiments::fig14_tunnel::{probe_comparison, tunnel_sweep};
use innet::prelude::*;

fn main() {
    // The client deploys a tunnel endpoint module: its own traffic is
    // encapsulated toward a registered peer; return traffic decapsulates.
    // For a *client* of the operator this verifies cleanly; a third party
    // would be sandboxed (Table 1's tunnel row).
    let mut ctl = Controller::new(Topology::figure3());
    ctl.register_client(
        "sctp-user",
        RequesterClass::Client,
        vec![
            "172.16.15.133".parse().unwrap(),
            "198.51.100.1".parse().unwrap(),
        ],
    );
    let req = ClientRequest::parse(
        r#"
        module tun:
        FromNetfront(0) -> UDPTunnelEncap($SELF, 7000, 198.51.100.1, 7001)
          -> ToNetfront(1);
        FromNetfront(1) -> UDPTunnelDecap() -> ToNetfront(0);
        "#,
    )
    .unwrap();
    let resp = ctl.deploy("sctp-user", req).expect("deployable");
    println!(
        "tunnel endpoint on {} at {} (sandboxed: {})",
        resp.platform, resp.public_addr, resp.sandboxed
    );

    // Which tunnel should carry SCTP? Figure 14's loss sweep.
    println!("\nSCTP goodput vs loss (100 Mb/s, 20 ms RTT), Mb/s:");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>6}",
        "loss", "UDP tunnel", "TCP tunnel", "ratio"
    );
    for p in tunnel_sweep(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 5) {
        let ratio = if p.tcp_mbps > 0.0 {
            p.udp_mbps / p.tcp_mbps
        } else {
            f64::INFINITY
        };
        println!(
            "{:>5}%  {:>10.1}  {:>10.1}  {:>5.1}x",
            p.loss_pct, p.udp_mbps, p.tcp_mbps, ratio
        );
    }

    // Choosing adaptively: probe UDP reachability through the In-Net API
    // instead of waiting for the SCTP INIT timer.
    let probe = probe_comparison((resp.compile_ns + resp.check_ns) as f64 / 1e6);
    println!(
        "\ntunnel selection: In-Net reachability probe {:.0} ms vs \
         {:.0} ms protocol-timeout fallback",
        probe.api_probe_ms, probe.timeout_fallback_ms
    );
}
