//! AST of the requirements language.

use innet_packet::{pattern::PatternExpr, Cidr};
use serde::{Deserialize, Serialize};

/// A vertex of the network graph, as named in a requirement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRef {
    /// Arbitrary traffic from outside the operator's network.
    Internet,
    /// The operator's residential/mobile client subnets.
    Client,
    /// A specific address or subnet.
    Addr(Cidr),
    /// A named network node (an operator middlebox such as
    /// `HTTPOptimizer`, or a whole processing module).
    Named(String),
    /// A port of a Click element inside a processing module
    /// (`module:element:port`; port 0 when omitted).
    ElementPort {
        /// Processing-module name.
        module: String,
        /// Element instance name within the module.
        element: String,
        /// Element port index.
        port: usize,
    },
}

impl std::fmt::Display for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeRef::Internet => write!(f, "internet"),
            NodeRef::Client => write!(f, "client"),
            NodeRef::Addr(c) => write!(f, "{c}"),
            NodeRef::Named(n) => write!(f, "{n}"),
            NodeRef::ElementPort {
                module,
                element,
                port,
            } => write!(f, "{module}:{element}:{port}"),
        }
    }
}

/// A header field that a `const` clause can pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstField {
    /// IP protocol number.
    Proto,
    /// Transport source port.
    SrcPort,
    /// Transport destination port.
    DstPort,
    /// IP source address.
    SrcAddr,
    /// IP destination address.
    DstAddr,
    /// Time-to-live.
    Ttl,
    /// DSCP/ECN byte.
    Tos,
    /// The payload bytes.
    Payload,
}

impl std::fmt::Display for ConstField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConstField::Proto => "proto",
            ConstField::SrcPort => "src port",
            ConstField::DstPort => "dst port",
            ConstField::SrcAddr => "src host",
            ConstField::DstAddr => "dst host",
            ConstField::Ttl => "ttl",
            ConstField::Tos => "tos",
            ConstField::Payload => "payload",
        };
        write!(f, "{s}")
    }
}

/// One way-point of a requirement: the node traffic must reach, the flow
/// it must match there, and the fields that must not have been modified
/// on the hop leading to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopSpec {
    /// The way-point.
    pub node: NodeRef,
    /// Flow specification the traffic must satisfy on arrival
    /// ([`PatternExpr::any`] when omitted).
    pub flow: PatternExpr,
    /// Fields that must be invariant on the hop from the previous
    /// way-point to this one.
    pub const_fields: Vec<ConstField>,
}

/// A full `reach from … -> …` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    /// Where the traffic originates.
    pub from: NodeRef,
    /// Flow specification constraining the originating traffic.
    pub from_flow: PatternExpr,
    /// The way-points, in order.
    pub hops: Vec<HopSpec>,
}

impl Requirement {
    /// Parses a requirement statement (see the crate docs for the
    /// grammar).
    pub fn parse(s: &str) -> Result<Requirement, crate::parse::PolicyParseError> {
        crate::parse::parse_requirement(s)
    }
}

impl std::fmt::Display for Requirement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reach from {}", self.from)?;
        for hop in &self.hops {
            write!(f, " -> {}", hop.node)?;
        }
        Ok(())
    }
}
