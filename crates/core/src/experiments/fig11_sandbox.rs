//! Figure 11: the data-plane cost of sandboxing, measured natively over a
//! packet-size sweep.
//!
//! A single VM receives traffic through a plain firewall versus the same
//! firewall behind a `ChangeEnforcer`. Small packets suffer most: the
//! enforcer's per-packet bookkeeping is a fixed cost, so it is a third of
//! the budget at 64 B and noise at 1472 B (paper: −1/3 at 64 B, −1/5 at
//! 128 B, unmeasurable above).

use innet_packet::{Packet, PacketBuilder};
use innet_platform::{plain_firewall, sandboxed_firewall, NativeRunner};
use std::net::Ipv4Addr;

/// One packet-size point.
#[derive(Debug, Clone, Copy)]
pub struct SandboxPoint {
    /// Frame size in bytes.
    pub frame: usize,
    /// RX rate without the sandbox, Mpps.
    pub plain_mpps: f64,
    /// RX rate with the sandbox, Mpps.
    pub sandboxed_mpps: f64,
}

impl SandboxPoint {
    /// Relative throughput drop (0..1).
    pub fn drop_fraction(&self) -> f64 {
        1.0 - self.sandboxed_mpps / self.plain_mpps
    }
}

const MODULE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

fn traffic(frame: usize) -> Vec<Packet> {
    (0..256)
        .map(|i| {
            PacketBuilder::udp()
                .src(
                    Ipv4Addr::new(8, 8, (i / 250) as u8, (1 + i % 250) as u8),
                    40_000 + i as u16,
                )
                .dst(MODULE, 1500)
                .pad_to(frame)
                .build()
        })
        .collect()
}

/// Measures both variants across frame sizes (the paper sweeps 64–1472).
pub fn sandbox_cost(frames: &[usize], rounds: usize) -> Vec<SandboxPoint> {
    frames
        .iter()
        .map(|&frame| {
            let pkts = traffic(frame);
            let mut plain = NativeRunner::new(&plain_firewall()).expect("valid config");
            let mut boxed =
                NativeRunner::new(&sandboxed_firewall(MODULE, Ipv4Addr::new(198, 51, 100, 1)))
                    .expect("valid config");
            plain.run(&pkts, 2);
            boxed.run(&pkts, 2);
            // Interleave measurement halves to cancel drift.
            let p1 = plain.run(&pkts, rounds / 2);
            let b1 = boxed.run(&pkts, rounds / 2);
            let b2 = boxed.run(&pkts, rounds / 2);
            let p2 = plain.run(&pkts, rounds / 2);
            let plain_pps = (p1.pps() + p2.pps()) / 2.0;
            let boxed_pps = (b1.pps() + b2.pps()) / 2.0;
            SandboxPoint {
                frame,
                plain_mpps: plain_pps / 1e6,
                sandboxed_mpps: boxed_pps / 1e6,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_forward_everything() {
        let pkts = traffic(64);
        let mut plain = NativeRunner::new(&plain_firewall()).unwrap();
        let mut boxed =
            NativeRunner::new(&sandboxed_firewall(MODULE, Ipv4Addr::new(198, 51, 100, 1))).unwrap();
        let p = plain.run(&pkts, 3);
        let b = boxed.run(&pkts, 3);
        assert_eq!(p.transmitted, p.packets);
        assert_eq!(b.transmitted, b.packets);
    }

    #[test]
    fn sweep_produces_points() {
        let pts = sandbox_cost(&[64, 512], 6);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.plain_mpps > 0.0 && p.sandboxed_mpps > 0.0);
            // The drop can be noisy in debug builds but must not exceed
            // the whole budget.
            assert!(p.drop_fraction() < 0.9, "{p:?}");
        }
    }
}
