//! Regression tests for the observability layer and the silent-loss
//! fixes that came with it:
//!
//! * packets arriving in a VM's suspend window are buffered and
//!   delivered after an automatic resume (they used to vanish);
//! * tenants are billed only for delivered/buffered packets;
//! * flow churn does not grow the switch controller's bookkeeping maps
//!   without bound;
//! * `deploy_batch` folds *all* shard statistics, so batch and serial
//!   deployments report identical counts;
//! * every drop increments a reason-labeled counter, making
//!   `packets == delivered + buffered + Σ drops_by_reason` a checkable
//!   invariant;
//! * histogram quantiles are monotone and sums are exact.

use std::net::Ipv4Addr;

use innet::obs;
use innet::platform::{ClientEntry, Host, SwitchController, VmState};
use innet::prelude::*;
use proptest::prelude::*;

const CLIENT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);
const STRANGER: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);

fn client_entry(stateful: bool) -> ClientEntry {
    ClientEntry {
        addr: CLIENT,
        config: ClickConfig::parse(
            "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
        )
        .unwrap(),
        stateful,
    }
}

fn udp_to(addr: Ipv4Addr) -> Packet {
    PacketBuilder::udp()
        .src(Ipv4Addr::new(8, 8, 8, 8), 99)
        .dst(addr, 1500)
        .build()
}

const SEC: u64 = 1_000_000_000;

/// The suspend-window regression: a packet that arrives while the VM is
/// `Suspending` must be buffered and delivered after the automatic
/// resume, not silently dropped.
#[test]
fn suspend_window_packet_survives() {
    let reg = obs::Registry::new();
    let mut host = Host::with_obs(16 * 1024, &reg);
    let mut sw = SwitchController::new();
    sw.attach_metrics(&reg);
    sw.register(client_entry(true));

    // Boot, flush, and reach steady state.
    sw.on_packet(&mut host, udp_to(CLIENT), 0).unwrap();
    host.advance(SEC);
    sw.on_packet(&mut host, udp_to(CLIENT), SEC).unwrap();
    let vm = sw.binding(CLIENT).unwrap();

    // Idle reclamation of a stateful tenant starts a suspend.
    sw.reclaim_idle(&mut host, 3 * SEC, SEC);
    assert!(matches!(
        host.vm(vm).unwrap().state,
        VmState::Suspending { .. }
    ));

    // A packet lands inside the suspend window (suspend takes ~30 ms).
    let out = sw
        .on_packet(&mut host, udp_to(CLIENT), 3 * SEC + 1_000_000)
        .unwrap();
    assert!(out.is_empty(), "buffered, not processed synchronously");

    // Far enough in the future the suspend completed, the auto-resume
    // completed, and the buffer flushed — all inside one advance().
    let flushed = host.advance(5 * SEC);
    assert_eq!(flushed.len(), 1, "the suspend-window packet came out");
    assert!(matches!(host.vm(vm).unwrap().state, VmState::Running));

    // Nothing was dropped anywhere, and the scheduled resume was
    // counted and billed.
    let s = sw.stats();
    assert_eq!(s.dropped, 0);
    assert_eq!(s.packets, s.delivered + s.buffered);
    assert_eq!(s.resumes, 1);
    assert_eq!(sw.usage(CLIENT).resumes, 1);
    assert_eq!(
        reg.labeled_counter("innet_switch_drops_total", "reason")
            .total(),
        0
    );
    assert_eq!(
        reg.labeled_counter("innet_host_drops_total", "reason")
            .total(),
        0
    );
}

/// Billing counts only delivered/buffered packets: traffic the switch
/// drops (unknown destination, reclaimed mid-flow VM) charges no one.
#[test]
fn billing_matches_deliveries_under_churn() {
    let mut host = Host::new(16 * 1024);
    let mut sw = SwitchController::new();
    sw.register(client_entry(false));

    let mut now = 0;
    for round in 0..50u64 {
        now = round * SEC;
        // Mid-flow TCP first: with no binding yet (round 0, and rounds
        // right after reclamation) this is a `mid_flow_no_vm` drop;
        // with a binding it reaches the VM and is billed.
        let ack = PacketBuilder::tcp()
            .dst(CLIENT, 80)
            .flags(innet::packet::TcpFlags::ACK)
            .build();
        sw.on_packet(&mut host, ack, now).unwrap();
        // Legitimate flow traffic (re-boots the VM if reclaimed).
        sw.on_packet(&mut host, udp_to(CLIENT), now).unwrap();
        // Noise that must not be billed: unknown destination.
        sw.on_packet(&mut host, udp_to(STRANGER), now).unwrap();
        host.advance(now + SEC / 2);
        if round % 5 == 4 {
            sw.reclaim_idle(&mut host, now + SEC / 2, 1);
        }
    }
    host.advance(now + 2 * SEC);

    let s = sw.stats();
    assert_eq!(
        s.packets,
        s.delivered + s.buffered + s.dropped,
        "no packet unaccounted: {s:?}"
    );
    // Every delivered/buffered packet belonged to CLIENT, and only
    // those were billed.
    assert_eq!(sw.usage(CLIENT).packets, s.delivered + s.buffered);
    assert_eq!(sw.usage(STRANGER).packets, 0, "strangers are never billed");
    assert!(s.dropped >= 50, "the noise traffic was dropped: {s:?}");
}

/// Ten thousand reclaimed flows must not grow the controller's
/// bookkeeping maps: bindings and activity timestamps are pruned when
/// their VM is destroyed.
#[test]
fn reclaimed_flows_do_not_leak_bookkeeping() {
    let mut host = Host::new(1024 * 1024);
    let mut sw = SwitchController::new();
    sw.register(client_entry(false));

    for i in 0..10_000u64 {
        let now = i * SEC;
        sw.on_packet(&mut host, udp_to(CLIENT), now).unwrap();
        host.advance(now + SEC / 2);
        sw.reclaim_idle(&mut host, now + SEC / 2, 1);
    }

    assert_eq!(host.live_vms(), 0, "every flow's VM was reclaimed");
    assert_eq!(sw.tracked_bindings(), 0, "bindings pruned with their VMs");
    assert_eq!(sw.tracked_vms(), 0, "last_active pruned with their VMs");
    // The advance() sweep over live VMs stays cheap even though 10k VM
    // slots were ever created: it only visits live slots, so this
    // completes instantly rather than scanning 10k dead slots per call.
    host.advance(20_000 * SEC);
}

/// `deploy_batch` must report the same statistics as deploying the same
/// requests serially — the original fold dropped everything except
/// three cache counters.
#[test]
fn batch_and_serial_statistics_agree() {
    const FIG4: &str = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
    "#;
    let controller = || {
        let mut c = Controller::new(Topology::figure3());
        for i in 0..6 {
            c.register_client(
                format!("client{i}"),
                RequesterClass::Client,
                vec!["172.16.15.133".parse().unwrap()],
            );
        }
        c
    };
    let request = |i: usize| {
        let mut r = ClientRequest::parse(FIG4).unwrap();
        r.module_name = format!("batcher{i}");
        let req = format!(
            "reach from internet udp -> batcher{i}:dst:0 dst 172.16.15.133 \
             -> client dst port 1500 const proto && dst port && payload"
        );
        r.requirements = vec![Requirement::parse(&req).unwrap()];
        r
    };

    let batch: Vec<(String, ClientRequest)> =
        (0..6).map(|i| (format!("client{i}"), request(i))).collect();

    let mut serial = controller();
    for (client, req) in batch.clone() {
        serial.deploy(&client, req).expect("deployable");
    }
    let mut parallel = controller();
    let results = parallel.deploy_batch(batch, 3);
    assert!(results.iter().all(|r| r.is_ok()));

    let (s, p) = (serial.stats(), parallel.stats());
    assert_eq!(s.requests, p.requests, "requests: {s:?} vs {p:?}");
    assert_eq!(s.accepted, p.accepted, "accepted: {s:?} vs {p:?}");
    assert_eq!(s.rejected, p.rejected, "rejected: {s:?} vs {p:?}");
    assert_eq!(s.cache_misses, p.cache_misses, "misses: {s:?} vs {p:?}");
    assert_eq!(s.cache_hits, p.cache_hits, "hits: {s:?} vs {p:?}");
    assert_eq!(
        s.cache_invalidations, p.cache_invalidations,
        "invalidations: {s:?} vs {p:?}"
    );
    // Timing totals are wall-clock and cannot be compared exactly, but
    // a batch that did the same verification work must have spent time.
    assert!(p.compile_ns > 0 && p.check_ns > 0, "timing folded: {p:?}");
}

/// The zero-silent-drops invariant, checked against the live registry
/// under a churny mixed workload:
/// `packets_in == delivered + buffered + Σ drops_by_reason`.
#[test]
fn churn_workload_accounts_for_every_packet() {
    let reg = obs::Registry::new();
    let mut host = Host::with_obs(16 * 1024, &reg);
    let mut sw = SwitchController::new();
    sw.attach_metrics(&reg);
    sw.register(client_entry(true));

    let mut now = 0;
    for round in 0..200u64 {
        now = round * SEC / 4;
        match round % 4 {
            // Normal traffic (boots on round 0, then delivered or
            // buffered depending on lifecycle phase).
            0 | 1 => {
                sw.on_packet(&mut host, udp_to(CLIENT), now).unwrap();
            }
            // Unknown destinations.
            2 => {
                sw.on_packet(&mut host, udp_to(STRANGER), now).unwrap();
            }
            // Reclaim pressure, then traffic into the suspend window.
            _ => {
                sw.reclaim_idle(&mut host, now, 1);
                sw.on_packet(&mut host, udp_to(CLIENT), now).unwrap();
            }
        }
        if round % 7 == 0 {
            host.advance(now);
        }
    }
    host.advance(now + 10 * SEC);

    let s = sw.stats();
    assert_eq!(
        s.packets,
        s.delivered + s.buffered + s.dropped,
        "unaccounted packets: {s:?}"
    );

    // The registry mirrors the struct exactly…
    assert_eq!(reg.counter("innet_switch_packets_total").get(), s.packets);
    assert_eq!(
        reg.counter("innet_switch_delivered_total").get(),
        s.delivered
    );
    assert_eq!(reg.counter("innet_switch_buffered_total").get(), s.buffered);
    assert_eq!(reg.counter("innet_switch_boots_total").get(), s.boots);
    assert_eq!(reg.counter("innet_switch_resumes_total").get(), s.resumes);

    // …and every drop carries a reason label that sums back up.
    let drops = reg.labeled_counter("innet_switch_drops_total", "reason");
    assert_eq!(drops.total(), s.dropped);
    assert_eq!(drops.get("unknown_dst"), 50, "one stranger per 4 rounds");
    let cells: u64 = drops.cells().iter().map(|(_, v)| v).sum();
    assert_eq!(cells, s.dropped);

    // The boot/suspend/resume latency histograms saw the lifecycle
    // events the gauges and counters claim happened.
    let snap = reg.snapshot();
    let boot = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "innet_host_boot_latency_ns")
        .expect("boot histogram registered");
    assert_eq!(boot.1.snapshot.count, s.boots);
    assert!(boot.1.snapshot.p50 >= 1_000_000, "boots take milliseconds");

    // Exports render without panicking and mention the namespace roots.
    let prom = snap.to_prometheus();
    assert!(prom.contains("innet_switch_packets_total"));
    assert!(prom.contains("innet_host_mem_used_mb"));
    let json = snap.to_json();
    assert!(json.contains("innet_switch_drops_total"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles are monotone in the quantile and bracketed by
    /// the exact min/max.
    #[test]
    fn histogram_quantiles_monotone(
        values in proptest::collection::vec(0u64..1u64 << 48, 1..256),
    ) {
        let h = obs::Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        prop_assert!(s.min <= s.p50, "{s:?}");
        prop_assert!(s.p50 <= s.p95, "{s:?}");
        prop_assert!(s.p95 <= s.p99, "{s:?}");
        prop_assert!(s.p99 <= s.max, "{s:?}");
    }

    /// Count and sum are exact (buckets approximate the distribution,
    /// never the totals), and the mean stays within the histogram's
    /// bounds.
    #[test]
    fn histogram_preserves_count_and_sum(
        values in proptest::collection::vec(0u64..1u64 << 48, 1..256),
    ) {
        let h = obs::Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        let exact: u128 = values.iter().map(|&v| v as u128).sum();
        prop_assert_eq!(s.sum, exact);
        let mean = s.mean();
        prop_assert!(mean >= s.min as f64 && mean <= s.max as f64, "{s:?}");
    }
}
