//! Virtual machines and the host that runs them, in virtual time.
//!
//! The host model charges calibrated latencies (see [`crate::calib`]) for
//! boot, suspend, and resume, and real memory accounting; the packet
//! processing *inside* a ClickOS VM is the real `innet_click::Router`, so
//! data-plane behaviour is executed, not modelled.

use innet_click::{ClickConfig, Registry, Router, RouterError};
use innet_packet::Packet;

use crate::calib::{
    boot_latency_ns, resume_latency_ns, suspend_latency_ns, vm_mem_mb, VmTimingKind,
};

/// Identifier of a VM within one host.
pub type VmId = usize;

/// VM lifecycle state, with virtual-time transition deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Being created; ready at the embedded virtual time.
    Booting {
        /// When the VM becomes runnable.
        ready_at: u64,
    },
    /// Runnable and processing packets.
    Running,
    /// Being suspended; suspended at the embedded virtual time.
    Suspending {
        /// When the suspend completes.
        done_at: u64,
    },
    /// Suspended to memory: state retained, no processing.
    Suspended,
    /// Being resumed; runnable again at the embedded virtual time.
    Resuming {
        /// When the resume completes.
        ready_at: u64,
    },
    /// Destroyed (slot retained for id stability).
    Destroyed,
}

/// One virtual machine.
pub struct Vm {
    /// Guest kind (drives timing and memory).
    pub kind: VmTimingKind,
    /// Lifecycle state.
    pub state: VmState,
    /// The Click instance running inside (ClickOS guests only).
    pub router: Option<Router>,
    /// Packets that arrived while booting/resuming, delivered when the VM
    /// becomes runnable (the switch controller buffers the first packets
    /// of a flow while its VM boots).
    pub pending: Vec<(u16, Packet)>,
}

/// Errors from host operations.
#[derive(Debug, PartialEq)]
pub enum HostError {
    /// Not enough free memory for another VM.
    OutOfMemory {
        /// MB needed.
        need_mb: u64,
        /// MB free.
        free_mb: u64,
    },
    /// The VM id does not exist or is destroyed.
    NoSuchVm(VmId),
    /// The operation is invalid in the VM's current state.
    BadState(VmId, &'static str),
    /// The guest configuration failed to instantiate.
    Router(RouterError),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::OutOfMemory { need_mb, free_mb } => {
                write!(f, "out of memory: need {need_mb} MB, {free_mb} MB free")
            }
            HostError::NoSuchVm(id) => write!(f, "no such VM {id}"),
            HostError::BadState(id, what) => write!(f, "VM {id}: cannot {what} in this state"),
            HostError::Router(e) => write!(f, "guest configuration: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<RouterError> for HostError {
    fn from(e: RouterError) -> Self {
        HostError::Router(e)
    }
}

/// A physical platform host: memory pool plus a set of VMs.
pub struct Host {
    mem_mb: u64,
    mem_used_mb: u64,
    vms: Vec<Vm>,
    registry: Registry,
}

impl Host {
    /// Creates a host with the given physical memory.
    pub fn new(mem_mb: u64) -> Host {
        Host {
            mem_mb,
            mem_used_mb: 0,
            vms: Vec::new(),
            registry: Registry::standard(),
        }
    }

    /// Free memory in MB.
    pub fn free_mem_mb(&self) -> u64 {
        self.mem_mb - self.mem_used_mb
    }

    /// Number of VMs in any live state.
    pub fn live_vms(&self) -> usize {
        self.vms
            .iter()
            .filter(|v| !matches!(v.state, VmState::Destroyed))
            .count()
    }

    /// Number of currently runnable VMs.
    pub fn running_vms(&self) -> usize {
        self.vms
            .iter()
            .filter(|v| matches!(v.state, VmState::Running))
            .count()
    }

    /// Immutable access to a VM.
    pub fn vm(&self, id: VmId) -> Result<&Vm, HostError> {
        self.vms
            .get(id)
            .filter(|v| !matches!(v.state, VmState::Destroyed))
            .ok_or(HostError::NoSuchVm(id))
    }

    /// Mutable access to a VM.
    pub fn vm_mut(&mut self, id: VmId) -> Result<&mut Vm, HostError> {
        self.vms
            .get_mut(id)
            .filter(|v| !matches!(v.state, VmState::Destroyed))
            .ok_or(HostError::NoSuchVm(id))
    }

    /// Boots a ClickOS VM running `config`, charging the calibrated boot
    /// latency. Returns the VM id; the VM is `Booting` until
    /// [`Host::advance`] passes its deadline.
    pub fn boot_clickos(&mut self, config: &ClickConfig, now_ns: u64) -> Result<VmId, HostError> {
        self.boot(VmTimingKind::ClickOs, Some(config), now_ns)
    }

    /// Boots a (router-less) Linux VM — the expensive baseline.
    pub fn boot_linux(&mut self, now_ns: u64) -> Result<VmId, HostError> {
        self.boot(VmTimingKind::Linux, None, now_ns)
    }

    fn boot(
        &mut self,
        kind: VmTimingKind,
        config: Option<&ClickConfig>,
        now_ns: u64,
    ) -> Result<VmId, HostError> {
        let need = vm_mem_mb(kind);
        if self.free_mem_mb() < need {
            return Err(HostError::OutOfMemory {
                need_mb: need,
                free_mb: self.free_mem_mb(),
            });
        }
        let router = match config {
            Some(cfg) => Some(Router::from_config(cfg, &self.registry)?),
            None => None,
        };
        self.mem_used_mb += need;
        let ready_at = now_ns + boot_latency_ns(kind, self.live_vms());
        self.vms.push(Vm {
            kind,
            state: VmState::Booting { ready_at },
            router,
            pending: Vec::new(),
        });
        Ok(self.vms.len() - 1)
    }

    /// Starts suspending a running VM.
    pub fn suspend(&mut self, id: VmId, now_ns: u64) -> Result<u64, HostError> {
        let existing = self.live_vms();
        let vm = self.vm_mut(id)?;
        if !matches!(vm.state, VmState::Running) {
            return Err(HostError::BadState(id, "suspend"));
        }
        let done_at = now_ns + suspend_latency_ns(existing.saturating_sub(1));
        vm.state = VmState::Suspending { done_at };
        Ok(done_at)
    }

    /// Starts resuming a suspended VM.
    pub fn resume(&mut self, id: VmId, now_ns: u64) -> Result<u64, HostError> {
        let existing = self.live_vms();
        let vm = self.vm_mut(id)?;
        if !matches!(vm.state, VmState::Suspended) {
            return Err(HostError::BadState(id, "resume"));
        }
        let ready_at = now_ns + resume_latency_ns(existing.saturating_sub(1));
        vm.state = VmState::Resuming { ready_at };
        Ok(ready_at)
    }

    /// Destroys a VM, releasing its memory. Stateful guests lose their
    /// state (which is why stateful modules are suspended instead — §5).
    pub fn destroy(&mut self, id: VmId) -> Result<(), HostError> {
        let kind = self.vm(id)?.kind;
        self.mem_used_mb -= vm_mem_mb(kind);
        let vm = &mut self.vms[id];
        vm.state = VmState::Destroyed;
        vm.router = None;
        vm.pending.clear();
        Ok(())
    }

    /// Advances virtual time: completes lifecycle transitions whose
    /// deadlines have passed and flushes packets buffered for VMs that
    /// just became runnable. Returns packets transmitted by those VMs as
    /// `(vm, iface, packet)`.
    pub fn advance(&mut self, now_ns: u64) -> Vec<(VmId, u16, Packet)> {
        let mut out = Vec::new();
        for (id, vm) in self.vms.iter_mut().enumerate() {
            let became_running = match vm.state {
                VmState::Booting { ready_at } | VmState::Resuming { ready_at }
                    if now_ns >= ready_at =>
                {
                    vm.state = VmState::Running;
                    true
                }
                VmState::Suspending { done_at } if now_ns >= done_at => {
                    vm.state = VmState::Suspended;
                    false
                }
                _ => false,
            };
            if became_running {
                if let Some(router) = vm.router.as_mut() {
                    for (iface, pkt) in vm.pending.drain(..) {
                        let _ = router.deliver(iface, pkt, now_ns);
                    }
                    for (iface, pkt) in router.take_tx() {
                        out.push((id, iface, pkt));
                    }
                }
            }
        }
        out
    }

    /// Delivers a packet to a VM at virtual time `now_ns`.
    ///
    /// Running VMs process immediately (returning any transmissions);
    /// booting/resuming VMs buffer; suspended or Linux VMs drop.
    pub fn deliver(
        &mut self,
        id: VmId,
        iface: u16,
        pkt: Packet,
        now_ns: u64,
    ) -> Result<Vec<(u16, Packet)>, HostError> {
        let vm = self.vm_mut(id)?;
        match vm.state {
            VmState::Running => {
                let Some(router) = vm.router.as_mut() else {
                    return Ok(Vec::new());
                };
                let _ = router.deliver(iface, pkt, now_ns);
                Ok(router.take_tx())
            }
            VmState::Booting { .. } | VmState::Resuming { .. } => {
                vm.pending.push((iface, pkt));
                Ok(Vec::new())
            }
            _ => Ok(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::PacketBuilder;

    fn firewall_cfg() -> ClickConfig {
        ClickConfig::parse("FromNetfront() -> IPFilter(allow udp, allow icmp) -> ToNetfront();")
            .unwrap()
    }

    #[test]
    fn boot_buffers_then_processes() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        // Packet arrives while booting: buffered.
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), 1_000_000)
            .unwrap();
        assert!(out.is_empty());
        // After the boot deadline the buffered packet flows out.
        let flushed = host.advance(60_000_000);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].0, vm);
        // Subsequent packets process synchronously.
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), 70_000_000)
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn memory_accounting_and_exhaustion() {
        // Host with room for exactly two ClickOS VMs.
        let mut host = Host::new(2 * vm_mem_mb(VmTimingKind::ClickOs));
        host.boot_clickos(&firewall_cfg(), 0).unwrap();
        host.boot_clickos(&firewall_cfg(), 0).unwrap();
        assert!(matches!(
            host.boot_clickos(&firewall_cfg(), 0),
            Err(HostError::OutOfMemory { .. })
        ));
        assert_eq!(host.free_mem_mb(), 0);
    }

    #[test]
    fn destroy_releases_memory() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        let free_before = host.free_mem_mb();
        host.destroy(vm).unwrap();
        assert!(host.free_mem_mb() > free_before);
        assert!(matches!(
            host.deliver(vm, 0, PacketBuilder::udp().build(), 0),
            Err(HostError::NoSuchVm(_))
        ));
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        host.advance(100_000_000);
        assert_eq!(host.running_vms(), 1);

        let done = host.suspend(vm, 100_000_000).unwrap();
        assert!(done > 100_000_000);
        host.advance(done);
        assert!(matches!(host.vm(vm).unwrap().state, VmState::Suspended));
        // Suspended VMs drop traffic.
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), done + 1)
            .unwrap();
        assert!(out.is_empty());

        let ready = host.resume(vm, done + 1).unwrap();
        host.advance(ready);
        assert_eq!(host.running_vms(), 1);
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), ready + 1)
            .unwrap();
        assert_eq!(out.len(), 1, "state survived suspend/resume");
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_clickos(&firewall_cfg(), 0).unwrap();
        // Cannot suspend a booting VM.
        assert!(matches!(
            host.suspend(vm, 0),
            Err(HostError::BadState(_, "suspend"))
        ));
        host.advance(100_000_000);
        // Cannot resume a running VM.
        assert!(matches!(
            host.resume(vm, 100_000_000),
            Err(HostError::BadState(_, "resume"))
        ));
    }

    #[test]
    fn linux_vm_has_no_router() {
        let mut host = Host::new(16 * 1024);
        let vm = host.boot_linux(0).unwrap();
        host.advance(1_000_000_000);
        let out = host
            .deliver(vm, 0, PacketBuilder::udp().build(), 1_000_000_001)
            .unwrap();
        assert!(out.is_empty());
    }
}
