//! Sandbox injection (paper §4.4): wrapping a processing module with
//! `ChangeEnforcer` elements.
//!
//! One enforcer instance is created per module interface; it is spliced
//! onto the path from `FromNetfront(i)` into the module (input/output 0)
//! and onto the path from the module into `ToNetfront(i)` (input/output
//! 1). The enforcer elements are part of the client's configuration, so
//! the client is billed for its own sandboxing — as the paper notes.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_click::{ClickConfig, Connection, PortRef};

fn iface_of(args: &[String]) -> u16 {
    args.first()
        .and_then(|a| a.trim().parse().ok())
        .unwrap_or(0)
}

/// Returns a copy of `cfg` with a `ChangeEnforcer(module_addr, …)` spliced
/// around every netfront interface.
pub fn wrap_with_enforcer(
    cfg: &ClickConfig,
    module_addr: Ipv4Addr,
    whitelist: &[Ipv4Addr],
) -> ClickConfig {
    let mut out = cfg.clone();

    // Interface -> enforcer element name (created on demand).
    let mut enforcers: HashMap<u16, String> = HashMap::new();
    let mut enforcer_args = vec![module_addr.to_string()];
    enforcer_args.extend(whitelist.iter().map(|a| a.to_string()));
    let enforcer_arg_refs: Vec<&str> = enforcer_args.iter().map(|s| s.as_str()).collect();

    let mut ensure_enforcer = |out: &mut ClickConfig, iface: u16| -> String {
        if let Some(name) = enforcers.get(&iface) {
            return name.clone();
        }
        let name = format!("__enforcer{iface}");
        out.add_element(&name, "ChangeEnforcer", &enforcer_arg_refs);
        enforcers.insert(iface, name.clone());
        name
    };

    // Map interface numbers of sources and sinks.
    let mut from_ifaces: HashMap<&str, u16> = HashMap::new();
    let mut to_ifaces: HashMap<&str, u16> = HashMap::new();
    for e in &cfg.elements {
        match e.class.as_str() {
            "FromNetfront" | "FromDevice" => {
                from_ifaces.insert(e.name.as_str(), iface_of(&e.args));
            }
            "ToNetfront" | "ToDevice" => {
                to_ifaces.insert(e.name.as_str(), iface_of(&e.args));
            }
            _ => {}
        }
    }

    // Rewrite connections through the enforcers. A connection leaving a
    // `FromNetfront` is spliced through the enforcer's world→module path
    // (ports 0/0); a connection entering a `ToNetfront` through its
    // module→world path (ports 1/1). A direct source→sink connection gets
    // both splices.
    let conns = std::mem::take(&mut out.connections);
    let mut new_conns = Vec::with_capacity(conns.len());
    for c in &conns {
        let mut from = c.from.clone();
        let mut to = c.to.clone();
        if let Some(&iface) = from_ifaces.get(c.from.element.as_str()) {
            let enf = ensure_enforcer(&mut out, iface);
            new_conns.push(Connection {
                from,
                to: PortRef::new(&enf, 0),
            });
            from = PortRef::new(&enf, 0);
        }
        if let Some(&iface) = to_ifaces.get(c.to.element.as_str()) {
            let enf = ensure_enforcer(&mut out, iface);
            new_conns.push(Connection {
                from: PortRef::new(&enf, 1),
                to,
            });
            to = PortRef::new(&enf, 1);
        }
        new_conns.push(Connection { from, to });
    }
    out.connections = new_conns;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_click::{elements::ChangeEnforcer, Registry, Router};
    use innet_packet::PacketBuilder;

    const MODULE: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

    fn wrapped() -> ClickConfig {
        let cfg = ClickConfig::parse(
            // A module that spoofs: rewrites the source and reflects to a
            // fixed victim. The enforcer must contain it.
            "FromNetfront() -> SetIPSrc(192.0.2.10) -> SetIPDst(198.51.100.66) -> ToNetfront();",
        )
        .unwrap();
        wrap_with_enforcer(&cfg, MODULE, &[])
    }

    #[test]
    fn enforcer_spliced_once_per_interface() {
        let cfg = wrapped();
        assert_eq!(cfg.elements_of_class("ChangeEnforcer").len(), 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn wrapped_module_cannot_reach_unauthorized_destinations() {
        let mut r = Router::from_config(&wrapped(), &Registry::standard()).unwrap();
        // An innocent sender triggers the module; the module redirects
        // toward the victim, which never authorized anything.
        let pkt = PacketBuilder::udp().src(CLIENT, 1).dst(MODULE, 2).build();
        r.deliver(0, pkt, 0).unwrap();
        assert!(r.take_tx().is_empty(), "enforcer blocked the reflection");
        let enf = r
            .element_as::<ChangeEnforcer>("__enforcer0")
            .expect("enforcer instantiated");
        assert_eq!(enf.counters().3, 1, "blocked as unauthorized destination");
    }

    #[test]
    fn wrapped_module_may_answer_the_sender() {
        // A responder module: replies flow back to the implicit
        // authorizer and must pass.
        let cfg =
            ClickConfig::parse("FromNetfront() -> ICMPPingResponder() -> ToNetfront();").unwrap();
        let wrapped = wrap_with_enforcer(&cfg, MODULE, &[]);
        let mut r = Router::from_config(&wrapped, &Registry::standard()).unwrap();
        let ping = PacketBuilder::icmp_echo_request(5, 1)
            .src_addr(CLIENT)
            .dst_addr(MODULE)
            .build();
        r.deliver(0, ping, 0).unwrap();
        let tx = r.take_tx();
        assert_eq!(tx.len(), 1, "reply passes the enforcer");
        assert_eq!(tx[0].1.ipv4().unwrap().dst(), CLIENT);
    }

    #[test]
    fn multi_interface_module_gets_two_enforcers() {
        let cfg = ClickConfig::parse(
            r#"
            a :: FromNetfront(0); b :: FromNetfront(1);
            ta :: ToNetfront(0); tb :: ToNetfront(1);
            a -> tb; b -> ta;
            "#,
        )
        .unwrap();
        let wrapped = wrap_with_enforcer(&cfg, MODULE, &[]);
        assert_eq!(wrapped.elements_of_class("ChangeEnforcer").len(), 2);
        wrapped.validate().unwrap();
    }
}
