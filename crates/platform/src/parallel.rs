//! Flow-sharded parallel execution: one verified configuration, N router
//! replicas, an RSS-style dispatcher.
//!
//! The paper's platform runs each tenant module as one ClickOS VM on one
//! vCPU; scaling a hot module means giving it more cores. This module
//! reproduces the standard software-RSS recipe for doing that without
//! giving up per-flow semantics:
//!
//! * every worker owns an *independent replica* of the same verified
//!   [`ClickConfig`] — no shared element state, no locks on the data path;
//! * a flow-hash dispatcher pins each 5-tuple to one worker
//!   ([`FlowKey::shard_of`]), so all packets of a flow traverse the same
//!   replica in arrival order and per-flow output order is preserved;
//! * hand-off happens in batches over bounded FIFO rings, which
//!   back-pressure the dispatcher by default or count drops in lossy
//!   mode.
//!
//! How much state a configuration keeps decides how it shards. The
//! element registry's field-effect summaries place every class on the
//! [`Shardability`] lattice, and [`Registry::config_shardability`]
//! aggregates the verdict:
//!
//! * **`Stateless`** — forwarding is a pure function of each packet;
//!   replicas shard freely under the directed flow hash.
//! * **`FlowPartitionable`** — state is keyed by the connection (NAT
//!   tables, firewall conntrack, per-flow meters). Still sharded, but
//!   dispatch switches to the *symmetric* hash
//!   ([`FlowKey::symmetric_shard_of`]), which pins both directions of a
//!   connection to the same replica so each replica owns a disjoint
//!   slice of connection state.
//! * **`Global`** — state spans connections (queues, token buckets,
//!   schedulers, opaque VMs); the runner degrades to **one worker**
//!   rather than silently misbehaving across replicas.

use std::time::Instant;

use innet_click::{ClickConfig, Registry, Router, RouterError, Shardability};
use innet_packet::{FlowKey, Packet};

use crate::engine::Engine;
use crate::runner::RunnerConfig;
use crate::spsc::{self, TrySendError};

/// Virtual-time step per packet, matching
/// [`NativeRunner::run`](crate::NativeRunner::run): 1 µs, so token
/// buckets refill realistically.
const STEP_NS: u64 = 1_000;

/// Result of a timed parallel run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelStats {
    /// Packets offered to the dispatcher.
    pub packets: u64,
    /// Packets transmitted out of all replicas.
    pub transmitted: u64,
    /// Packets dropped on full worker rings (lossy mode only).
    pub dropped: u64,
    /// Wall-clock nanoseconds elapsed.
    pub elapsed_ns: u64,
    /// Workers that actually ran (1 for `Global` configurations).
    pub workers: usize,
}

impl ParallelStats {
    /// *Delivered* rate in packets/second — transmitted packets over
    /// elapsed time; 0.0 when no time elapsed. In lossy-ring mode this
    /// excludes ring drops (the old offered-based figure inflated
    /// throughput exactly when the system was overloaded).
    pub fn pps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.transmitted as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// *Offered* (input) rate in packets/second — what the dispatcher was
    /// given, whether or not it made it through; 0.0 when no time
    /// elapsed.
    pub fn offered_pps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Delivered throughput in Gbit/s assuming `frame_len`-byte frames.
    pub fn gbps(&self, frame_len: usize) -> f64 {
        self.pps() * frame_len as f64 * 8.0 / 1e9
    }
}

/// Shared-registry instruments for one parallel runner
/// (`innet_parallel_*`).
#[derive(Clone)]
struct ParallelMetrics {
    /// Per-worker packets processed (`worker` label).
    packets: Vec<innet_obs::Counter>,
    /// Per-worker packets transmitted (`worker` label).
    transmitted: Vec<innet_obs::Counter>,
    /// Per-worker ring depth, sampled at each dispatch.
    queue_depth: Vec<innet_obs::Gauge>,
    /// Size of each dispatched batch.
    batch_size: innet_obs::Histogram,
    /// Wall-clock duration of each `run` call.
    run_ns: innet_obs::Histogram,
    /// Packets dropped on full rings.
    drops_ring_full: innet_obs::Counter,
}

impl ParallelMetrics {
    fn new(registry: &innet_obs::Registry, workers: usize) -> ParallelMetrics {
        let packets = registry.labeled_counter("innet_parallel_packets_total", "worker");
        let transmitted = registry.labeled_counter("innet_parallel_transmitted_total", "worker");
        ParallelMetrics {
            packets: (0..workers).map(|w| packets.with(&w.to_string())).collect(),
            transmitted: (0..workers)
                .map(|w| transmitted.with(&w.to_string()))
                .collect(),
            queue_depth: (0..workers)
                .map(|w| registry.gauge(&format!("innet_parallel_queue_depth_w{w}")))
                .collect(),
            batch_size: registry.histogram("innet_parallel_batch_size"),
            run_ns: registry.histogram("innet_parallel_run_ns"),
            drops_ring_full: registry
                .labeled_counter("innet_parallel_drops_total", "reason")
                .with("ring_full"),
        }
    }
}

/// A multi-threaded runner: N replicas of one router behind a flow-hash
/// dispatcher. Build one with
/// [`RunnerConfig::parallel`](crate::RunnerConfig::parallel).
pub struct ParallelRunner {
    engines: Vec<Engine>,
    requested_workers: usize,
    shardability: Shardability,
    batch: usize,
    lossy: bool,
    ring_capacity: usize,
    metrics: Option<ParallelMetrics>,
}

impl ParallelRunner {
    /// Instantiates `config.workers` replicas of `cfg` (or one, if the
    /// configuration keeps global state and therefore cannot shard).
    pub(crate) fn with_config(
        cfg: &ClickConfig,
        config: RunnerConfig,
    ) -> Result<ParallelRunner, RouterError> {
        let registry = Registry::standard();
        let shardability = registry.config_shardability(cfg);
        let effective = if shardability == Shardability::Global {
            1
        } else {
            config.workers
        };
        let mut engines = Vec::with_capacity(effective);
        for _ in 0..effective {
            let mut engine = Engine::build(cfg, &registry, config.compiled)?;
            if let Some(reg) = &config.metrics {
                // Replicas share the same click counters: the registry
                // hands out one shared cell per name, so `innet_click_*`
                // aggregates across workers.
                engine.attach_metrics(reg);
            }
            engines.push(engine);
        }
        Ok(ParallelRunner {
            engines,
            requested_workers: config.workers,
            shardability,
            batch: config.batch,
            lossy: config.lossy_rings,
            ring_capacity: config.ring_capacity,
            metrics: config
                .metrics
                .as_ref()
                .map(|r| ParallelMetrics::new(r, effective)),
        })
    }

    /// Workers actually running (1 when the configuration keeps global
    /// state).
    pub fn effective_workers(&self) -> usize {
        self.engines.len()
    }

    /// Workers asked for via [`RunnerConfig::workers`].
    pub fn requested_workers(&self) -> usize {
        self.requested_workers
    }

    /// The registry's [`Shardability`] verdict for this configuration
    /// ([`Registry::config_shardability`]): it decides both the worker
    /// count and the dispatch hash.
    pub fn shardability(&self) -> Shardability {
        self.shardability
    }

    /// Whether the configuration passed the registry's replication-safety
    /// check (its verdict is not [`Shardability::Global`]).
    pub fn shardable(&self) -> bool {
        self.shardability != Shardability::Global
    }

    /// Access to a worker's interpreted router replica (for counter
    /// inspection). `None` for an out-of-range worker — or in compiled
    /// mode, where replicas are flat plans with no element instances.
    pub fn router(&self, worker: usize) -> Option<&Router> {
        self.engines.get(worker).and_then(|e| e.router())
    }

    /// Whether the replicas execute the compiled plan.
    pub fn is_compiled(&self) -> bool {
        self.engines.first().is_some_and(|e| e.is_compiled())
    }

    /// Pushes the packet set through the sharded replicas `rounds`
    /// times, measuring wall-clock time.
    pub fn run(&mut self, packets: &[Packet], rounds: usize) -> ParallelStats {
        self.run_inner(packets, rounds, false).0
    }

    /// Like [`ParallelRunner::run`], but also returns every transmitted
    /// `(egress, packet)` pair, concatenated worker by worker. Within
    /// one worker's slice — and therefore within any one flow — packets
    /// appear in transmission order.
    pub fn run_collect(
        &mut self,
        packets: &[Packet],
        rounds: usize,
    ) -> (ParallelStats, Vec<(u16, Packet)>) {
        self.run_inner(packets, rounds, true)
    }

    fn run_inner(
        &mut self,
        packets: &[Packet],
        rounds: usize,
        collect: bool,
    ) -> (ParallelStats, Vec<(u16, Packet)>) {
        let workers = self.engines.len();
        let batch = self.batch;
        let lossy = self.lossy;
        let ring_capacity = self.ring_capacity;
        let metrics = self.metrics.clone();
        let start = Instant::now();
        let mut dropped = 0u64;
        let mut transmitted = 0u64;
        let mut collected: Vec<(u16, Packet)> = Vec::new();

        std::thread::scope(|s| {
            let mut senders = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for (w, engine) in self.engines.iter_mut().enumerate() {
                let (tx, rx) = spsc::ring::<Vec<Packet>>(ring_capacity);
                senders.push(tx);
                let worker_metrics = metrics
                    .as_ref()
                    .map(|m| (m.packets[w].clone(), m.transmitted[w].clone()));
                handles.push(s.spawn(move || {
                    let mut clock = 0u64;
                    let mut tx_count = 0u64;
                    let mut out: Vec<(u16, Packet)> = Vec::new();
                    while let Some(b) = rx.recv() {
                        let n = b.len() as u64;
                        engine.push_batch(b, clock, STEP_NS);
                        clock += STEP_NS * n;
                        let before = out.len();
                        engine.take_tx_into(&mut out);
                        let emitted = (out.len() - before) as u64;
                        tx_count += emitted;
                        if let Some((pkts, txs)) = &worker_metrics {
                            pkts.add(n);
                            txs.add(emitted);
                        }
                        if !collect {
                            out.clear();
                        }
                    }
                    (tx_count, out)
                }));
            }

            // The dispatcher: flow-hash every packet to its worker,
            // flushing per-worker batches as they fill. Because one flow
            // always hashes to one worker and the rings are FIFO,
            // per-flow order is preserved end to end.
            //
            // Flow-partitionable configs (NAT, stateful firewall) carry
            // per-connection state, so both directions of a connection
            // must land on the same replica: they dispatch under the
            // symmetric hash, which keys on the remote endpoint and is
            // invariant under source NAT. Stateless configs keep the
            // plain directed hash.
            let symmetric = self.shardability == Shardability::FlowPartitionable;
            let mut pending: Vec<Vec<Packet>> =
                (0..workers).map(|_| Vec::with_capacity(batch)).collect();
            for _ in 0..rounds {
                for pkt in packets {
                    let shard = if symmetric {
                        FlowKey::symmetric_shard_of(pkt, workers)
                    } else {
                        FlowKey::shard_of(pkt, workers)
                    };
                    pending[shard].push(pkt.clone());
                    if pending[shard].len() >= batch {
                        let full =
                            std::mem::replace(&mut pending[shard], Vec::with_capacity(batch));
                        dropped += dispatch(&senders[shard], full, lossy, shard, &metrics);
                    }
                }
            }
            for (shard, rest) in pending.into_iter().enumerate() {
                if !rest.is_empty() {
                    dropped += dispatch(&senders[shard], rest, lossy, shard, &metrics);
                }
            }
            // Hang up: each worker drains its ring, then returns.
            drop(senders);
            for h in handles {
                let (tx_count, out) = h.join().expect("worker panicked");
                transmitted += tx_count;
                if collect {
                    collected.extend(out);
                }
            }
        });

        let stats = ParallelStats {
            packets: (packets.len() * rounds) as u64,
            transmitted,
            dropped,
            elapsed_ns: start.elapsed().as_nanos().max(1) as u64,
            workers,
        };
        if let Some(m) = &self.metrics {
            m.run_ns.observe(stats.elapsed_ns);
        }
        (stats, collected)
    }
}

/// Sends one batch to one worker ring, honoring the loss mode. Returns
/// the number of packets dropped (lossy mode with a full ring).
fn dispatch(
    sender: &spsc::RingSender<Vec<Packet>>,
    batch: Vec<Packet>,
    lossy: bool,
    shard: usize,
    metrics: &Option<ParallelMetrics>,
) -> u64 {
    let size = batch.len() as u64;
    let dropped = if lossy {
        match sender.try_send(batch) {
            Ok(()) => 0,
            Err(TrySendError::Full(b)) | Err(TrySendError::Disconnected(b)) => b.len() as u64,
        }
    } else {
        match sender.send(batch) {
            Ok(()) => 0,
            Err(b) => b.len() as u64,
        }
    };
    if let Some(m) = metrics {
        m.batch_size.observe(size);
        m.queue_depth[shard].set(sender.len() as i64);
        if dropped > 0 {
            m.drops_ring_full.add(dropped);
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{consolidated_config, middlebox_config, plain_firewall};
    use innet_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn trace(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                PacketBuilder::udp()
                    .src(
                        Ipv4Addr::new(8, 8, (i % 13) as u8, (i % 251) as u8 + 1),
                        1000,
                    )
                    .dst(Ipv4Addr::new(10, 0, 0, 1), 1500 + (i % 7) as u16)
                    .pad_to(64)
                    .build()
            })
            .collect()
    }

    #[test]
    fn stateless_config_shards_to_requested_workers() {
        let runner = RunnerConfig::new()
            .workers(4)
            .parallel(&plain_firewall())
            .unwrap();
        assert!(runner.shardable());
        assert_eq!(runner.effective_workers(), 4);
        assert_eq!(runner.requested_workers(), 4);
    }

    #[test]
    fn flow_partitionable_config_shards_under_symmetric_hash() {
        // NAT keeps per-connection state only: it shards, and the
        // verdict selects the symmetric dispatch hash.
        let cfg = middlebox_config("nat").unwrap();
        let runner = RunnerConfig::new().workers(8).parallel(&cfg).unwrap();
        assert!(runner.shardable());
        assert_eq!(runner.shardability(), Shardability::FlowPartitionable);
        assert_eq!(runner.effective_workers(), 8);
        assert_eq!(runner.requested_workers(), 8);
    }

    #[test]
    fn global_config_degrades_to_one_worker() {
        // A queue shares timing state across all flows: replicating it
        // would change drop/ordering behavior, so the runner pins the
        // config to a single worker no matter how many were requested.
        let cfg = ClickConfig::parse("FromNetfront() -> Queue(16) -> ToNetfront();").unwrap();
        let runner = RunnerConfig::new().workers(8).parallel(&cfg).unwrap();
        assert!(!runner.shardable());
        assert_eq!(runner.shardability(), Shardability::Global);
        assert_eq!(runner.effective_workers(), 1);
        assert_eq!(runner.requested_workers(), 8);

        let rr = ClickConfig::parse(
            "FromNetfront() -> rr :: RoundRobinSwitch(2); rr[0] -> ToNetfront(); rr[1] -> ToNetfront();",
        )
        .unwrap();
        let runner = RunnerConfig::new().workers(4).parallel(&rr).unwrap();
        assert_eq!(runner.shardability(), Shardability::Global);
        assert_eq!(runner.effective_workers(), 1);
    }

    #[test]
    fn all_packets_accounted_for() {
        let mut runner = RunnerConfig::new()
            .workers(4)
            .batch(8)
            .parallel(&plain_firewall())
            .unwrap();
        let pkts = trace(1000);
        let stats = runner.run(&pkts, 3);
        assert_eq!(stats.packets, 3000);
        assert_eq!(stats.transmitted, 3000);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn consolidated_config_runs_sharded() {
        let clients: Vec<Ipv4Addr> = (0..8).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
        let cfg = consolidated_config(&clients);
        let mut runner = RunnerConfig::new().workers(4).parallel(&cfg).unwrap();
        assert!(runner.shardable());
        let pkts: Vec<Packet> = (0..256)
            .map(|i| {
                PacketBuilder::udp()
                    .src(Ipv4Addr::new(8, 8, 8, (i % 251) as u8 + 1), 4000 + i as u16)
                    .dst(clients[i % clients.len()], 80)
                    .pad_to(64)
                    .build()
            })
            .collect();
        let stats = runner.run(&pkts, 2);
        assert_eq!(stats.transmitted, stats.packets);
    }

    #[test]
    fn metrics_published_per_worker() {
        let registry = innet_obs::Registry::new();
        let mut runner = RunnerConfig::new()
            .workers(2)
            .batch(4)
            .metrics(&registry)
            .parallel(&plain_firewall())
            .unwrap();
        let pkts = trace(100);
        runner.run(&pkts, 1);
        let per_worker = registry.labeled_counter("innet_parallel_packets_total", "worker");
        assert_eq!(per_worker.get("0") + per_worker.get("1"), 100);
        let tx = registry.labeled_counter("innet_parallel_transmitted_total", "worker");
        assert_eq!(tx.get("0") + tx.get("1"), 100);
    }

    #[test]
    fn lossy_rings_count_drops_by_reason() {
        let registry = innet_obs::Registry::new();
        // Capacity 1 ring and a slow consumer can't be guaranteed to
        // drop deterministically, so drive the sender directly: fill the
        // ring by never consuming.
        let (tx, _rx) = spsc::ring::<Vec<Packet>>(1);
        let m = ParallelMetrics::new(&registry, 1);
        let metrics = Some(m);
        let d0 = dispatch(&tx, trace(4), true, 0, &metrics);
        let d1 = dispatch(&tx, trace(4), true, 0, &metrics);
        assert_eq!(d0, 0);
        assert_eq!(d1, 4);
        let drops = registry.labeled_counter("innet_parallel_drops_total", "reason");
        assert_eq!(drops.get("ring_full"), 4);
    }

    #[test]
    fn zero_elapsed_stats_do_not_divide_by_zero() {
        let stats = ParallelStats {
            packets: 10,
            transmitted: 10,
            dropped: 0,
            elapsed_ns: 0,
            workers: 1,
        };
        assert_eq!(stats.pps(), 0.0);
        assert_eq!(stats.offered_pps(), 0.0);
        assert_eq!(stats.gbps(64), 0.0);
    }

    #[test]
    fn pps_reports_delivered_not_offered() {
        // 10 offered over 1 s, 4 delivered: pps() must report the 4
        // that made it through, offered_pps() the 10 that were pushed.
        let stats = ParallelStats {
            packets: 10,
            transmitted: 4,
            dropped: 6,
            elapsed_ns: 1_000_000_000,
            workers: 2,
        };
        assert_eq!(stats.pps(), 4.0);
        assert_eq!(stats.offered_pps(), 10.0);
        assert_eq!(stats.gbps(125), 4.0 * 125.0 * 8.0 / 1e9);
    }
}
