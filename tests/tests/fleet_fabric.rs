//! Integration tests for the fleet fabric.
//!
//! Four contracts:
//!
//! 1. **The 1-host fleet is the oracle.** Driving the consolidated
//!    multi-tenant corpus through a [`Fleet::single_host`] and through a
//!    bare [`Host`] + [`SwitchController`] must produce byte- and
//!    order-identical output and identical switch statistics — the fleet
//!    layer adds platforms, not semantics.
//! 2. **Migration is invisible to the flow.** A flow that spans a live
//!    migration (including a packet injected inside the suspend window)
//!    is delivered byte- and order-identical to a no-migration run, and
//!    the same byte sequence the flow-sharded data plane produces at
//!    1, 2, and 4 workers.
//! 3. **Cached placements don't go stale.** Filling a platform between
//!    two canonically-identical deploys re-places the second deploy on
//!    the next-ranked platform *as a cache hit* (regression for the
//!    race where the memoized platform filled up after verification).
//! 4. **Placement rejections are observable per reason** via
//!    `innet_ctl_placement_reject_total{reason}`.

use std::net::Ipv4Addr;

use innet::controller::InstalledModule;
use innet::platform::consolidated_config;
use innet::prelude::*;
use innet::topology::{generate_fleet, FleetParams, NodeKind, PlatformSpec};

const SEC: u64 = 1_000_000_000;

fn filter_entry(addr: Ipv4Addr, stateful: bool) -> ClientEntry {
    ClientEntry {
        addr,
        config: ClickConfig::parse(
            "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
        )
        .unwrap(),
        stateful,
    }
}

fn udp_to(addr: Ipv4Addr, seq: u16, len: usize) -> Packet {
    PacketBuilder::udp()
        .src(Ipv4Addr::new(8, 8, 8, 8), seq)
        .dst(addr, 1500)
        .pad_to(len)
        .build()
}

/// One packet of *one* flow (fixed 5-tuple — packets distinguished by
/// length only), so every worker count shards it to a single replica and
/// whole-sequence order comparison is meaningful.
fn flow_packet(addr: Ipv4Addr, i: usize) -> Packet {
    udp_to(addr, 40_000, 64 + i * 16)
}

/// The two-platform WAN the migration tests run over.
fn two_pop_topology() -> Topology {
    generate_fleet(&FleetParams {
        pops: 2,
        platforms_per_pop: 1,
        clients_per_pop: 1,
        seed: 3,
    })
}

#[test]
fn one_host_fleet_matches_the_host_path_on_the_consolidated_corpus() {
    let tenants: Vec<Ipv4Addr> = (1..=3).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
    let shared = consolidated_config(&tenants);

    let mut fleet = Fleet::single_host(16 * 1024);
    let platform = fleet.platforms()[0];
    let mut host = Host::new(16 * 1024);
    let mut sw = SwitchController::new();
    for &addr in &tenants {
        let entry = ClientEntry {
            addr,
            config: shared.clone(),
            stateful: false,
        };
        fleet.register(platform, entry.clone()).unwrap();
        sw.register(entry);
    }

    // Multi-flow corpus: traffic round-robined across the consolidated
    // tenants, a stranger flow nobody registered, varied payload sizes.
    let stranger = Ipv4Addr::new(9, 9, 9, 9);
    let schedule: Vec<(u64, Packet)> = (0..24u64)
        .map(|i| {
            let dst = if i % 5 == 4 {
                stranger
            } else {
                tenants[(i % 3) as usize]
            };
            let at = i * 10_000_000;
            (at, udp_to(dst, i as u16 + 1, 64 + (i as usize % 7) * 16))
        })
        .collect();

    // The fleet side rides the FleetDriver timeline (which pins the
    // inject-then-advance order); the bare host is the hand-rolled
    // oracle it must match step for step.
    let mut driver = FleetDriver::new(fleet).until(2 * SEC);
    let mut host_out = Vec::new();
    for (at, pkt) in schedule {
        driver = driver.inject(at, pkt.clone());
        host_out.extend(sw.on_packet(&mut host, pkt, at).unwrap());
        host_out.extend(host.advance(at).into_iter().map(|(_, iface, p)| (iface, p)));
    }
    host_out.extend(
        host.advance(2 * SEC)
            .into_iter()
            .map(|(_, iface, p)| (iface, p)),
    );
    let run = driver.run();
    let fleet_out: Vec<(u16, Packet)> = run
        .out
        .into_iter()
        .map(|(_, iface, p)| (iface, p))
        .collect();

    assert!(!fleet_out.is_empty(), "the corpus produces output");
    assert_eq!(fleet_out, host_out, "byte- and order-identical");
    assert_eq!(
        run.fleet.switch(platform).unwrap().stats(),
        sw.stats(),
        "stats-identical"
    );
    assert_eq!(run.stats.fabric_forwards, 0, "one host, no fabric");
}

/// Runs the migration-spanning flow schedule through a two-platform
/// fleet, optionally migrating the tenant mid-flow, and returns the
/// delivered `(iface, bytes)` sequence.
fn fleet_flow_run(migrate: bool) -> (Vec<(u16, Vec<u8>)>, u64) {
    const TENANT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);
    let topo = two_pop_topology();
    let mut fleet = Fleet::new(&topo);
    let platforms = fleet.platforms();
    let (a, b) = (platforms[0], platforms[1]);
    fleet.register(a, filter_entry(TENANT, true)).unwrap();

    let migrate_at = 1_250_000_000u64;
    // Packet 4 lands 1 ms into the suspend window: in the migration run
    // it is buffered at the fleet layer and flushed after the resume.
    let times = [
        0,
        500_000_000,
        1_000_000_000,
        migrate_at + 1_000_000,
        1_500_000_000,
        2_000_000_000,
        2_500_000_000,
        3_000_000_000,
    ];
    let mut driver = FleetDriver::new(fleet).until(200 * SEC);
    if migrate {
        driver = driver.migrate(migrate_at, TENANT, b);
    }
    for (i, &at) in times.iter().enumerate() {
        driver = driver.inject(at, flow_packet(TENANT, i));
    }
    let run = driver.run();
    assert_eq!(run.errors, 0);
    let out: Vec<(u16, Vec<u8>)> = run
        .out
        .into_iter()
        .map(|(_, iface, p)| (iface, p.bytes().to_vec()))
        .collect();
    if migrate {
        assert_eq!(run.fleet.location(TENANT), Some(b), "tenant moved");
        assert_eq!(run.fleet.migrations().len(), 1, "exactly one migration");
        assert!(
            run.stats.migration_buffered > 0,
            "the mid-window packet was buffered"
        );
    }
    (out, run.stats.migration_buffered)
}

#[test]
fn flow_spanning_live_migration_is_delivered_identically_at_1_2_4_workers() {
    let (baseline, _) = fleet_flow_run(false);
    let (migrated, buffered) = fleet_flow_run(true);
    assert!(buffered > 0);
    assert_eq!(
        baseline, migrated,
        "migration must be invisible to the flow's bytes and order"
    );

    // The same flow through the flow-sharded data plane produces the
    // same byte sequence at every worker count: migration composes with
    // sharded execution because both preserve per-flow FIFO order.
    const TENANT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);
    let cfg = filter_entry(TENANT, true).config;
    let trace: Vec<Packet> = (0..8).map(|i| flow_packet(TENANT, i)).collect();
    for workers in [1usize, 2, 4] {
        let mut runner = RunnerConfig::new().workers(workers).parallel(&cfg).unwrap();
        let (_, out) = runner.run_collect(&trace, 1);
        let sharded: Vec<(u16, Vec<u8>)> = out
            .into_iter()
            .map(|(iface, p)| (iface, p.bytes().to_vec()))
            .collect();
        assert_eq!(
            sharded, baseline,
            "{workers}-worker sharded run matches the fleet delivery"
        );
    }
}

/// A Figure 4-style request with no `reach` requirements (so the verdict
/// is placement-independent): deliverable to the tenant's registered
/// address, deployable on any platform with room.
const PORTABLE: &str = r#"
    module batcher:
    FromNetfront()
      -> IPFilter(allow udp dst port 1500)
      -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
      -> ToNetfront();
"#;

/// Two equal platforms behind the internet, `capacity` slots each.
fn twin_platform_controller(capacity: usize) -> Controller {
    let mut t = Topology::new();
    let internet = t.add("internet", NodeKind::Internet).unwrap();
    let pa = t
        .add(
            "platform-a",
            NodeKind::Platform(PlatformSpec {
                addr_pool: "192.0.2.0/28".parse().unwrap(),
                capacity,
                ..PlatformSpec::default()
            }),
        )
        .unwrap();
    let pb = t
        .add(
            "platform-b",
            NodeKind::Platform(PlatformSpec {
                addr_pool: "198.18.0.0/28".parse().unwrap(),
                capacity,
                ..PlatformSpec::default()
            }),
        )
        .unwrap();
    t.link_bidir(internet, 0, pa, 0);
    t.link_bidir(internet, 1, pb, 0);
    let mut c = Controller::new(t);
    c.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );
    c
}

#[test]
fn cached_placement_filled_between_identical_deploys_replaces_as_a_hit() {
    let mut c = twin_platform_controller(2);
    let req = || ClientRequest::parse(PORTABLE).unwrap();

    // First deploy: full verification, placed on the best-ranked
    // platform (ties break to the lower node id: platform-a).
    let first = c.deploy("mobile-7", req()).unwrap();
    assert_eq!(first.platform, "platform-a");

    // Fill platform-a to capacity *between* the two identical deploys —
    // the staleness window the cached verdict must survive.
    let pa = c.topology().index_of("platform-a").unwrap();
    let mut modules = c.modules().to_vec();
    let next_id = modules.iter().map(|m| m.id).max().unwrap_or(0) + 1;
    modules.push(InstalledModule {
        id: next_id,
        name: "squatter".into(),
        platform: pa,
        addr: Ipv4Addr::new(192, 0, 2, 9),
        config: ClickConfig::parse("FromNetfront() -> ToNetfront();").unwrap(),
        sandboxed: true,
        owner: "operator".into(),
    });
    c.adopt_modules(modules);
    assert!(!c.platform_has_room("platform-a"));

    // The identical second deploy must succeed on the next-ranked
    // platform as a *cache hit*: no re-verification, placement redone.
    let before = c.stats();
    let second = c.deploy("mobile-7", req()).unwrap();
    let after = c.stats();
    assert_eq!(second.platform, "platform-b", "re-placed, not stale");
    assert_eq!(after.cache_hits, before.cache_hits + 1, "still a hit");
    assert_eq!(after.cache_misses, before.cache_misses, "no re-verify");

    // The refreshed cache entry now points at platform-b directly.
    let third = c.deploy("mobile-7", req()).unwrap();
    assert_eq!(third.platform, "platform-b");
    assert_eq!(c.stats().cache_hits, after.cache_hits + 1);
}

#[test]
fn every_platform_full_after_a_cached_accept_reports_per_platform_reasons() {
    let mut c = twin_platform_controller(1);
    let req = || ClientRequest::parse(PORTABLE).unwrap();
    let first = c.deploy("mobile-7", req()).unwrap();
    // Fill the remaining platform too.
    let other = if first.platform == "platform-a" {
        "platform-b"
    } else {
        "platform-a"
    };
    let other_id = c.topology().index_of(other).unwrap();
    let mut modules = c.modules().to_vec();
    modules.push(InstalledModule {
        id: 99,
        name: "squatter".into(),
        platform: other_id,
        addr: Ipv4Addr::new(198, 18, 0, 9),
        config: ClickConfig::parse("FromNetfront() -> ToNetfront();").unwrap(),
        sandboxed: true,
        owner: "operator".into(),
    });
    c.adopt_modules(modules);

    let err = c.deploy("mobile-7", req()).unwrap_err();
    let DeployError::NoFeasiblePlacement { reasons } = err else {
        panic!("expected NoFeasiblePlacement, got {err:?}");
    };
    assert_eq!(reasons.len(), 2, "one reason per platform");
    assert!(reasons.iter().all(|(_, why)| why == "platform full"));
}

#[test]
fn placement_rejects_are_counted_per_reason() {
    let mut c = twin_platform_controller(1);
    let reg = MetricsRegistry::new();
    c.attach_metrics(&reg);
    let req = |name: &str| {
        ClientRequest::parse(&PORTABLE.replace("module batcher:", &format!("module {name}:")))
            .unwrap()
    };

    c.deploy("mobile-7", req("m1")).unwrap();
    c.deploy("mobile-7", req("m2")).unwrap();
    // Both platforms full: two per-platform "platform full" rejections.
    let err = c.deploy("mobile-7", req("m3")).unwrap_err();
    assert!(matches!(err, DeployError::NoFeasiblePlacement { .. }));

    assert_eq!(c.stats().placement_rejects, 2);
    let prom = reg.snapshot().to_prometheus();
    assert!(
        prom.contains("innet_ctl_placement_reject_total{reason=\"platform_full\"} 2"),
        "labeled reject counter missing from export:\n{prom}"
    );
}
