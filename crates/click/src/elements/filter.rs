//! `IPFilter` — ordered allow/deny rules.

use std::any::Any;

use innet_packet::{pattern::PatternExpr, Packet};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// The action of an [`IPFilter`] rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// Pass the packet on output 0.
    Allow,
    /// Drop the packet.
    Deny,
}

/// `IPFilter(allow EXPR, deny EXPR, ...)` — evaluates rules in order and
/// applies the first matching action; the implicit final rule is `deny all`.
///
/// This is the element the paper's Figure 4 client uses
/// (`IPFilter(allow udp port 1500)`), and the per-tenant "personalized
/// firewall" of the scalability experiments.
#[derive(Debug)]
pub struct IPFilter {
    rules: Vec<(FilterAction, PatternExpr)>,
    passed: u64,
    dropped: u64,
}

impl IPFilter {
    /// Builds a filter from parsed rules.
    pub fn new(rules: Vec<(FilterAction, PatternExpr)>) -> IPFilter {
        IPFilter {
            rules,
            passed: 0,
            dropped: 0,
        }
    }

    /// Parses `IPFilter(...)`. Each argument is `allow <expr>`,
    /// `deny <expr>`, or `drop <expr>` (an alias for deny).
    pub fn from_args(args: &ConfigArgs) -> Result<IPFilter, ElementError> {
        let bad = |message: String| ElementError::BadArgs {
            class: "IPFilter",
            message,
        };
        let mut rules = Vec::new();
        for rule in args.all() {
            let mut parts = rule.splitn(2, char::is_whitespace);
            let action = match parts.next() {
                Some("allow") => FilterAction::Allow,
                Some("deny") | Some("drop") => FilterAction::Deny,
                other => {
                    return Err(bad(format!(
                        "rule must start with allow/deny/drop, got {other:?}"
                    )))
                }
            };
            let expr_s = parts.next().unwrap_or("");
            let expr: PatternExpr = expr_s
                .parse()
                .map_err(|e| bad(format!("bad expression '{expr_s}': {e}")))?;
            rules.push((action, expr));
        }
        if rules.is_empty() {
            return Err(bad("needs at least one rule".to_string()));
        }
        Ok(IPFilter::new(rules))
    }

    /// The parsed rules, in match order.
    pub fn rules(&self) -> &[(FilterAction, PatternExpr)] {
        &self.rules
    }

    /// Packets passed so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for IPFilter {
    fn class_name(&self) -> &'static str {
        "IPFilter"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let view = innet_packet::pattern::PacketView::of(&pkt);
        for (action, expr) in &self.rules {
            if expr.matches_view(&view) {
                match action {
                    FilterAction::Allow => {
                        self.passed += 1;
                        out.push(0, pkt);
                    }
                    FilterAction::Deny => self.dropped += 1,
                }
                return;
            }
        }
        // Implicit final deny.
        self.dropped += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn udp(dport: u16) -> Packet {
        PacketBuilder::udp()
            .dst(Ipv4Addr::new(9, 9, 9, 9), dport)
            .build()
    }

    #[test]
    fn paper_rule_allows_port_1500() {
        let args = ConfigArgs::parse("IPFilter", "allow udp port 1500");
        let mut f = IPFilter::from_args(&args).unwrap();
        let mut s = VecSink::new();
        f.push(0, udp(1500), &Context::default(), &mut s);
        f.push(0, udp(80), &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 1);
        assert_eq!(f.passed(), 1);
        assert_eq!(f.dropped(), 1);
    }

    #[test]
    fn first_match_wins() {
        let args = ConfigArgs::parse("IPFilter", "deny udp dst port 53, allow udp");
        let mut f = IPFilter::from_args(&args).unwrap();
        let mut s = VecSink::new();
        f.push(0, udp(53), &Context::default(), &mut s);
        f.push(0, udp(54), &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 1);
        assert_eq!(s.pushed[0].1.udp().unwrap().dst_port(), 54);
    }

    #[test]
    fn implicit_deny_all() {
        let args = ConfigArgs::parse("IPFilter", "allow tcp");
        let mut f = IPFilter::from_args(&args).unwrap();
        let mut s = VecSink::new();
        f.push(0, udp(1), &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
        assert_eq!(f.dropped(), 1);
    }

    #[test]
    fn bad_rules_rejected() {
        assert!(IPFilter::from_args(&ConfigArgs::parse("IPFilter", "permit udp")).is_err());
        assert!(IPFilter::from_args(&ConfigArgs::parse("IPFilter", "")).is_err());
        assert!(IPFilter::from_args(&ConfigArgs::parse("IPFilter", "allow wibble")).is_err());
    }
}
