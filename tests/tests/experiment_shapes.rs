//! Shape checks over every evaluation experiment: the paper's qualitative
//! claims must hold on small, fast parameterizations.

use innet::experiments::*;
use innet::sim::des::SECOND;

#[test]
fn fig05_shape() {
    let series = fig05_reaction::reaction_time(&fig05_reaction::ReactionParams {
        flows: 40,
        ..Default::default()
    });
    // First probe slow (boot), rest fast; later flows slower to boot.
    assert!(series.iter().all(|s| s.rtts_ms[0] > 10.0));
    assert!(series
        .iter()
        .all(|s| s.rtts_ms[1..].iter().all(|&r| r < 5.0)));
    assert!(series[39].rtts_ms[0] > series[0].rtts_ms[0]);
}

#[test]
fn fig06_shape() {
    let flows = fig06_http::http_concurrent(&fig06_http::HttpParams::default());
    let min = flows.iter().map(|f| f.total_s).fold(f64::MAX, f64::min);
    let max = flows.iter().map(|f| f.total_s).fold(0.0, f64::max);
    // The paper's band: ~16.6–17.8 s total.
    assert!(min > 15.5 && max < 18.0, "{min}..{max}");
}

#[test]
fn fig07_shape() {
    let pts = fig07_suspend::suspend_resume_sweep(&[0, 100, 200]);
    assert!(pts.windows(2).all(|w| w[1].suspend_ms > w[0].suspend_ms));
    assert!(pts
        .iter()
        .all(|p| p.suspend_ms < 110.0 && p.resume_ms < 110.0));
}

#[test]
fn fig08_shape() {
    // Small sweep: delivery complete and measurable throughput.
    let pts = fig08_consolidation::consolidation_sweep(&[8, 48], 512, 3);
    assert!(pts.iter().all(|p| (p.delivery - 1.0).abs() < 1e-9));
    assert!(pts.iter().all(|p| p.pps > 0.0));
}

#[test]
fn fig09_shape() {
    let pts = fig09_thousand::thousand_clients(
        &fig09_thousand::ScaleParams::default(),
        &[200, 600, 1000],
    );
    assert!((pts[2].offered_gbps - 8.0).abs() < 1e-9);
    assert!(pts
        .windows(2)
        .all(|w| w[1].offered_gbps > w[0].offered_gbps));
}

#[test]
fn fig10_shape() {
    let pts = fig10_controller::controller_scaling(&[3, 31]);
    assert!(pts.iter().all(|p| p.compile_ms > 0.0 && p.check_ms > 0.0));
    // No exponential blow-up.
    let t0 = pts[0].compile_ms + pts[0].check_ms;
    let t1 = pts[1].compile_ms + pts[1].check_ms;
    assert!(t1 < t0 * 110.0 + 100.0, "{t0} -> {t1}");
}

#[test]
fn fig11_shape() {
    let pts = fig11_sandbox::sandbox_cost(&[64, 1472], 4);
    assert_eq!(pts.len(), 2);
    assert!(pts
        .iter()
        .all(|p| p.plain_mpps > 0.0 && p.sandboxed_mpps > 0.0));
}

#[test]
fn fig12_shape() {
    for kind in fig12_middleboxes::KINDS {
        let pts = fig12_middleboxes::middlebox_sweep(kind, &[1, 8], 512);
        assert!(pts.iter().all(|p| p.mpps > 0.0), "{kind}");
    }
}

#[test]
fn fig13_shape() {
    let pts = fig13_energy::push_energy(&[30, 240], 30 * SECOND, 1800 * SECOND);
    assert!(pts[0].avg_power_mw > pts[1].avg_power_mw);
    assert!(pts[0].avg_power_mw > 200.0 && pts[1].avg_power_mw < 170.0);
}

#[test]
fn fig14_shape() {
    let pts = fig14_tunnel::tunnel_sweep(&[1.0, 5.0], 3);
    for p in &pts {
        assert!(p.udp_mbps > p.tcp_mbps, "{p:?}");
    }
    assert!(pts[0].udp_mbps > pts[1].udp_mbps);
}

#[test]
fn fig15_shape() {
    let s = fig15_slowloris::slowloris(&fig15_slowloris::SlowlorisParams::default());
    let at = |t: u64| s.iter().find(|x| x.t_s == t).unwrap();
    assert!(at(100).single_server_rps > 250.0);
    assert!(at(500).single_server_rps < 60.0);
    assert!(at(500).with_innet_rps > 200.0);
    assert!(at(850).single_server_rps > 250.0);
}

#[test]
fn fig16_shape() {
    let clients = fig16_cdn::cdn_downloads(&fig16_cdn::CdnParams::default());
    assert_eq!(clients.len(), 75);
    assert!(clients.iter().all(|c| c.cdn_ms < c.origin_ms));
}

#[test]
fn sec6_shape() {
    let density = sec6_capacity::vm_density(128);
    assert!(density.clickos_vms > 40 * density.linux_vms);
    let (stats, fits) = sec6_capacity::mawi_check(1);
    assert!(fits, "{stats:?}");
}
