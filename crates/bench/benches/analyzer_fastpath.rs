//! Analyzer fast path vs. full symbolic execution.
//!
//! Benchmarks the controller's uncached deploy pipeline over the stock
//! corpus (plus the paper's Figure 4 batcher as a Click config) with the
//! static-analysis fast path on and off. The fast-path runs decide every
//! verdict by abstract interpretation — no model compile, no symbolic
//! execution — and should be measurably faster per request.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use innet::prelude::*;
use std::hint::black_box;

const BATCHER: &str = r#"
    module batcher:
    FromNetfront()
      -> IPFilter(allow udp dst port 1500)
      -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
      -> TimedUnqueue(120, 100)
      -> dst :: ToNetfront();
"#;

const CORPUS: &[&str] = &[
    "stock dns: geo-dns",
    "stock edge: reverse-proxy",
    "stock vm: x86-vm",
    "stock fwd: explicit-proxy",
    BATCHER,
];

fn controller(analysis: bool) -> Controller {
    let mut c = Controller::new(Topology::figure3());
    c.set_analysis_enabled(analysis);
    c.register_client(
        "cdn-corp",
        RequesterClass::ThirdParty,
        vec!["172.16.15.133".parse().unwrap()],
    );
    c
}

/// One uncached pass over the corpus. A fresh controller per iteration
/// keeps the verdict cache cold, so the runs compare the verification
/// pipelines rather than the cache.
fn deploy_corpus(mut c: Controller) -> Controller {
    for (i, text) in CORPUS.iter().enumerate() {
        let mut req = ClientRequest::parse(text).unwrap();
        req.module_name = format!("m{i}");
        let _ = black_box(c.deploy("cdn-corp", req));
    }
    c
}

fn bench_fastpath(c: &mut Criterion) {
    c.bench_function("deploy_corpus/analyzer_fast_path", |b| {
        b.iter_batched(
            || controller(true),
            |ctl| {
                let ctl = deploy_corpus(ctl);
                assert!(ctl.stats().fastpath_hits > 0);
                ctl
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("deploy_corpus/full_symnet", |b| {
        b.iter_batched(
            || controller(false),
            |ctl| {
                let ctl = deploy_corpus(ctl);
                assert_eq!(ctl.stats().fastpath_hits, 0);
                ctl
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_fastpath);
criterion_main!(benches);
