//! Shared reporting helpers for the figure benches.
//!
//! Every bench prints its series to stdout in the paper's row format and
//! mirrors it to `target/innet-reports/<name>.txt`, so a full
//! `cargo bench` leaves a directory of reproduced tables behind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

/// A tiny line-oriented report that tees to stdout and a file.
pub struct Report {
    name: &'static str,
    body: String,
}

impl Report {
    /// Starts a report for a figure/table name like `"fig05"`.
    pub fn new(name: &'static str, title: &str) -> Report {
        let mut r = Report {
            name,
            body: String::new(),
        };
        r.line(&format!("# {title}"));
        r
    }

    /// Appends (and prints) one line.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        let _ = writeln!(self.body, "{s}");
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Writes the report file under `target/innet-reports/`.
    pub fn finish(self) {
        let dir = match std::env::var("CARGO_TARGET_DIR") {
            Ok(t) => PathBuf::from(t),
            // Anchor at the workspace target dir regardless of bench CWD.
            Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"),
        }
        .join("innet-reports");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.txt", self.name));
            if std::fs::write(&path, self.body).is_ok() {
                eprintln!("[report written to {}]", path.display());
            }
        }
    }
}

/// True when the harness was invoked by `cargo bench` in quick mode
/// (`--quick` or the `INNET_BENCH_QUICK` env var): benches shrink their
/// parameter sweeps so CI stays fast.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("INNET_BENCH_QUICK").is_ok()
}

// ---------------------------------------------------------------------------
// Benchmark snapshots: the recorded perf trajectory.
// ---------------------------------------------------------------------------

/// Version stamp of the snapshot schema; bump on breaking changes.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// One measured point: a corpus, an engine mode, a worker count, and the
/// observed rates.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Workload name (e.g. `"consolidated"`, `"fig12-firewall"`).
    pub corpus: String,
    /// `"interpreted"` or `"compiled"`.
    pub mode: String,
    /// Worker threads the corpus ran on (1 for the native runner).
    pub workers: u64,
    /// Measured packets per second.
    pub pps: f64,
    /// Measured throughput in Gbit/s at the corpus frame size.
    pub gbps: f64,
}

/// A benchmark snapshot: the machine-readable record a bench run leaves
/// behind (`BENCH_<name>.json`), committed to the repository so the perf
/// trajectory across changes stays in history.
///
/// The container has no `serde_json`, so the format is hand-rolled here:
/// [`BenchSnapshot::to_json`] emits it and [`BenchSnapshot::parse`]
/// validates it (CI round-trips a freshly emitted file through the
/// parser).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Which bench produced this snapshot.
    pub bench: String,
    /// The measured points.
    pub rows: Vec<BenchRow>,
}

impl BenchSnapshot {
    /// An empty snapshot for bench `name`.
    pub fn new(name: &str) -> BenchSnapshot {
        BenchSnapshot {
            bench: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one measured row.
    pub fn row(&mut self, corpus: &str, mode: &str, workers: u64, pps: f64, gbps: f64) {
        self.rows.push(BenchRow {
            corpus: corpus.to_string(),
            mode: mode.to_string(),
            workers,
            pps,
            gbps,
        });
    }

    /// Serializes to the snapshot JSON schema.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.3}")
            } else {
                "0.000".to_string()
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n  \"bench\": \"{}\",\n  \"rows\": [",
            esc(&self.bench)
        );
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"corpus\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"pps\": {}, \"gbps\": {}}}",
                if i == 0 { "" } else { "," },
                esc(&r.corpus),
                esc(&r.mode),
                r.workers,
                num(r.pps),
                num(r.gbps)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses and schema-validates snapshot JSON: required fields, known
    /// `mode` values, positive worker counts, finite non-negative rates.
    pub fn parse(text: &str) -> Result<BenchSnapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let version = json::field(obj, "schema_version")?
            .as_num()
            .ok_or("schema_version must be a number")?;
        if version != SNAPSHOT_SCHEMA_VERSION as f64 {
            return Err(format!("unsupported schema_version {version}"));
        }
        let bench = json::field(obj, "bench")?
            .as_str()
            .ok_or("bench must be a string")?
            .to_string();
        if bench.is_empty() {
            return Err("bench must be non-empty".to_string());
        }
        let rows_v = json::field(obj, "rows")?
            .as_arr()
            .ok_or("rows must be an array")?;
        let mut rows = Vec::new();
        for (i, rv) in rows_v.iter().enumerate() {
            let ro = rv.as_obj().ok_or(format!("row {i} must be an object"))?;
            let corpus = json::field(ro, "corpus")?
                .as_str()
                .ok_or(format!("row {i}: corpus must be a string"))?
                .to_string();
            let mode = json::field(ro, "mode")?
                .as_str()
                .ok_or(format!("row {i}: mode must be a string"))?
                .to_string();
            if mode != "interpreted" && mode != "compiled" {
                return Err(format!("row {i}: unknown mode '{mode}'"));
            }
            let workers = json::field(ro, "workers")?
                .as_num()
                .ok_or(format!("row {i}: workers must be a number"))?;
            if workers < 1.0 || workers.fract() != 0.0 {
                return Err(format!("row {i}: workers must be a positive integer"));
            }
            let pps = json::field(ro, "pps")?
                .as_num()
                .ok_or(format!("row {i}: pps must be a number"))?;
            let gbps = json::field(ro, "gbps")?
                .as_num()
                .ok_or(format!("row {i}: gbps must be a number"))?;
            if !(pps.is_finite() && pps >= 0.0 && gbps.is_finite() && gbps >= 0.0) {
                return Err(format!("row {i}: rates must be finite and non-negative"));
            }
            rows.push(BenchRow {
                corpus,
                mode,
                workers: workers as u64,
                pps,
                gbps,
            });
        }
        Ok(BenchSnapshot { bench, rows })
    }

    /// Writes `BENCH_<bench>.json` into the snapshot directory
    /// (`INNET_BENCH_SNAPSHOT_DIR`, or the workspace root so committed
    /// snapshots live beside the code they measure). Returns the path on
    /// success.
    pub fn write(&self) -> Option<PathBuf> {
        write_snapshot(&self.bench, &self.to_json())
    }
}

/// Resolves the snapshot directory and writes `BENCH_<bench>.json`.
fn write_snapshot(bench: &str, json: &str) -> Option<PathBuf> {
    let dir = match std::env::var("INNET_BENCH_SNAPSHOT_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let path = dir.join(format!("BENCH_{bench}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => {
            eprintln!("[snapshot written to {}]", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("[snapshot write failed: {e}]");
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Admission-latency snapshots (the deploy-storm bench).
// ---------------------------------------------------------------------------

/// One admission-latency row: a verification engine mode driven over a
/// request corpus, with the observed per-request latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRow {
    /// Corpus name (e.g. `"mixed-stock-novel"`).
    pub corpus: String,
    /// `"whole-graph"` or `"compositional"`.
    pub mode: String,
    /// Uncached admission requests measured.
    pub requests: u64,
    /// Mean admission latency in nanoseconds.
    pub mean_ns: f64,
    /// Median admission latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile admission latency in nanoseconds.
    pub p99_ns: f64,
    /// Chain summaries served from the fleet-wide cache during the run
    /// (zero in whole-graph mode by construction).
    pub summary_hits: u64,
}

/// The machine-readable record the deploy-storm bench leaves behind
/// (`BENCH_admission.json`): per-mode admission latency percentiles, so
/// the compositional-vs-whole-graph trajectory stays in history alongside
/// the throughput snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionSnapshot {
    /// Which bench produced this snapshot (`"admission"`).
    pub bench: String,
    /// The measured rows.
    pub rows: Vec<AdmissionRow>,
}

impl AdmissionSnapshot {
    /// An empty snapshot for bench `name`.
    pub fn new(name: &str) -> AdmissionSnapshot {
        AdmissionSnapshot {
            bench: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one measured row.
    #[allow(clippy::too_many_arguments)]
    pub fn row(
        &mut self,
        corpus: &str,
        mode: &str,
        requests: u64,
        mean_ns: f64,
        p50_ns: f64,
        p99_ns: f64,
        summary_hits: u64,
    ) {
        self.rows.push(AdmissionRow {
            corpus: corpus.to_string(),
            mode: mode.to_string(),
            requests,
            mean_ns,
            p50_ns,
            p99_ns,
            summary_hits,
        });
    }

    /// Serializes to the snapshot JSON schema.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.3}")
            } else {
                "0.000".to_string()
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n  \"bench\": \"{}\",\n  \"rows\": [",
            esc(&self.bench)
        );
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"corpus\": \"{}\", \"mode\": \"{}\", \"requests\": {}, \
                 \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"summary_hits\": {}}}",
                if i == 0 { "" } else { "," },
                esc(&r.corpus),
                esc(&r.mode),
                r.requests,
                num(r.mean_ns),
                num(r.p50_ns),
                num(r.p99_ns),
                r.summary_hits
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses and schema-validates admission snapshot JSON: required
    /// fields, the closed `mode` set, positive request counts, finite
    /// non-negative latencies with `p50 <= p99`.
    pub fn parse(text: &str) -> Result<AdmissionSnapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let version = json::field(obj, "schema_version")?
            .as_num()
            .ok_or("schema_version must be a number")?;
        if version != SNAPSHOT_SCHEMA_VERSION as f64 {
            return Err(format!("unsupported schema_version {version}"));
        }
        let bench = json::field(obj, "bench")?
            .as_str()
            .ok_or("bench must be a string")?
            .to_string();
        if bench.is_empty() {
            return Err("bench must be non-empty".to_string());
        }
        let rows_v = json::field(obj, "rows")?
            .as_arr()
            .ok_or("rows must be an array")?;
        let mut rows = Vec::new();
        for (i, rv) in rows_v.iter().enumerate() {
            let ro = rv.as_obj().ok_or(format!("row {i} must be an object"))?;
            let corpus = json::field(ro, "corpus")?
                .as_str()
                .ok_or(format!("row {i}: corpus must be a string"))?
                .to_string();
            let mode = json::field(ro, "mode")?
                .as_str()
                .ok_or(format!("row {i}: mode must be a string"))?
                .to_string();
            if mode != "whole-graph" && mode != "compositional" {
                return Err(format!("row {i}: unknown mode '{mode}'"));
            }
            let requests = json::field(ro, "requests")?
                .as_num()
                .ok_or(format!("row {i}: requests must be a number"))?;
            if requests < 1.0 || requests.fract() != 0.0 {
                return Err(format!("row {i}: requests must be a positive integer"));
            }
            let lat = |name: &str| -> Result<f64, String> {
                let x = json::field(ro, name)?
                    .as_num()
                    .ok_or(format!("row {i}: {name} must be a number"))?;
                if !(x.is_finite() && x >= 0.0) {
                    return Err(format!("row {i}: {name} must be finite and non-negative"));
                }
                Ok(x)
            };
            let mean_ns = lat("mean_ns")?;
            let p50_ns = lat("p50_ns")?;
            let p99_ns = lat("p99_ns")?;
            if p50_ns > p99_ns {
                return Err(format!("row {i}: p50_ns exceeds p99_ns"));
            }
            let summary_hits = json::field(ro, "summary_hits")?
                .as_num()
                .ok_or(format!("row {i}: summary_hits must be a number"))?;
            if summary_hits < 0.0 || summary_hits.fract() != 0.0 {
                return Err(format!(
                    "row {i}: summary_hits must be a non-negative integer"
                ));
            }
            rows.push(AdmissionRow {
                corpus,
                mode,
                requests: requests as u64,
                mean_ns,
                p50_ns,
                p99_ns,
                summary_hits: summary_hits as u64,
            });
        }
        Ok(AdmissionSnapshot { bench, rows })
    }

    /// Writes `BENCH_<bench>.json` (same directory resolution as
    /// [`BenchSnapshot::write`]). Returns the path on success.
    pub fn write(&self) -> Option<PathBuf> {
        write_snapshot(&self.bench, &self.to_json())
    }
}

// ---------------------------------------------------------------------------
// Fleet snapshots (the fleet placement + migration bench).
// ---------------------------------------------------------------------------

/// One fleet-bench row: a tenant scenario driven over a generated
/// capacitated topology, with the observed placement-latency and
/// migration-downtime distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRow {
    /// Tenant-mix scenario (e.g. `"stock"`, `"novel"`, `"mixed-stock-novel"`).
    pub scenario: String,
    /// Nodes in the generated topology.
    pub nodes: u64,
    /// Platforms among those nodes.
    pub platforms: u64,
    /// Placements (deploys) measured.
    pub placements: u64,
    /// Median controller placement latency in nanoseconds.
    pub placement_p50_ns: f64,
    /// 99th-percentile controller placement latency in nanoseconds.
    pub placement_p99_ns: f64,
    /// Live migrations completed during the run.
    pub migrations: u64,
    /// Median migration downtime (suspend → resume-complete) in
    /// nanoseconds; zero when no migrations ran.
    pub downtime_p50_ns: f64,
    /// 99th-percentile migration downtime in nanoseconds.
    pub downtime_p99_ns: f64,
}

/// The machine-readable record the fleet bench leaves behind
/// (`BENCH_fleet.json`): placement latency and live-migration downtime
/// over a seeded thousand-node topology, committed so the fleet-fabric
/// perf trajectory stays in history.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Which bench produced this snapshot (`"fleet"`).
    pub bench: String,
    /// The measured rows.
    pub rows: Vec<FleetRow>,
}

impl FleetSnapshot {
    /// An empty snapshot for bench `name`.
    pub fn new(name: &str) -> FleetSnapshot {
        FleetSnapshot {
            bench: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one measured row.
    #[allow(clippy::too_many_arguments)]
    pub fn row(
        &mut self,
        scenario: &str,
        nodes: u64,
        platforms: u64,
        placements: u64,
        placement_p50_ns: f64,
        placement_p99_ns: f64,
        migrations: u64,
        downtime_p50_ns: f64,
        downtime_p99_ns: f64,
    ) {
        self.rows.push(FleetRow {
            scenario: scenario.to_string(),
            nodes,
            platforms,
            placements,
            placement_p50_ns,
            placement_p99_ns,
            migrations,
            downtime_p50_ns,
            downtime_p99_ns,
        });
    }

    /// Serializes to the snapshot JSON schema.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.3}")
            } else {
                "0.000".to_string()
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n  \"bench\": \"{}\",\n  \"rows\": [",
            esc(&self.bench)
        );
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"scenario\": \"{}\", \"nodes\": {}, \"platforms\": {}, \
                 \"placements\": {}, \"placement_p50_ns\": {}, \"placement_p99_ns\": {}, \
                 \"migrations\": {}, \"downtime_p50_ns\": {}, \"downtime_p99_ns\": {}}}",
                if i == 0 { "" } else { "," },
                esc(&r.scenario),
                r.nodes,
                r.platforms,
                r.placements,
                num(r.placement_p50_ns),
                num(r.placement_p99_ns),
                r.migrations,
                num(r.downtime_p50_ns),
                num(r.downtime_p99_ns)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses and schema-validates fleet snapshot JSON: required fields,
    /// positive node/platform/placement counts with `platforms <= nodes`,
    /// finite non-negative latencies with `p50 <= p99` for both the
    /// placement and downtime distributions, and zero downtime required
    /// when no migrations ran.
    pub fn parse(text: &str) -> Result<FleetSnapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let version = json::field(obj, "schema_version")?
            .as_num()
            .ok_or("schema_version must be a number")?;
        if version != SNAPSHOT_SCHEMA_VERSION as f64 {
            return Err(format!("unsupported schema_version {version}"));
        }
        let bench = json::field(obj, "bench")?
            .as_str()
            .ok_or("bench must be a string")?
            .to_string();
        if bench.is_empty() {
            return Err("bench must be non-empty".to_string());
        }
        let rows_v = json::field(obj, "rows")?
            .as_arr()
            .ok_or("rows must be an array")?;
        let mut rows = Vec::new();
        for (i, rv) in rows_v.iter().enumerate() {
            let ro = rv.as_obj().ok_or(format!("row {i} must be an object"))?;
            let scenario = json::field(ro, "scenario")?
                .as_str()
                .ok_or(format!("row {i}: scenario must be a string"))?
                .to_string();
            if scenario.is_empty() {
                return Err(format!("row {i}: scenario must be non-empty"));
            }
            let count = |name: &str, min: f64| -> Result<u64, String> {
                let x = json::field(ro, name)?
                    .as_num()
                    .ok_or(format!("row {i}: {name} must be a number"))?;
                if x < min || x.fract() != 0.0 {
                    return Err(format!("row {i}: {name} must be an integer >= {min}"));
                }
                Ok(x as u64)
            };
            let lat = |name: &str| -> Result<f64, String> {
                let x = json::field(ro, name)?
                    .as_num()
                    .ok_or(format!("row {i}: {name} must be a number"))?;
                if !(x.is_finite() && x >= 0.0) {
                    return Err(format!("row {i}: {name} must be finite and non-negative"));
                }
                Ok(x)
            };
            let nodes = count("nodes", 1.0)?;
            let platforms = count("platforms", 1.0)?;
            if platforms > nodes {
                return Err(format!("row {i}: platforms exceed nodes"));
            }
            let placements = count("placements", 1.0)?;
            let placement_p50_ns = lat("placement_p50_ns")?;
            let placement_p99_ns = lat("placement_p99_ns")?;
            if placement_p50_ns > placement_p99_ns {
                return Err(format!(
                    "row {i}: placement_p50_ns exceeds placement_p99_ns"
                ));
            }
            let migrations = count("migrations", 0.0)?;
            let downtime_p50_ns = lat("downtime_p50_ns")?;
            let downtime_p99_ns = lat("downtime_p99_ns")?;
            if downtime_p50_ns > downtime_p99_ns {
                return Err(format!("row {i}: downtime_p50_ns exceeds downtime_p99_ns"));
            }
            if migrations == 0 && downtime_p99_ns != 0.0 {
                return Err(format!("row {i}: downtime reported without migrations"));
            }
            rows.push(FleetRow {
                scenario,
                nodes,
                platforms,
                placements,
                placement_p50_ns,
                placement_p99_ns,
                migrations,
                downtime_p50_ns,
                downtime_p99_ns,
            });
        }
        Ok(FleetSnapshot { bench, rows })
    }

    /// Writes `BENCH_<bench>.json` (same directory resolution as
    /// [`BenchSnapshot::write`]). Returns the path on success.
    pub fn write(&self) -> Option<PathBuf> {
        write_snapshot(&self.bench, &self.to_json())
    }
}

// ---------------------------------------------------------------------------
// Scenario snapshots (the fleet scenario-engine bench).
// ---------------------------------------------------------------------------

/// One scenario-bench row: a scripted fleet incident (PoP kill, flash
/// crowd, consolidation, CDN tiering) driven through the `FleetDriver`,
/// with the observed failover and bandwidth-pricing outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Scenario name (e.g. `"kill-pop"`, `"flash-crowd"`).
    pub scenario: String,
    /// Tenants registered on the fleet during the run.
    pub tenants: u64,
    /// Tenants successfully re-homed by regional failover.
    pub rehomed: u64,
    /// Median per-tenant re-home downtime in nanoseconds (zero when
    /// nothing re-homed).
    pub rehome_p50_ns: f64,
    /// 99th-percentile per-tenant re-home downtime in nanoseconds.
    pub rehome_p99_ns: f64,
    /// Packets tail-dropped at saturated fabric links during the run.
    pub link_drops: u64,
}

/// The machine-readable record the scenario bench leaves behind
/// (`BENCH_scenarios.json`): per-scenario failover downtime percentiles
/// and link-drop counts over the generated fleet, committed so the
/// scenario-engine trajectory stays in history.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSnapshot {
    /// Which bench produced this snapshot (`"scenarios"`).
    pub bench: String,
    /// The measured rows.
    pub rows: Vec<ScenarioRow>,
}

impl ScenarioSnapshot {
    /// An empty snapshot for bench `name`.
    pub fn new(name: &str) -> ScenarioSnapshot {
        ScenarioSnapshot {
            bench: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one measured row.
    pub fn row(
        &mut self,
        scenario: &str,
        tenants: u64,
        rehomed: u64,
        rehome_p50_ns: f64,
        rehome_p99_ns: f64,
        link_drops: u64,
    ) {
        self.rows.push(ScenarioRow {
            scenario: scenario.to_string(),
            tenants,
            rehomed,
            rehome_p50_ns,
            rehome_p99_ns,
            link_drops,
        });
    }

    /// Serializes to the snapshot JSON schema.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.3}")
            } else {
                "0.000".to_string()
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n  \"bench\": \"{}\",\n  \"rows\": [",
            esc(&self.bench)
        );
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"scenario\": \"{}\", \"tenants\": {}, \"rehomed\": {}, \
                 \"rehome_p50_ns\": {}, \"rehome_p99_ns\": {}, \"link_drops\": {}}}",
                if i == 0 { "" } else { "," },
                esc(&r.scenario),
                r.tenants,
                r.rehomed,
                num(r.rehome_p50_ns),
                num(r.rehome_p99_ns),
                r.link_drops
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses and schema-validates scenario snapshot JSON: required
    /// fields, at least one tenant per row, `rehomed <= tenants`, finite
    /// non-negative downtimes with `p50 <= p99`, and zero downtime
    /// required when nothing re-homed.
    pub fn parse(text: &str) -> Result<ScenarioSnapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let version = json::field(obj, "schema_version")?
            .as_num()
            .ok_or("schema_version must be a number")?;
        if version != SNAPSHOT_SCHEMA_VERSION as f64 {
            return Err(format!("unsupported schema_version {version}"));
        }
        let bench = json::field(obj, "bench")?
            .as_str()
            .ok_or("bench must be a string")?
            .to_string();
        if bench.is_empty() {
            return Err("bench must be non-empty".to_string());
        }
        let rows_v = json::field(obj, "rows")?
            .as_arr()
            .ok_or("rows must be an array")?;
        let mut rows = Vec::new();
        for (i, rv) in rows_v.iter().enumerate() {
            let ro = rv.as_obj().ok_or(format!("row {i} must be an object"))?;
            let scenario = json::field(ro, "scenario")?
                .as_str()
                .ok_or(format!("row {i}: scenario must be a string"))?
                .to_string();
            if scenario.is_empty() {
                return Err(format!("row {i}: scenario must be non-empty"));
            }
            let count = |name: &str, min: f64| -> Result<u64, String> {
                let x = json::field(ro, name)?
                    .as_num()
                    .ok_or(format!("row {i}: {name} must be a number"))?;
                if x < min || x.fract() != 0.0 {
                    return Err(format!("row {i}: {name} must be an integer >= {min}"));
                }
                Ok(x as u64)
            };
            let lat = |name: &str| -> Result<f64, String> {
                let x = json::field(ro, name)?
                    .as_num()
                    .ok_or(format!("row {i}: {name} must be a number"))?;
                if !(x.is_finite() && x >= 0.0) {
                    return Err(format!("row {i}: {name} must be finite and non-negative"));
                }
                Ok(x)
            };
            let tenants = count("tenants", 1.0)?;
            let rehomed = count("rehomed", 0.0)?;
            if rehomed > tenants {
                return Err(format!("row {i}: rehomed exceeds tenants"));
            }
            let rehome_p50_ns = lat("rehome_p50_ns")?;
            let rehome_p99_ns = lat("rehome_p99_ns")?;
            if rehome_p50_ns > rehome_p99_ns {
                return Err(format!("row {i}: rehome_p50_ns exceeds rehome_p99_ns"));
            }
            if rehomed == 0 && rehome_p99_ns != 0.0 {
                return Err(format!("row {i}: downtime reported without re-homes"));
            }
            let link_drops = count("link_drops", 0.0)?;
            rows.push(ScenarioRow {
                scenario,
                tenants,
                rehomed,
                rehome_p50_ns,
                rehome_p99_ns,
                link_drops,
            });
        }
        Ok(ScenarioSnapshot { bench, rows })
    }

    /// Writes `BENCH_<bench>.json` (same directory resolution as
    /// [`BenchSnapshot::write`]). Returns the path on success.
    pub fn write(&self) -> Option<PathBuf> {
        write_snapshot(&self.bench, &self.to_json())
    }
}

/// A minimal JSON reader — just enough structure to validate snapshots
/// without `serde_json` (the container is offline; see the vendor note in
/// the workspace manifest).
mod json {
    #![allow(dead_code)] // general-purpose reader; snapshots use a subset

    /// A parsed JSON value.
    #[derive(Debug)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Looks up a required object field.
    pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or(format!("missing field '{name}'"))
    }

    /// Parses one JSON document (trailing garbage is an error).
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut obj = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(obj));
                }
                loop {
                    skip_ws(b, pos);
                    let key = string(b, pos)?;
                    expect(b, pos, b':')?;
                    obj.push((key, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(obj));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut arr = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(arr));
                }
                loop {
                    arr.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(arr));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape")
                                .and_then(|h| {
                                    std::str::from_utf8(h).map_err(|_| "bad \\u escape")
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 sequences from the raw bytes.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = *pos - 1;
                        let mut end = *pos;
                        while end < b.len() && (b[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        let s = std::str::from_utf8(&b[start..end])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(s);
                        *pos = end;
                    }
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        let mut s = BenchSnapshot::new("parallel_scaling");
        s.row("consolidated", "interpreted", 1, 1_234_567.891, 0.632);
        s.row("consolidated", "compiled", 1, 2_500_000.0, 1.28);
        s.row("fig12-firewall", "compiled", 4, 9_000_000.5, 105.984);
        s
    }

    #[test]
    fn snapshot_roundtrips_through_parser() {
        let s = sample();
        let parsed = BenchSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed.bench, "parallel_scaling");
        assert_eq!(parsed.rows.len(), 3);
        assert_eq!(parsed.rows[1].mode, "compiled");
        assert_eq!(parsed.rows[2].workers, 4);
        assert!((parsed.rows[0].pps - 1_234_567.891).abs() < 0.01);
    }

    #[test]
    fn parser_rejects_schema_violations() {
        // Unknown mode.
        let bad = sample().to_json().replace("interpreted", "jit");
        assert!(BenchSnapshot::parse(&bad).is_err());
        // Missing field.
        let bad = sample().to_json().replace("\"workers\": 1,", "");
        assert!(BenchSnapshot::parse(&bad).is_err());
        // Wrong version.
        let bad = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(BenchSnapshot::parse(&bad).is_err());
        // Not JSON at all.
        assert!(BenchSnapshot::parse("pps go brr").is_err());
        // Negative rate.
        let mut s = BenchSnapshot::new("x");
        s.row("c", "compiled", 1, -5.0, 0.0);
        assert!(BenchSnapshot::parse(&s.to_json()).is_err());
    }

    #[test]
    fn json_reader_handles_scalars() {
        let v = super::json::parse(r#"{"a": true, "b": false, "c": null, "d": [1, "x"]}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(super::json::field(obj, "a").unwrap().as_bool(), Some(true));
        assert_eq!(super::json::field(obj, "b").unwrap().as_bool(), Some(false));
        assert!(super::json::field(obj, "d").unwrap().as_arr().unwrap()[1]
            .as_str()
            .is_some());
        assert!(super::json::field(obj, "e").is_err());
    }

    fn admission_sample() -> AdmissionSnapshot {
        let mut s = AdmissionSnapshot::new("admission");
        s.row(
            "mixed-stock-novel",
            "whole-graph",
            100_000,
            81_234.5,
            74_000.0,
            190_000.0,
            0,
        );
        s.row(
            "mixed-stock-novel",
            "compositional",
            100_000,
            31_234.5,
            28_000.0,
            90_000.0,
            99_000,
        );
        s
    }

    #[test]
    fn admission_snapshot_roundtrips_through_parser() {
        let s = admission_sample();
        let parsed = AdmissionSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed.bench, "admission");
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].mode, "whole-graph");
        assert_eq!(parsed.rows[1].summary_hits, 99_000);
        assert!((parsed.rows[1].mean_ns - 31_234.5).abs() < 0.01);
    }

    #[test]
    fn admission_parser_rejects_schema_violations() {
        // Unknown mode.
        let bad = admission_sample().to_json().replace("whole-graph", "vibes");
        assert!(AdmissionSnapshot::parse(&bad).is_err());
        // Missing field.
        let bad = admission_sample()
            .to_json()
            .replace("\"requests\": 100000, ", "");
        assert!(AdmissionSnapshot::parse(&bad).is_err());
        // Inverted percentiles.
        let mut s = AdmissionSnapshot::new("admission");
        s.row("c", "compositional", 1, 5.0, 9.0, 4.0, 0);
        assert!(AdmissionSnapshot::parse(&s.to_json()).is_err());
        // The throughput parser must not accept the admission schema
        // (and vice versa): the validator dispatches on whichever fits.
        assert!(BenchSnapshot::parse(&admission_sample().to_json()).is_err());
        assert!(AdmissionSnapshot::parse(&sample().to_json()).is_err());
    }

    fn fleet_sample() -> FleetSnapshot {
        let mut s = FleetSnapshot::new("fleet");
        s.row(
            "mixed-stock-novel",
            1_001,
            400,
            64,
            45_000.0,
            210_000.0,
            8,
            70_000_000.0,
            75_000_000.0,
        );
        s.row("stock", 1_001, 400, 32, 20_000.0, 90_000.0, 0, 0.0, 0.0);
        s
    }

    #[test]
    fn fleet_snapshot_roundtrips_through_parser() {
        let s = fleet_sample();
        let parsed = FleetSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed.bench, "fleet");
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].nodes, 1_001);
        assert_eq!(parsed.rows[0].migrations, 8);
        assert!((parsed.rows[0].downtime_p50_ns - 70_000_000.0).abs() < 0.01);
        assert_eq!(parsed.rows[1].migrations, 0);
    }

    #[test]
    fn fleet_parser_rejects_schema_violations() {
        // Missing field.
        let bad = fleet_sample().to_json().replace("\"nodes\": 1001, ", "");
        assert!(FleetSnapshot::parse(&bad).is_err());
        // More platforms than nodes.
        let mut s = FleetSnapshot::new("fleet");
        s.row("x", 10, 11, 1, 1.0, 2.0, 0, 0.0, 0.0);
        assert!(FleetSnapshot::parse(&s.to_json()).is_err());
        // Inverted placement percentiles.
        let mut s = FleetSnapshot::new("fleet");
        s.row("x", 10, 4, 1, 9.0, 4.0, 0, 0.0, 0.0);
        assert!(FleetSnapshot::parse(&s.to_json()).is_err());
        // Downtime without migrations.
        let mut s = FleetSnapshot::new("fleet");
        s.row("x", 10, 4, 1, 1.0, 2.0, 0, 3.0, 4.0);
        assert!(FleetSnapshot::parse(&s.to_json()).is_err());
        // The three schemas stay mutually exclusive: the validator
        // dispatches on whichever parser accepts.
        assert!(BenchSnapshot::parse(&fleet_sample().to_json()).is_err());
        assert!(AdmissionSnapshot::parse(&fleet_sample().to_json()).is_err());
        assert!(FleetSnapshot::parse(&sample().to_json()).is_err());
        assert!(FleetSnapshot::parse(&admission_sample().to_json()).is_err());
    }

    fn scenario_sample() -> ScenarioSnapshot {
        let mut s = ScenarioSnapshot::new("scenarios");
        s.row("kill-pop", 40, 38, 50_000_000.0, 52_000_000.0, 120);
        s.row("flash-crowd", 40, 0, 0.0, 0.0, 4_096);
        s
    }

    #[test]
    fn scenario_snapshot_roundtrips_through_parser() {
        let s = scenario_sample();
        let parsed = ScenarioSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed.bench, "scenarios");
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].rehomed, 38);
        assert!((parsed.rows[0].rehome_p50_ns - 50_000_000.0).abs() < 0.01);
        assert_eq!(parsed.rows[1].link_drops, 4_096);
    }

    #[test]
    fn scenario_parser_rejects_schema_violations() {
        // Missing field.
        let bad = scenario_sample().to_json().replace("\"tenants\": 40, ", "");
        assert!(ScenarioSnapshot::parse(&bad).is_err());
        // More re-homes than tenants.
        let mut s = ScenarioSnapshot::new("scenarios");
        s.row("x", 4, 5, 1.0, 2.0, 0);
        assert!(ScenarioSnapshot::parse(&s.to_json()).is_err());
        // Inverted percentiles.
        let mut s = ScenarioSnapshot::new("scenarios");
        s.row("x", 4, 2, 9.0, 4.0, 0);
        assert!(ScenarioSnapshot::parse(&s.to_json()).is_err());
        // Downtime without re-homes.
        let mut s = ScenarioSnapshot::new("scenarios");
        s.row("x", 4, 0, 1.0, 2.0, 0);
        assert!(ScenarioSnapshot::parse(&s.to_json()).is_err());
        // The four schemas stay mutually exclusive: the validator
        // dispatches on whichever parser accepts.
        assert!(BenchSnapshot::parse(&scenario_sample().to_json()).is_err());
        assert!(AdmissionSnapshot::parse(&scenario_sample().to_json()).is_err());
        assert!(FleetSnapshot::parse(&scenario_sample().to_json()).is_err());
        assert!(ScenarioSnapshot::parse(&sample().to_json()).is_err());
        assert!(ScenarioSnapshot::parse(&admission_sample().to_json()).is_err());
        assert!(ScenarioSnapshot::parse(&fleet_sample().to_json()).is_err());
    }

    #[test]
    fn non_finite_rates_serialize_as_zero() {
        let mut s = BenchSnapshot::new("x");
        s.row("c", "compiled", 1, f64::NAN, f64::INFINITY);
        let parsed = BenchSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed.rows[0].pps, 0.0);
        assert_eq!(parsed.rows[0].gbps, 0.0);
    }
}
