//! The symbolic packet: field layers, constraint store, trace, and write
//! history.

use std::collections::HashMap;

use crate::{
    field::{Field, FieldMap, ALL_FIELDS},
    plist::PList,
    value::{Origin, RangeSet, SymValue, VarId, VarInfo},
};

/// One step of a symbolic packet's journey: which node it arrived at, on
/// which input port, and a snapshot of its header fields at arrival.
#[derive(Debug, Clone)]
pub struct Hop {
    /// Node index within the executing graph.
    pub node: usize,
    /// Input port the packet arrived on.
    pub in_port: usize,
    /// Header fields at arrival (before the node processes the packet).
    pub fields: FieldMap,
}

/// A record of a field being overwritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRec {
    /// The field written.
    pub field: Field,
    /// Index into the trace of the hop during which the write happened
    /// (`usize::MAX` when written before injection).
    pub at_hop: usize,
}

/// A symbolic packet — a *set* of concrete packets sharing constraints
/// (paper §3).
#[derive(Debug, Clone)]
pub struct SymPacket {
    /// Header layers; the last entry is the current (outermost) header.
    layers: Vec<FieldMap>,
    store: HashMap<VarId, VarInfo>,
    next_var: VarId,
    feasible: bool,
    /// Arrival history (persistent: branches share their common prefix,
    /// so cloning a packet is O(1) regardless of path length).
    trace: PList<Hop>,
    /// Field overwrite history (persistent, like the trace).
    writes: PList<WriteRec>,
    /// Field values at injection time (for binding comparisons).
    pub ingress: FieldMap,
}

impl SymPacket {
    /// A fully unconstrained packet: every header field is a fresh free
    /// variable (except `FwTag`, which starts at `Const(0)`, and `TcpSyn`,
    /// constrained to {0,1}).
    pub fn unconstrained() -> SymPacket {
        let mut p = SymPacket {
            layers: vec![FieldMap::zeroed()],
            store: HashMap::new(),
            next_var: 0,
            feasible: true,
            trace: PList::new(),
            writes: PList::new(),
            ingress: FieldMap::zeroed(),
        };
        for f in ALL_FIELDS {
            match f {
                Field::FwTag => p.top_mut().set(f, SymValue::Const(0)),
                Field::TcpSyn => {
                    let v = p.fresh(Origin::Free);
                    if let SymValue::Var(id) = v {
                        p.store.get_mut(&id).expect("just allocated").ranges =
                            RangeSet::range(0, 1);
                    }
                    p.top_mut().set(f, v);
                }
                _ => {
                    let v = p.fresh(Origin::Free);
                    p.top_mut().set(f, v);
                }
            }
        }
        p.ingress = *p.top();
        p
    }

    /// A summarization capture probe: *every* field — including `FwTag`
    /// and `TcpSyn` — is a fresh, fully unconstrained [`Origin::Free`]
    /// variable. Unlike [`SymPacket::unconstrained`] (which models real
    /// platform ingress), the probe carries no initial narrowing, so every
    /// constraint a chain applies is captured as a pure intersection set
    /// that replays exactly onto *any* entry value.
    pub(crate) fn capture_probe() -> SymPacket {
        let mut p = SymPacket {
            layers: vec![FieldMap::zeroed()],
            store: HashMap::new(),
            next_var: 0,
            feasible: true,
            trace: PList::new(),
            writes: PList::new(),
            ingress: FieldMap::zeroed(),
        };
        for f in ALL_FIELDS {
            let v = p.fresh(Origin::Free);
            p.top_mut().set(f, v);
        }
        p.ingress = *p.top();
        p
    }

    /// Allocates a fresh variable of the given origin.
    pub fn fresh(&mut self, origin: Origin) -> SymValue {
        let id = self.next_var;
        self.next_var += 1;
        self.store.insert(id, VarInfo::free(origin));
        SymValue::Var(id)
    }

    /// The current (outermost) header layer.
    pub fn top(&self) -> &FieldMap {
        self.layers.last().expect("at least one layer")
    }

    fn top_mut(&mut self) -> &mut FieldMap {
        self.layers.last_mut().expect("at least one layer")
    }

    /// Number of header layers (1 = not encapsulated by a modeled tunnel).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Reads a field of the current layer.
    pub fn get(&self, f: Field) -> SymValue {
        self.top().get(f)
    }

    /// Overwrites a field, recording the write against the current hop.
    pub fn write(&mut self, f: Field, v: SymValue) {
        let at_hop = self.trace.len().saturating_sub(1);
        let at_hop = if self.trace.is_empty() {
            usize::MAX
        } else {
            at_hop
        };
        self.writes.push(WriteRec { field: f, at_hop });
        self.top_mut().set(f, v);
    }

    /// Whether the packet's constraints are still satisfiable.
    pub fn feasible(&self) -> bool {
        self.feasible
    }

    /// Restricts a field to the given value set. Returns the packet's
    /// resulting feasibility (and latches infeasibility).
    pub fn constrain(&mut self, f: Field, allowed: &RangeSet) -> bool {
        if !self.feasible {
            return false;
        }
        match self.get(f) {
            SymValue::Const(c) => {
                if !allowed.contains(c) {
                    self.feasible = false;
                }
            }
            SymValue::Var(id) => {
                let info = self.store.get_mut(&id).expect("store entry for var");
                info.ranges = info.ranges.intersect(allowed);
                if info.ranges.is_empty() {
                    self.feasible = false;
                }
            }
        }
        self.feasible
    }

    /// Restricts a field to exactly `v`.
    pub fn constrain_eq(&mut self, f: Field, v: u64) -> bool {
        self.constrain(f, &RangeSet::single(v))
    }

    /// Excludes `set` from a field's allowed values.
    pub fn constrain_not(&mut self, f: Field, set: &RangeSet) -> bool {
        self.constrain(f, &set.complement())
    }

    /// The possible values of a field: a constant's singleton, or the
    /// variable's current range set.
    pub fn possible(&self, f: Field) -> RangeSet {
        self.possible_of(self.get(f))
    }

    /// The possible values of a symbolic value under this packet's
    /// constraint store (a constant's singleton, or the variable's range).
    pub fn possible_of(&self, v: SymValue) -> RangeSet {
        match v {
            SymValue::Const(c) => RangeSet::single(c),
            SymValue::Var(id) => self
                .store
                .get(&id)
                .map(|i| i.ranges.clone())
                .unwrap_or_else(RangeSet::full),
        }
    }

    /// Restricts a symbolic *value* (rather than a field slot) to the
    /// given set. Needed by summary replay: a chain's constraints apply to
    /// the values a field held at chain entry, which copies may since have
    /// moved into other fields. Returns (and latches) feasibility.
    pub fn constrain_value(&mut self, v: SymValue, allowed: &RangeSet) -> bool {
        if !self.feasible {
            return false;
        }
        match v {
            SymValue::Const(c) => {
                if !allowed.contains(c) {
                    self.feasible = false;
                }
            }
            SymValue::Var(id) => {
                let info = self.store.get_mut(&id).expect("store entry for var");
                info.ranges = info.ranges.intersect(allowed);
                if info.ranges.is_empty() {
                    self.feasible = false;
                }
            }
        }
        self.feasible
    }

    /// Allocates a fresh variable of the given origin pre-constrained to
    /// `ranges` (summary replay materializing a recorded fresh slot).
    pub fn fresh_ranged(&mut self, origin: Origin, ranges: RangeSet) -> SymValue {
        let v = self.fresh(origin);
        if let SymValue::Var(id) = v {
            self.store.get_mut(&id).expect("just allocated").ranges = ranges;
        }
        v
    }

    /// The origin of a value (constants have no origin).
    pub fn origin_of(&self, v: SymValue) -> Option<Origin> {
        match v {
            SymValue::Const(_) => None,
            SymValue::Var(id) => self.store.get(&id).map(|i| i.origin),
        }
    }

    /// Whether the field is provably the single constant `v` (either a
    /// `Const` or a variable constrained to the singleton).
    pub fn provably_eq(&self, f: Field, v: u64) -> bool {
        self.possible(f).as_single() == Some(v)
    }

    /// Whether two symbolic values are *provably equal*: identical
    /// constants, or the same variable (SymNet's structural binding).
    pub fn provably_same(&self, a: SymValue, b: SymValue) -> bool {
        match (a, b) {
            (SymValue::Const(x), SymValue::Const(y)) => x == y,
            (SymValue::Var(x), SymValue::Var(y)) => x == y,
            (SymValue::Const(c), SymValue::Var(v)) | (SymValue::Var(v), SymValue::Const(c)) => self
                .store
                .get(&v)
                .map(|i| i.ranges.as_single() == Some(c))
                .unwrap_or(false),
        }
    }

    /// Whether the field has ever been overwritten since injection.
    pub fn ever_written(&self, f: Field) -> bool {
        self.writes.iter_rev().any(|w| w.field == f)
    }

    /// Whether the field was overwritten strictly after arriving at hop
    /// index `since` (exclusive) up to now — the invariant check for
    /// `const` clauses on a requirement hop.
    pub fn written_after(&self, f: Field, since: usize) -> bool {
        self.writes
            .iter_rev()
            .any(|w| w.field == f && w.at_hop != usize::MAX && w.at_hop >= since)
    }

    /// Whether the field was overwritten during hops `[from, to)` — the
    /// per-segment invariant check for requirement `const` clauses.
    pub fn written_between(&self, f: Field, from: usize, to: usize) -> bool {
        self.writes
            .iter_rev()
            .any(|w| w.field == f && w.at_hop != usize::MAX && w.at_hop >= from && w.at_hop < to)
    }

    /// Number of recorded arrivals.
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// Materializes the arrival history, oldest first.
    pub fn hops(&self) -> Vec<Hop> {
        self.trace.to_vec()
    }

    /// How many times this packet has arrived at `node`.
    pub fn visits(&self, node: usize) -> usize {
        self.trace.iter_rev().filter(|h| h.node == node).count()
    }

    /// How many times this packet arrived at `node` within the most
    /// recent `window` hops. Forwarding loops revisit nodes with short
    /// periods, so a bounded window detects them while keeping the
    /// engine's per-hop cost O(window) instead of O(path) — the last
    /// piece of the (near-)linear Figure 10 scaling.
    pub fn visits_recent(&self, node: usize, window: usize) -> usize {
        self.trace
            .iter_rev()
            .take(window)
            .filter(|h| h.node == node)
            .count()
    }

    /// Records arrival at a node (the engine calls this before executing
    /// the node's model).
    pub fn record_arrival(&mut self, node: usize, in_port: usize) {
        self.trace.push(Hop {
            node,
            in_port,
            fields: *self.top(),
        });
    }

    /// Pushes a new outer header layer whose fields are all `Const(0)`;
    /// the encapsulation model then writes the outer fields explicitly.
    /// The inner header is preserved untouched underneath.
    pub fn push_layer(&mut self) {
        // Carry payload identity through: the tunnel payload *is* the
        // inner packet; its identity value is retained so that invariants
        // over `payload` survive an encap/decap round trip.
        let payload = self.get(Field::Payload);
        let mut outer = FieldMap::zeroed();
        outer.set(Field::Payload, payload);
        self.layers.push(outer);
    }

    /// Pops the outer header layer, restoring the inner one. Returns
    /// `false` when there is no inner layer (the packet was not
    /// encapsulated by a modeled element) — the caller should then
    /// replace the fields with fresh [`Origin::Decap`] variables instead.
    pub fn pop_layer(&mut self) -> bool {
        if self.layers.len() > 1 {
            self.layers.pop();
            true
        } else {
            false
        }
    }

    /// Replaces every header field with a fresh variable of the given
    /// origin (used for decapsulation of unknown tunnels and for opaque
    /// x86 processing), recording writes.
    pub fn havoc_all(&mut self, origin: Origin) {
        for f in ALL_FIELDS {
            let v = self.fresh(origin);
            self.write(f, v);
        }
    }

    /// A view of this packet as it looked at a recorded trace snapshot:
    /// the same constraint store, with the header fields replaced by the
    /// snapshot. Used to evaluate flow specifications "at the time of
    /// visit" of a requirement way-point.
    pub fn at_snapshot(&self, fields: crate::field::FieldMap) -> SymPacket {
        let mut p = self.clone();
        *p.layers.last_mut().expect("at least one layer") = fields;
        p
    }

    /// A human-readable rendering of the current fields, for reports.
    pub fn render_fields(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (f, v) in self.top().iter() {
            match v {
                SymValue::Const(c) => {
                    let _ = write!(s, "{f}={c} ");
                }
                SymValue::Var(id) => {
                    let set = self.possible(f);
                    if let Some(c) = set.as_single() {
                        let _ = write!(s, "{f}=v{id}[={c}] ");
                    } else if set.is_full() {
                        let _ = write!(s, "{f}=v{id} ");
                    } else {
                        let _ = write!(s, "{f}=v{id}[..] ");
                    }
                }
            }
        }
        s.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_is_feasible_and_free() {
        let p = SymPacket::unconstrained();
        assert!(p.feasible());
        assert!(p.get(Field::IpSrc).as_var().is_some());
        assert_eq!(p.get(Field::FwTag), SymValue::Const(0));
        assert_eq!(p.origin_of(p.get(Field::IpSrc)), Some(Origin::Free));
    }

    #[test]
    fn constrain_to_singleton_then_conflict() {
        let mut p = SymPacket::unconstrained();
        assert!(p.constrain_eq(Field::Proto, 17));
        assert!(p.provably_eq(Field::Proto, 17));
        assert!(!p.constrain_eq(Field::Proto, 6), "17 != 6 is infeasible");
        assert!(!p.feasible());
    }

    #[test]
    fn binding_constrains_both_fields() {
        // Model the paper's server: p[ip_dst] = p[ip_src]. Constraining
        // the destination afterwards also constrains the source.
        let mut p = SymPacket::unconstrained();
        let src = p.get(Field::IpSrc);
        p.write(Field::IpDst, src);
        assert!(p.provably_same(p.get(Field::IpDst), p.get(Field::IpSrc)));
        assert!(p.constrain_eq(Field::IpDst, 42));
        assert!(p.provably_eq(Field::IpSrc, 42));
    }

    #[test]
    fn write_tracking() {
        let mut p = SymPacket::unconstrained();
        p.record_arrival(0, 0);
        assert!(!p.ever_written(Field::Ttl));
        p.write(Field::Ttl, SymValue::Const(63));
        assert!(p.ever_written(Field::Ttl));
        assert!(p.written_after(Field::Ttl, 0));
        p.record_arrival(1, 0);
        assert!(!p.written_after(Field::Ttl, 1));
    }

    #[test]
    fn encap_decap_restores_inner() {
        let mut p = SymPacket::unconstrained();
        let inner_dst = p.get(Field::IpDst);
        p.push_layer();
        p.write(Field::IpSrc, SymValue::Const(1));
        p.write(Field::IpDst, SymValue::Const(2));
        assert_eq!(p.get(Field::IpDst), SymValue::Const(2));
        assert!(p.pop_layer());
        assert_eq!(p.get(Field::IpDst), inner_dst, "inner header restored");
        assert!(!p.pop_layer(), "only one layer left");
    }

    #[test]
    fn payload_identity_survives_encap() {
        let mut p = SymPacket::unconstrained();
        let payload = p.get(Field::Payload);
        p.push_layer();
        assert_eq!(p.get(Field::Payload), payload);
    }

    #[test]
    fn havoc_changes_origin() {
        let mut p = SymPacket::unconstrained();
        p.record_arrival(0, 0);
        p.havoc_all(Origin::Opaque);
        assert_eq!(p.origin_of(p.get(Field::IpSrc)), Some(Origin::Opaque));
        assert!(p.ever_written(Field::IpSrc));
    }

    #[test]
    fn tcp_syn_bounded() {
        let p = SymPacket::unconstrained();
        let set = p.possible(Field::TcpSyn);
        assert!(set.contains(0) && set.contains(1) && !set.contains(2));
    }
}
