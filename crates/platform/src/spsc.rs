//! Bounded single-producer single-consumer rings for the parallel runner.
//!
//! The dispatcher thread feeds each worker through one of these rings, the
//! software analogue of an RSS NIC queue: bounded (so a slow worker
//! back-pressures the producer instead of ballooning memory) and strictly
//! FIFO (so per-flow packet order survives the trip). Under
//! `#![forbid(unsafe_code)]` a lock-free ring is off the table; a
//! mutex-plus-condvar queue is plenty for batch-granularity hand-off, where
//! lock traffic is one acquisition per *batch*, not per packet.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when the queue drains below capacity (producer waits).
    not_full: Condvar,
    /// Signalled when an item arrives or the producer hangs up
    /// (consumer waits).
    not_empty: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    /// The producer has been dropped; drain and stop.
    closed: bool,
    /// The consumer has been dropped; sends can never succeed again.
    abandoned: bool,
}

/// The producer half of a bounded SPSC ring.
pub struct RingSender<T> {
    shared: Arc<Shared<T>>,
}

/// The consumer half of a bounded SPSC ring.
pub struct RingReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Why a non-blocking send did not enqueue. The item comes back so the
/// caller can count or re-route it.
#[derive(Debug)]
pub enum TrySendError<T> {
    /// The ring is at capacity.
    Full(T),
    /// The receiver is gone.
    Disconnected(T),
}

/// Creates a bounded ring with room for `capacity` items.
pub fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            closed: false,
            abandoned: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
        },
        RingReceiver { shared },
    )
}

impl<T> RingSender<T> {
    /// Enqueues `item`, blocking while the ring is full (lossless
    /// backpressure). Returns the item if the receiver is gone.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut inner = self.shared.inner.lock().expect("ring poisoned");
        loop {
            if inner.abandoned {
                return Err(item);
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("ring poisoned");
        }
    }

    /// Enqueues `item` without blocking; a full ring returns the item
    /// (lossy mode counts it as a drop).
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("ring poisoned");
        if inner.abandoned {
            return Err(TrySendError::Disconnected(item));
        }
        if inner.queue.len() >= inner.capacity {
            return Err(TrySendError::Full(item));
        }
        inner.queue.push_back(item);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Items currently queued (for queue-depth gauges).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("ring poisoned").queue.len()
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("ring poisoned");
        inner.closed = true;
        self.shared.not_empty.notify_one();
    }
}

impl<T> RingReceiver<T> {
    /// Dequeues the next item, blocking while the ring is empty.
    /// Returns `None` once the producer is gone *and* the ring has
    /// drained — every sent item is still delivered.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().expect("ring poisoned");
        loop {
            if let Some(item) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).expect("ring poisoned");
        }
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("ring poisoned");
        inner.abandoned = true;
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Some(i));
        }
    }

    #[test]
    fn recv_drains_after_sender_drops() {
        let (tx, rx) = ring::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_send_reports_full() {
        let (tx, _rx) = ring::<u32>(1);
        assert_eq!(tx.len(), 0);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = ring::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
        assert!(matches!(tx.try_send(8), Err(TrySendError::Disconnected(8))));
    }

    #[test]
    fn blocking_send_wakes_on_recv() {
        let (tx, rx) = ring::<u32>(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || tx.send(1));
            // The producer is blocked on a full ring until we consume.
            assert_eq!(rx.recv(), Some(0));
            h.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Some(1));
        });
    }
}
