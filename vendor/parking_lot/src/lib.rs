//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with parking_lot's
//! no-poisoning API (`lock()`/`read()`/`write()` return guards directly).
//! A poisoned std lock — a panic while held — is recovered rather than
//! propagated, matching parking_lot's behavior of never poisoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn threads_contend() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
