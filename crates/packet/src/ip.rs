//! IPv4 header view and checksum arithmetic.

use std::net::Ipv4Addr;

use crate::{PacketError, Result};
use serde::{Deserialize, Serialize};

/// Length in bytes of an IPv4 header without options.
pub const IPV4_HDR_LEN: usize = 20;

/// An IP protocol number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// SCTP (132) — used by the protocol-tunneling experiments.
    Sctp,
    /// IP-in-IP encapsulation (4) — used by tunnel elements.
    IpIp,
    /// Any other protocol number.
    Other(u8),
}

impl IpProto {
    /// The on-the-wire protocol number.
    pub fn number(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::IpIp => 4,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Sctp => 132,
            IpProto::Other(n) => n,
        }
    }
}

impl From<u8> for IpProto {
    fn from(n: u8) -> Self {
        match n {
            1 => IpProto::Icmp,
            4 => IpProto::IpIp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            132 => IpProto::Sctp,
            other => IpProto::Other(other),
        }
    }
}

impl std::fmt::Display for IpProto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpProto::Icmp => write!(f, "icmp"),
            IpProto::IpIp => write!(f, "ipip"),
            IpProto::Tcp => write!(f, "tcp"),
            IpProto::Udp => write!(f, "udp"),
            IpProto::Sctp => write!(f, "sctp"),
            IpProto::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// Computes the Internet checksum (RFC 1071) over `data`.
///
/// The caller zeroes the checksum field before computing. Odd-length inputs
/// are padded with a trailing zero byte, as the RFC requires.
pub fn internet_checksum(data: &[u8]) -> u16 {
    // A u64 accumulator cannot overflow below 2^32 words (~16 GiB
    // inputs); the u32 it replaces would wrap — a debug-build panic — on
    // ~128 KiB of 0xFF bytes. Summing 32-bit big-endian words is exact:
    // each contributes `hi16 * 2^16 + lo16`, and 2^16 ≡ 1 (mod 2^16-1),
    // so the final fold produces the same one's-complement sum as a
    // 16-bit-word accumulation — at half the loop iterations, which
    // matters because every netfront ring crossing pays this over the
    // whole frame.
    let mut sum: u64 = 0;
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        sum += u64::from(u32::from_be_bytes([c[0], c[1], c[2], c[3]]));
    }
    let mut rest = chunks.remainder().chunks_exact(2);
    for c in &mut rest {
        sum += u64::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = rest.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A typed view of an IPv4 header over a byte buffer that begins at the
/// first byte of the IP header.
#[derive(Debug)]
pub struct Ipv4View<T> {
    buf: T,
    header_len: usize,
}

impl<T: AsRef<[u8]>> Ipv4View<T> {
    /// Validates version/IHL/length and wraps the buffer.
    pub fn new(buf: T) -> Result<Self> {
        let b = buf.as_ref();
        if b.len() < IPV4_HDR_LEN {
            return Err(PacketError::Truncated {
                what: "IPv4 header",
                need: IPV4_HDR_LEN,
                have: b.len(),
            });
        }
        let ihl = b[0] & 0x0f;
        if ihl < 5 {
            return Err(PacketError::BadHeaderLength(ihl));
        }
        let header_len = usize::from(ihl) * 4;
        if b.len() < header_len {
            return Err(PacketError::Truncated {
                what: "IPv4 options",
                need: header_len,
                have: b.len(),
            });
        }
        Ok(Ipv4View { buf, header_len })
    }

    fn b(&self) -> &[u8] {
        self.buf.as_ref()
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// IP version field (4 for well-formed packets).
    pub fn version(&self) -> u8 {
        self.b()[0] >> 4
    }

    /// DSCP/ECN byte.
    pub fn tos(&self) -> u8 {
        self.b()[1]
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Time-to-live field.
    pub fn ttl(&self) -> u8 {
        self.b()[8]
    }

    /// Transport protocol.
    pub fn proto(&self) -> IpProto {
        IpProto::from(self.b()[9])
    }

    /// Header checksum field as stored.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[10], self.b()[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// Recomputes the header checksum and compares it with the stored value.
    pub fn verify_checksum(&self) -> bool {
        let mut hdr = self.b()[..self.header_len].to_vec();
        hdr[10] = 0;
        hdr[11] = 0;
        internet_checksum(&hdr) == self.checksum()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4View<T> {
    /// Validates and wraps the buffer for mutation.
    pub fn new_mut(buf: T) -> Result<Self> {
        Ipv4View::new(buf)
    }

    fn bm(&mut self) -> &mut [u8] {
        self.buf.as_mut()
    }

    /// Sets the TTL field (checksum must be refreshed afterwards).
    pub fn set_ttl(&mut self, ttl: u8) {
        self.bm()[8] = ttl;
    }

    /// Sets the DSCP/ECN byte.
    pub fn set_tos(&mut self, tos: u8) {
        self.bm()[1] = tos;
    }

    /// Sets the transport protocol number.
    pub fn set_proto(&mut self, proto: IpProto) {
        self.bm()[9] = proto.number();
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.bm()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.bm()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.bm()[12..16].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.bm()[16..20].copy_from_slice(&a.octets());
    }

    /// Recomputes and stores the header checksum.
    pub fn update_checksum(&mut self) {
        let hl = self.header_len;
        let bm = self.bm();
        bm[10] = 0;
        bm[11] = 0;
        let sum = internet_checksum(&bm[..hl]);
        bm[10..12].copy_from_slice(&sum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canonical 20-byte header with valid fields.
    fn hdr() -> Vec<u8> {
        let mut h = vec![0u8; IPV4_HDR_LEN + 8];
        h[0] = 0x45;
        let mut v = Ipv4View::new_mut(&mut h[..]).unwrap();
        v.set_total_len(28);
        v.set_ttl(64);
        v.set_proto(IpProto::Udp);
        v.set_src(Ipv4Addr::new(1, 2, 3, 4));
        v.set_dst(Ipv4Addr::new(5, 6, 7, 8));
        v.update_checksum();
        h
    }

    #[test]
    fn fields_roundtrip() {
        let h = hdr();
        let v = Ipv4View::new(&h[..]).unwrap();
        assert_eq!(v.version(), 4);
        assert_eq!(v.ttl(), 64);
        assert_eq!(v.proto(), IpProto::Udp);
        assert_eq!(v.src(), Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(v.dst(), Ipv4Addr::new(5, 6, 7, 8));
        assert!(v.verify_checksum());
    }

    #[test]
    fn mutation_breaks_then_update_fixes_checksum() {
        let mut h = hdr();
        let mut v = Ipv4View::new_mut(&mut h[..]).unwrap();
        v.set_dst(Ipv4Addr::new(9, 9, 9, 9));
        assert!(!v.verify_checksum());
        v.update_checksum();
        assert!(v.verify_checksum());
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut h = hdr();
        h[0] = 0x42; // IHL = 2 words, illegal.
        assert_eq!(
            Ipv4View::new(&h[..]).unwrap_err(),
            PacketError::BadHeaderLength(2)
        );
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            Ipv4View::new(&[0x45u8; 10][..]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn options_require_longer_buffer() {
        let mut h = [0u8; IPV4_HDR_LEN];
        h[0] = 0x46; // IHL 6 => 24 bytes, buffer only 20.
        assert!(matches!(
            Ipv4View::new(&h[..]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussions: checksum of a classic header.
        let data: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&data), 0xb861);
    }

    #[test]
    fn proto_number_roundtrip() {
        for n in 0u8..=255 {
            assert_eq!(IpProto::from(n).number(), n);
        }
    }
}
