//! Flow identification: the 5-tuple key used by stateful elements and by
//! the platform's flow-to-VM mapping.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::{ip::IpProto, Packet, Result};

/// A directed transport 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: IpProto,
    /// Source port (0 for port-less protocols; ICMP uses the echo ident).
    pub src_port: u16,
    /// Destination port (0 for port-less protocols).
    pub dst_port: u16,
}

impl FlowKey {
    /// Extracts the flow key from a packet.
    ///
    /// For ICMP echo packets the identifier doubles as both ports, so that a
    /// ping stream is a single flow in either direction (this is how the
    /// platform's on-the-fly instantiation treats "each ping is a flow" in
    /// the paper's Figure 5 experiment).
    pub fn of(pkt: &Packet) -> Result<FlowKey> {
        let ip = pkt.ipv4()?;
        let (src, dst, proto) = (ip.src(), ip.dst(), ip.proto());
        let (src_port, dst_port) = match proto {
            IpProto::Udp => {
                let u = pkt.udp()?;
                (u.src_port(), u.dst_port())
            }
            IpProto::Tcp => {
                let t = pkt.tcp()?;
                (t.src_port(), t.dst_port())
            }
            IpProto::Icmp => {
                let i = pkt.icmp()?;
                (i.ident(), i.ident())
            }
            _ => (0, 0),
        };
        Ok(FlowKey {
            src,
            dst,
            proto,
            src_port,
            dst_port,
        })
    }

    /// An RSS-style hash of the 5-tuple (FNV-1a over the canonical byte
    /// encoding).
    ///
    /// This is the dispatch key for flow-sharded execution: every packet
    /// of one directed flow hashes to the same value, so a dispatcher
    /// that routes on `shard_hash() % workers` pins each flow to exactly
    /// one worker and per-flow packet order is preserved end to end.
    /// The hash is deterministic across runs and platforms (no
    /// per-process seed), so shard assignments are reproducible.
    pub fn shard_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&self.src.octets());
        eat(&self.dst.octets());
        eat(&[self.proto.number()]);
        eat(&self.src_port.to_be_bytes());
        eat(&self.dst_port.to_be_bytes());
        h
    }

    /// The worker shard this flow is pinned to among `workers` workers.
    pub fn shard(&self, workers: usize) -> usize {
        if workers <= 1 {
            return 0;
        }
        (self.shard_hash() % workers as u64) as usize
    }

    /// The shard for an arbitrary packet: its flow-key shard when the
    /// packet carries a parseable 5-tuple, shard 0 otherwise (non-IP
    /// traffic is rare enough that pinning it to one worker preserves
    /// its relative order without hurting balance).
    pub fn shard_of(pkt: &Packet, workers: usize) -> usize {
        match FlowKey::of(pkt) {
            Ok(key) => key.shard(workers),
            Err(_) => 0,
        }
    }

    /// A direction-normalized connection hash for *symmetric* dispatch:
    /// a flow and its reverse hash identically, so both directions of a
    /// connection pin to the same flow-sharded worker.
    ///
    /// The hash covers only the connection's **remote** (outside-network)
    /// endpoint — the destination of an outbound packet, the source of an
    /// inbound one — plus the protocol. Hashing the canonical *sorted*
    /// endpoint pair would also be direction-insensitive, but it breaks
    /// under NAT: the reply to a translated flow is addressed to the
    /// public address, not the inside host, so the sorted tuples of the
    /// two directions differ. The remote endpoint is the one thing a
    /// source-NAT never rewrites, so it is the only per-packet key under
    /// which a NAT'd connection's forward packets, replies, and the
    /// translator's own state all land on one worker.
    ///
    /// `inbound` says which side the packet was seen on: `false` for
    /// inside → outside traffic (remote = destination), `true` for
    /// outside → inside (remote = source). Like [`FlowKey::shard_hash`],
    /// the hash is FNV-1a over a canonical byte encoding, deterministic
    /// across runs and platforms.
    pub fn symmetric_hash(&self, inbound: bool) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let (addr, port) = if inbound {
            (self.src, self.src_port)
        } else {
            (self.dst, self.dst_port)
        };
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&addr.octets());
        eat(&[self.proto.number()]);
        eat(&port.to_be_bytes());
        h
    }

    /// The worker shard under symmetric dispatch (see
    /// [`FlowKey::symmetric_hash`]) among `workers` workers.
    pub fn symmetric_shard(&self, inbound: bool, workers: usize) -> usize {
        if workers <= 1 {
            return 0;
        }
        (self.symmetric_hash(inbound) % workers as u64) as usize
    }

    /// The symmetric-dispatch shard for an arbitrary packet.
    ///
    /// Direction is taken from the packet's ingress annotation using the
    /// two-sided middlebox convention: even interfaces face the inside
    /// network (their packets travel inside → outside), odd interfaces
    /// face the outside. Unparseable packets pin to shard 0, exactly as
    /// in [`FlowKey::shard_of`].
    pub fn symmetric_shard_of(pkt: &Packet, workers: usize) -> usize {
        match FlowKey::of(pkt) {
            Ok(key) => key.symmetric_shard(pkt.meta.ingress % 2 == 1, workers),
            Err(_) => 0,
        }
    }

    /// The key of traffic flowing in the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            proto: self.proto,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A direction-insensitive tuple: both directions of a connection map to
    /// the same value. Used for connection tracking.
    pub fn canonical(&self) -> FlowTuple {
        let a = (self.src, self.src_port);
        let b = (self.dst, self.dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        FlowTuple {
            lo_addr: lo.0,
            lo_port: lo.1,
            hi_addr: hi.0,
            hi_port: hi.1,
            proto: self.proto,
        }
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// A direction-insensitive connection identifier (see
/// [`FlowKey::canonical`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowTuple {
    /// The lexicographically smaller endpoint's address.
    pub lo_addr: Ipv4Addr,
    /// The lexicographically smaller endpoint's port.
    pub lo_port: u16,
    /// The lexicographically larger endpoint's address.
    pub hi_addr: Ipv4Addr,
    /// The lexicographically larger endpoint's port.
    pub hi_port: u16,
    /// Transport protocol.
    pub proto: IpProto,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn udp_key() {
        let pkt = PacketBuilder::udp()
            .src(Ipv4Addr::new(1, 1, 1, 1), 100)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 200)
            .build();
        let k = FlowKey::of(&pkt).unwrap();
        assert_eq!(k.proto, IpProto::Udp);
        assert_eq!((k.src_port, k.dst_port), (100, 200));
    }

    #[test]
    fn reversed_twice_is_identity() {
        let pkt = PacketBuilder::tcp()
            .src(Ipv4Addr::new(1, 1, 1, 1), 100)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 200)
            .build();
        let k = FlowKey::of(&pkt).unwrap();
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn canonical_direction_insensitive() {
        let pkt = PacketBuilder::tcp()
            .src(Ipv4Addr::new(9, 1, 1, 1), 100)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 200)
            .build();
        let k = FlowKey::of(&pkt).unwrap();
        assert_eq!(k.canonical(), k.reversed().canonical());
    }

    #[test]
    fn shard_hash_is_deterministic_and_direction_sensitive() {
        let pkt = PacketBuilder::udp()
            .src(Ipv4Addr::new(1, 1, 1, 1), 100)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 200)
            .build();
        let k = FlowKey::of(&pkt).unwrap();
        assert_eq!(k.shard_hash(), k.shard_hash());
        // The reverse direction is a different directed flow and is free
        // to land on a different shard.
        assert_ne!(k.shard_hash(), k.reversed().shard_hash());
        // Shards are always in range, and one worker means shard 0.
        for workers in 1..=16 {
            assert!(k.shard(workers) < workers);
        }
        assert_eq!(k.shard(1), 0);
        assert_eq!(k.shard(0), 0);
    }

    #[test]
    fn shard_of_handles_unparseable_packets() {
        let pkt = PacketBuilder::udp()
            .src(Ipv4Addr::new(9, 9, 9, 9), 1)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 2)
            .build();
        let key = FlowKey::of(&pkt).unwrap();
        assert_eq!(FlowKey::shard_of(&pkt, 8), key.shard(8));
        // A packet with no parseable 5-tuple pins to shard 0.
        let garbage = Packet::from_bytes([0u8; 10]);
        assert_eq!(FlowKey::shard_of(&garbage, 8), 0);
    }

    #[test]
    fn symmetric_hash_pins_both_directions_together() {
        let pkt = PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 5000)
            .dst(Ipv4Addr::new(198, 51, 100, 7), 53)
            .build();
        let k = FlowKey::of(&pkt).unwrap();
        // The outbound flow and its exact reverse agree for every
        // worker count: the remote endpoint is the same either way.
        assert_eq!(k.symmetric_hash(false), k.reversed().symmetric_hash(true));
        for workers in 1..=16 {
            let s = k.symmetric_shard(false, workers);
            assert!(s < workers);
            assert_eq!(s, k.reversed().symmetric_shard(true, workers));
        }
        assert_eq!(k.symmetric_shard(false, 1), 0);
        assert_eq!(k.symmetric_shard(false, 0), 0);
    }

    #[test]
    fn symmetric_hash_survives_source_nat() {
        // The inside flow 10.0.0.1:5000 -> R:53 is rewritten by a
        // source-NAT to public:eport -> R:53; the reply then arrives as
        // R:53 -> public:eport. The remote endpoint (R, 53) is untouched
        // by the rewrite, so the reply still hashes with the inside flow
        // — which a sorted-endpoint canonical hash would not guarantee.
        let inside = FlowKey {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(198, 51, 100, 7),
            proto: IpProto::Udp,
            src_port: 5000,
            dst_port: 53,
        };
        let reply = FlowKey {
            src: Ipv4Addr::new(198, 51, 100, 7),
            dst: Ipv4Addr::new(203, 0, 113, 1), // the NAT's public address
            proto: IpProto::Udp,
            src_port: 53,
            dst_port: 61234, // whatever external port the NAT allocated
        };
        assert_eq!(inside.symmetric_hash(false), reply.symmetric_hash(true));
    }

    #[test]
    fn symmetric_shard_of_uses_ingress_parity() {
        let out = PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 5000)
            .dst(Ipv4Addr::new(198, 51, 100, 7), 53)
            .build();
        let mut back = PacketBuilder::udp()
            .src(Ipv4Addr::new(198, 51, 100, 7), 53)
            .dst(Ipv4Addr::new(10, 0, 0, 1), 5000)
            .build();
        back.meta.ingress = 1; // arrived on the outside-facing interface
        let key = FlowKey::of(&out).unwrap();
        for workers in 1..=8 {
            assert_eq!(
                FlowKey::symmetric_shard_of(&out, workers),
                key.symmetric_shard(false, workers)
            );
            assert_eq!(
                FlowKey::symmetric_shard_of(&back, workers),
                FlowKey::symmetric_shard_of(&out, workers)
            );
        }
        let garbage = Packet::from_bytes([0u8; 10]);
        assert_eq!(FlowKey::symmetric_shard_of(&garbage, 8), 0);
    }

    #[test]
    fn icmp_uses_ident() {
        let pkt = PacketBuilder::icmp_echo_request(7, 1)
            .src_addr(Ipv4Addr::new(1, 1, 1, 1))
            .dst_addr(Ipv4Addr::new(2, 2, 2, 2))
            .build();
        let k = FlowKey::of(&pkt).unwrap();
        assert_eq!((k.src_port, k.dst_port), (7, 7));
    }
}
