//! The unified runner configuration builder.
//!
//! One builder configures both execution engines — the single-threaded
//! [`NativeRunner`](crate::NativeRunner) and the flow-sharded
//! [`ParallelRunner`](crate::ParallelRunner) — so callers pick the engine
//! last, after describing *how* to run:
//!
//! ```
//! use innet_platform::{plain_firewall, RunnerConfig};
//!
//! let cfg = plain_firewall();
//! let registry = innet_obs::Registry::new();
//! let mut runner = RunnerConfig::new()
//!     .workers(4)
//!     .batch(32)
//!     .metrics(&registry)
//!     .parallel(&cfg)
//!     .unwrap();
//! assert_eq!(runner.effective_workers(), 4);
//! # let _ = &mut runner;
//! ```

use innet_click::{ClickConfig, RouterError};

use crate::native::NativeRunner;
use crate::parallel::ParallelRunner;

/// Default dispatch batch size: large enough to amortize ring hand-off,
/// small enough not to distort latency in the simulated workloads.
pub const DEFAULT_BATCH: usize = 32;

/// Default per-worker ring capacity, counted in *batches*.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Builder describing how a runner should execute a configuration:
/// worker count, dispatch batch size, metrics registry, and ring
/// behavior under overload. Finish with [`RunnerConfig::native`] or
/// [`RunnerConfig::parallel`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    pub(crate) workers: usize,
    pub(crate) batch: usize,
    pub(crate) metrics: Option<innet_obs::Registry>,
    pub(crate) lossy_rings: bool,
    pub(crate) ring_capacity: usize,
    pub(crate) compiled: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig::new()
    }
}

impl RunnerConfig {
    /// The default execution profile: one worker, batch of
    /// [`DEFAULT_BATCH`], no metrics, lossless rings.
    pub fn new() -> RunnerConfig {
        RunnerConfig {
            workers: 1,
            batch: DEFAULT_BATCH,
            metrics: None,
            lossy_rings: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            compiled: false,
        }
    }

    /// Selects the compiled execution engine: the verified configuration
    /// is lowered once into a flat plan (specialized classifiers, fused
    /// header stages, flat edges — see `innet_click::compile`) instead of
    /// being interpreted element by element. Semantics are identical —
    /// the plan is differentially tested against the interpreter — but
    /// runners lose `element_as`-style counter inspection, so
    /// [`NativeRunner::router`](crate::NativeRunner::router) returns
    /// `None` in this mode.
    pub fn compiled(mut self, compiled: bool) -> RunnerConfig {
        self.compiled = compiled;
        self
    }

    /// Requests `n` flow-sharded workers (clamped to at least 1). The
    /// parallel runner may still degrade to 1 if the configuration
    /// keeps global (cross-flow) state; per-connection state shards
    /// fine under the symmetric dispatch hash. `NativeRunner` ignores
    /// this knob.
    pub fn workers(mut self, n: usize) -> RunnerConfig {
        self.workers = n.max(1);
        self
    }

    /// Sets the dispatch batch size (clamped to at least 1): how many
    /// packets move through the netfront ring — and across worker rings
    /// — per hand-off.
    pub fn batch(mut self, n: usize) -> RunnerConfig {
        self.batch = n.max(1);
        self
    }

    /// Publishes the runner's instruments into `registry`
    /// (`innet_native_*` / `innet_parallel_*`, plus the inner routers'
    /// `innet_click_*`).
    pub fn metrics(mut self, registry: &innet_obs::Registry) -> RunnerConfig {
        self.metrics = Some(registry.clone());
        self
    }

    /// Switches worker rings from lossless backpressure (the default:
    /// the dispatcher blocks when a worker falls behind) to lossy
    /// drop-on-full, counted under
    /// `innet_parallel_drops_total{reason="ring_full"}`.
    pub fn lossy_rings(mut self, lossy: bool) -> RunnerConfig {
        self.lossy_rings = lossy;
        self
    }

    /// Sets each worker ring's capacity in batches (clamped to at
    /// least 1).
    pub fn ring_capacity(mut self, batches: usize) -> RunnerConfig {
        self.ring_capacity = batches.max(1);
        self
    }

    /// Builds a single-threaded [`NativeRunner`] for `cfg` with this
    /// profile.
    pub fn native(self, cfg: &ClickConfig) -> Result<NativeRunner, RouterError> {
        NativeRunner::with_config(cfg, self)
    }

    /// Builds a flow-sharded [`ParallelRunner`] for `cfg` with this
    /// profile.
    pub fn parallel(self, cfg: &ClickConfig) -> Result<ParallelRunner, RouterError> {
        ParallelRunner::with_config(cfg, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_degenerate_values() {
        let c = RunnerConfig::new().workers(0).batch(0).ring_capacity(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.batch, 1);
        assert_eq!(c.ring_capacity, 1);
    }

    #[test]
    fn defaults_are_single_threaded_and_lossless() {
        let c = RunnerConfig::new();
        assert_eq!(c.workers, 1);
        assert_eq!(c.batch, DEFAULT_BATCH);
        assert!(!c.lossy_rings);
        assert!(c.metrics.is_none());
    }
}
