//! Native execution: running tenant Click graphs at full speed on host
//! threads and measuring real throughput.
//!
//! The paper's data-plane numbers (Figures 8, 11, 12) are measured, not
//! modelled; this module provides the measured equivalent on our runtime.
//! Absolute rates differ from the authors' 10 Gb/s testbed (our substrate
//! is an in-process ring, not a NIC), but the *shapes* — flat consolidation
//! until the demux scan bites, sandboxing hurting small packets most,
//! per-middlebox differences — emerge from the same mechanisms.

use std::net::Ipv4Addr;
use std::time::Instant;

use innet_click::{ClickConfig, Registry, Router, RouterError};
use innet_packet::Packet;

/// Result of a timed native run.
#[derive(Debug, Clone, Copy)]
pub struct NativeStats {
    /// Packets pushed in.
    pub packets: u64,
    /// Packets transmitted out.
    pub transmitted: u64,
    /// Wall-clock nanoseconds elapsed.
    pub elapsed_ns: u64,
}

impl NativeStats {
    /// Input rate in packets/second.
    pub fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Throughput in Gbit/s assuming `frame_len`-byte frames.
    pub fn gbps(&self, frame_len: usize) -> f64 {
        self.pps() * frame_len as f64 * 8.0 / 1e9
    }
}

/// Shared-registry instruments for one native runner (see
/// [`NativeRunner::attach_metrics`]).
#[derive(Debug, Clone)]
struct NativeMetrics {
    packets: innet_obs::Counter,
    transmitted: innet_obs::Counter,
    run_ns: innet_obs::Histogram,
}

/// A single-threaded native runner around one router instance (one
/// ClickOS VM pins its Click thread to one vCPU).
pub struct NativeRunner {
    router: Router,
    metrics: Option<NativeMetrics>,
}

impl NativeRunner {
    /// Instantiates the configuration.
    pub fn new(cfg: &ClickConfig) -> Result<NativeRunner, RouterError> {
        Ok(NativeRunner {
            router: Router::from_config(cfg, &Registry::standard())?,
            metrics: None,
        })
    }

    /// Publishes this runner's counters into `registry` (Prometheus
    /// namespace `innet_native_*`): packets in, packets transmitted, and
    /// a wall-clock run-duration histogram. The inner router's counters
    /// are published too (`innet_click_*`). Only runs after attachment
    /// are counted.
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        self.router.attach_metrics(registry);
        self.metrics = Some(NativeMetrics {
            packets: registry.counter("innet_native_packets_total"),
            transmitted: registry.counter("innet_native_transmitted_total"),
            run_ns: registry.histogram("innet_native_run_ns"),
        });
    }

    /// Access to the underlying router (for counter inspection).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Pushes the packet set through the graph `rounds` times, measuring
    /// wall-clock time. Virtual time advances by `1 µs` per packet so
    /// token buckets refill realistically.
    pub fn run(&mut self, packets: &[Packet], rounds: usize) -> NativeStats {
        let mut now_ns = 0u64;
        let mut transmitted = 0u64;
        let start = Instant::now();
        for _ in 0..rounds {
            for pkt in packets {
                now_ns += 1_000;
                let _ = self.router.deliver(pkt.meta.ingress, pkt.clone(), now_ns);
                transmitted += self.router.take_tx().len() as u64;
            }
        }
        let stats = NativeStats {
            packets: (packets.len() * rounds) as u64,
            transmitted,
            elapsed_ns: start.elapsed().as_nanos().max(1) as u64,
        };
        if let Some(m) = &self.metrics {
            m.packets.add(stats.packets);
            m.transmitted.add(stats.transmitted);
            m.run_ns.observe(stats.elapsed_ns);
        }
        stats
    }
}

/// Builds the consolidated multi-tenant configuration of §5/Figure 8:
/// one `IPClassifier` demultiplexer with a `dst host` rule per client,
/// each output feeding that client's firewall, all re-multiplexed onto
/// the outgoing interface.
pub fn consolidated_config(clients: &[Ipv4Addr]) -> ClickConfig {
    let mut cfg = ClickConfig::new();
    cfg.add_element("src", "FromNetfront", &[]);
    cfg.add_element("snk", "ToNetfront", &[]);
    let rules: Vec<String> = clients.iter().map(|a| format!("dst host {a}")).collect();
    let rule_refs: Vec<&str> = rules.iter().map(|s| s.as_str()).collect();
    cfg.add_element("demux", "IPClassifier", &rule_refs);
    cfg.connect("src", 0, "demux", 0);
    for (i, addr) in clients.iter().enumerate() {
        let udp = format!("allow udp dst host {addr}");
        let tcp = format!("allow tcp dst host {addr}");
        let fw = cfg.add_element(format!("fw{i}"), "IPFilter", &[&udp, &tcp]);
        cfg.connect("demux", i, &fw, 0);
        cfg.connect(&fw, 0, "snk", 0);
    }
    cfg
}

/// The middlebox configurations of the Figure 12 sweep. Returns `None`
/// for an unknown kind instead of panicking, so callers handling
/// externally supplied kind strings can fail gracefully.
pub fn middlebox_config(kind: &str) -> Option<ClickConfig> {
    let text = match kind {
        "nat" => "FromNetfront() -> [0]n :: IPNAT(203.0.113.1); n[0] -> ToNetfront();".to_string(),
        "iprouter" => "FromNetfront() -> CheckIPHeader() -> DecIPTTL() \
             -> r :: StaticIPLookup(0.0.0.0/0 0); r[0] -> ToNetfront();"
            .to_string(),
        "firewall" => {
            "FromNetfront() -> IPFilter(allow udp, allow tcp dst port 80) -> ToNetfront();"
                .to_string()
        }
        "flowmeter" => "FromNetfront() -> FlowMeter() -> ToNetfront();".to_string(),
        _ => return None,
    };
    Some(ClickConfig::parse(&text).expect("middlebox configs are valid"))
}

/// Wraps the firewall with a `ChangeEnforcer` on the world→module (RX)
/// path, the direction the paper's Figure 11 measures: every received
/// packet pays the enforcer's implicit-authorization bookkeeping before
/// reaching the firewall.
pub fn sandboxed_firewall(module_addr: Ipv4Addr, whitelist: Ipv4Addr) -> ClickConfig {
    ClickConfig::parse(&format!(
        "FromNetfront() -> [0]enf :: ChangeEnforcer({module_addr}, {whitelist}); \
         enf[0] -> IPFilter(allow udp, allow tcp) -> ToNetfront();"
    ))
    .expect("valid literal config")
}

/// The plain firewall the sandboxed variant is compared against.
pub fn plain_firewall() -> ClickConfig {
    ClickConfig::parse("FromNetfront() -> IPFilter(allow udp, allow tcp) -> ToNetfront();")
        .expect("valid literal config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::PacketBuilder;

    fn client_addrs(n: usize) -> Vec<Ipv4Addr> {
        (0..n)
            .map(|i| Ipv4Addr::new(203, 0, (113 + i / 250) as u8, (1 + i % 250) as u8))
            .collect()
    }

    #[test]
    fn consolidated_config_isolates_clients() {
        let clients = client_addrs(10);
        let cfg = consolidated_config(&clients);
        cfg.validate().unwrap();
        let mut runner = NativeRunner::new(&cfg).unwrap();
        // Traffic to client 3 passes; to a stranger drops.
        let ok = PacketBuilder::udp().dst(clients[3], 80).build();
        let bad = PacketBuilder::udp()
            .dst(Ipv4Addr::new(9, 9, 9, 9), 80)
            .build();
        let stats = runner.run(&[ok, bad], 1);
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.transmitted, 1);
    }

    #[test]
    fn throughput_measurable() {
        let cfg = plain_firewall();
        let mut runner = NativeRunner::new(&cfg).unwrap();
        let pkts: Vec<Packet> = (0..64)
            .map(|i| {
                PacketBuilder::udp()
                    .dst(Ipv4Addr::new(10, 0, 0, 1), i)
                    .pad_to(64)
                    .build()
            })
            .collect();
        let stats = runner.run(&pkts, 50);
        assert_eq!(stats.transmitted, stats.packets);
        assert!(stats.pps() > 1000.0, "sane rate: {}", stats.pps());
    }

    #[test]
    fn sandbox_costs_throughput() {
        let module = Ipv4Addr::new(203, 0, 113, 10);
        let white = Ipv4Addr::new(198, 51, 100, 1);
        let pkts: Vec<Packet> = (0..64)
            .map(|i| {
                PacketBuilder::udp()
                    .src(
                        Ipv4Addr::new(8, 8, 8, (i % 250) as u8 + 1),
                        40_000 + i as u16,
                    )
                    .dst(module, 1500)
                    .pad_to(64)
                    .build()
            })
            .collect();
        let mut plain = NativeRunner::new(&plain_firewall()).unwrap();
        let mut boxed = NativeRunner::new(&sandboxed_firewall(module, white)).unwrap();
        let p = plain.run(&pkts, 50);
        let b = boxed.run(&pkts, 50);
        // Functional: the sandboxed RX path forwards everything (inbound
        // traffic to the module is always allowed), it just costs more.
        assert_eq!(b.transmitted, b.packets);
        assert_eq!(p.transmitted, p.packets);
        // The cost *comparison* is measured by the Figure 11 bench in
        // release mode; asserting relative wall-clock times in a debug
        // test would be flaky.
    }

    #[test]
    fn middlebox_configs_run() {
        assert!(middlebox_config("frobnicator").is_none());
        for kind in ["nat", "iprouter", "firewall", "flowmeter"] {
            let cfg = middlebox_config(kind).unwrap();
            let mut runner = NativeRunner::new(&cfg).unwrap();
            let pkts = vec![PacketBuilder::udp().ttl(64).build()];
            let stats = runner.run(&pkts, 10);
            assert_eq!(stats.transmitted, 10, "{kind} forwards traffic");
        }
    }
}
