//! The fleet scenario engine end to end: a gravity-model traffic matrix
//! over a generated WAN, a PoP killed mid-run with every stranded tenant
//! re-homed through the controller's ranked placement, executed
//! stateless consolidation, and CDN tiering — all on one deterministic
//! [`FleetDriver`] timeline.
//!
//! Run with: `cargo run -p innet-examples --bin scenarios`

use std::net::Ipv4Addr;

use innet::click::ClickConfig;
use innet::controller::InstalledModule;
use innet::prelude::*;
use innet::topology::{generate_fleet, FleetParams};

const SEC: u64 = 1_000_000_000;

fn main() {
    // A reproducible mini-WAN: 6 PoPs, 2 platforms each.
    let params = FleetParams {
        pops: 6,
        platforms_per_pop: 2,
        clients_per_pop: 1,
        seed: 11,
    };
    let topo = generate_fleet(&params);
    println!(
        "== topology: {} nodes, {} platforms (seed {})",
        topo.nodes.len(),
        topo.platforms().len(),
        params.seed
    );

    // Tenants spread across the PoPs, mirrored into the controller so
    // the scenario hooks rank and plan against the real control plane.
    let mut fleet = Fleet::new(&topo);
    let mut ctl = Controller::new(topo.clone());
    let platforms = fleet.platforms();
    let config = ClickConfig::parse(
        "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
    )
    .unwrap();
    let tenants: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(198, 18, 0, i)).collect();
    let mut modules = Vec::new();
    for (i, &addr) in tenants.iter().enumerate() {
        let home = platforms[i % platforms.len()];
        fleet
            .register(
                home,
                ClientEntry {
                    addr,
                    config: config.clone(),
                    stateful: false,
                },
            )
            .unwrap();
        modules.push(InstalledModule {
            id: i as u64,
            name: format!("tenant{i}"),
            platform: home,
            addr,
            config: config.clone(),
            sandboxed: false,
            owner: "cdn-inc".into(),
        });
    }
    ctl.adopt_modules(modules);

    // Seeded gravity-model demand between the client subnets and the
    // tenants, paced into the timeline.
    let matrix = TrafficMatrix::gravity(
        &topo,
        &tenants,
        &TrafficParams {
            seed: 7,
            total_pps: 600,
            ..TrafficParams::default()
        },
    );
    println!("== traffic matrix: {} demands", matrix.demands().len());

    // The scenario: PoP 0 dies at 1s, a flash crowd hits PoP 1 at 1.5s,
    // consolidation executes at 2s, and the first tenant tiers onto CDN
    // edges at 2.5s.
    let edges: Vec<_> = platforms
        .iter()
        .copied()
        .filter(|&p| topo.pop_of(p) == Some(4))
        .collect();
    let scenario = Scenario::new("showcase")
        .at(SEC, ScenarioEvent::KillPop { pop: 0 })
        .at(
            SEC + SEC / 2,
            ScenarioEvent::FlashCrowd {
                pop: 1,
                multiplier: 4,
            },
        )
        .at(2 * SEC, ScenarioEvent::ExecuteConsolidation)
        .at(
            2 * SEC + SEC / 2,
            ScenarioEvent::CdnTier {
                origin: tenants[0],
                edges: edges.clone(),
            },
        );

    let run = FleetDriver::new(fleet)
        .until(60 * SEC)
        .traffic(matrix)
        .hooks(ControllerHooks::new(&ctl))
        .events(scenario)
        .run();

    for rec in &run.rehomes {
        match rec.to {
            Some(to) => println!(
                "failover: {} re-homed {} -> {} (downtime {:.1} ms, decision {:.1} us)",
                rec.addr,
                topo.node(rec.from).name,
                topo.node(to).name,
                rec.downtime_ns as f64 / 1e6,
                rec.decision_ns as f64 / 1e3
            ),
            None => println!(
                "failover: {} stranded on {} (no alive platform had room)",
                rec.addr,
                topo.node(rec.from).name
            ),
        }
    }
    assert!(
        run.rehomes.iter().all(|rec| rec.to.is_some()),
        "every stranded tenant re-homes"
    );
    println!(
        "consolidation executed: {} live migrations ({} completed)",
        run.consolidation_moves.len(),
        run.stats.migrations_completed
    );
    println!(
        "cdn tiering: {} edge replicas of {}",
        run.cdn_edges, tenants[0]
    );
    println!(
        "== run: {} matrix packets injected, {} fabric forwards, \
         {} link drops, {} reroutes, {} dead drops",
        run.traffic_injected,
        run.stats.fabric_forwards,
        run.stats.link_drops,
        run.stats.reroutes,
        run.stats.dead_drops
    );
}
