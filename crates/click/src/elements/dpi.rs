//! `DPI` — deep packet inspection by payload signature matching.

use std::any::Any;

use innet_packet::Packet;

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// `DPI("SIG", "SIG", ...)` — scans the L4 payload for the configured byte
/// signatures. Clean packets leave on output 0; packets containing any
/// signature leave on output 1 (drop it by leaving output 1 unconnected).
///
/// Signatures are given as (optionally double-quoted) strings. Matching is
/// a naive substring scan — the cost model the paper's DPI middlebox
/// (Table 1) pays per packet.
#[derive(Debug)]
pub struct Dpi {
    signatures: Vec<Vec<u8>>,
    clean: u64,
    flagged: u64,
}

impl Dpi {
    /// Parses `DPI(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<Dpi, ElementError> {
        if args.is_empty() {
            return Err(ElementError::BadArgs {
                class: "DPI",
                message: "needs at least one signature".to_string(),
            });
        }
        let signatures = args
            .all()
            .map(|s| s.trim_matches('"').as_bytes().to_vec())
            .collect();
        Ok(Dpi {
            signatures,
            clean: 0,
            flagged: 0,
        })
    }

    /// Counters: (clean, flagged).
    pub fn counters(&self) -> (u64, u64) {
        (self.clean, self.flagged)
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
    }
}

impl Element for Dpi {
    fn class_name(&self) -> &'static str {
        "DPI"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, 2)
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let payload = pkt.payload().unwrap_or(&[]);
        let hit = self
            .signatures
            .iter()
            .any(|sig| Dpi::contains(payload, sig));
        if hit {
            self.flagged += 1;
            out.push(1, pkt);
        } else {
            self.clean += 1;
            out.push(0, pkt);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn flags_matching_payload() {
        let mut d = Dpi::from_args(&ConfigArgs::parse("DPI", "\"EVIL\", attack")).unwrap();
        let mut s = VecSink::new();
        d.push(
            0,
            PacketBuilder::udp().payload(b"hello EVIL world").build(),
            &Context::default(),
            &mut s,
        );
        d.push(
            0,
            PacketBuilder::udp().payload(b"an attack vector").build(),
            &Context::default(),
            &mut s,
        );
        d.push(
            0,
            PacketBuilder::udp().payload(b"benign").build(),
            &Context::default(),
            &mut s,
        );
        let ports: Vec<usize> = s.pushed.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![1, 1, 0]);
        assert_eq!(d.counters(), (1, 2));
    }

    #[test]
    fn empty_payload_is_clean() {
        let mut d = Dpi::from_args(&ConfigArgs::parse("DPI", "x")).unwrap();
        let mut s = VecSink::new();
        d.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert_eq!(s.pushed[0].0, 0);
    }

    #[test]
    fn needs_signature() {
        assert!(Dpi::from_args(&ConfigArgs::parse("DPI", "")).is_err());
    }
}
