//! The header fields SymNet tracks, and the per-layer field map.

use serde::{Deserialize, Serialize};

use crate::value::SymValue;

/// A tracked packet header field.
///
/// This is the abstraction level of the paper's Figure 2 trace: IP
/// addresses, protocol, ports, payload identity, plus middlebox state
/// pushed into the flow (`FwTag` — the `firewall_tag` of the example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Field {
    /// IPv4 source address (as u32).
    IpSrc,
    /// IPv4 destination address (as u32).
    IpDst,
    /// IP protocol number.
    Proto,
    /// Transport source port.
    SrcPort,
    /// Transport destination port.
    DstPort,
    /// IP time-to-live.
    Ttl,
    /// DSCP/ECN byte.
    Tos,
    /// 1 when the packet is a bare TCP SYN, 0 otherwise.
    TcpSyn,
    /// Identity of the payload bytes: same value ⇒ provably unmodified.
    Payload,
    /// Firewall state pushed into the flow (paper Figure 2's
    /// `firewall_tag`): 1 once outbound traffic has authorized the flow.
    FwTag,
}

/// All fields, in canonical order.
pub const ALL_FIELDS: [Field; 10] = [
    Field::IpSrc,
    Field::IpDst,
    Field::Proto,
    Field::SrcPort,
    Field::DstPort,
    Field::Ttl,
    Field::Tos,
    Field::TcpSyn,
    Field::Payload,
    Field::FwTag,
];

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Field::IpSrc => "ip_src",
            Field::IpDst => "ip_dst",
            Field::Proto => "proto",
            Field::SrcPort => "src_port",
            Field::DstPort => "dst_port",
            Field::Ttl => "ttl",
            Field::Tos => "tos",
            Field::TcpSyn => "tcp_syn",
            Field::Payload => "payload",
            Field::FwTag => "fw_tag",
        };
        write!(f, "{s}")
    }
}

/// One header layer: a total map from [`Field`] to [`SymValue`].
///
/// Implemented as a fixed array indexed by field ordinal — cloned on every
/// hop for the trace, so it must stay small and flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldMap {
    vals: [SymValue; ALL_FIELDS.len()],
}

fn idx(f: Field) -> usize {
    ALL_FIELDS
        .iter()
        .position(|&g| g == f)
        .expect("field in ALL_FIELDS")
}

impl FieldMap {
    /// A map with every field set to `Const(0)` (callers overwrite).
    pub fn zeroed() -> FieldMap {
        FieldMap {
            vals: [SymValue::Const(0); ALL_FIELDS.len()],
        }
    }

    /// Reads a field.
    pub fn get(&self, f: Field) -> SymValue {
        self.vals[idx(f)]
    }

    /// Writes a field.
    pub fn set(&mut self, f: Field, v: SymValue) {
        self.vals[idx(f)] = v;
    }

    /// Iterates `(field, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Field, SymValue)> + '_ {
        ALL_FIELDS.iter().map(move |&f| (f, self.get(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut m = FieldMap::zeroed();
        m.set(Field::IpDst, SymValue::Var(7));
        assert_eq!(m.get(Field::IpDst), SymValue::Var(7));
        assert_eq!(m.get(Field::IpSrc), SymValue::Const(0));
    }

    #[test]
    fn iter_covers_all() {
        let m = FieldMap::zeroed();
        assert_eq!(m.iter().count(), ALL_FIELDS.len());
    }
}
