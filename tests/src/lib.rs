//! Integration-test crate; all content lives in `tests/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
