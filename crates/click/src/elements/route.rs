//! `StaticIPLookup` — longest-prefix-match routing.

use std::any::Any;

use innet_packet::{Cidr, Packet};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// `StaticIPLookup(CIDR PORT, CIDR PORT, ...)` — sends each packet to the
/// output port of the longest matching prefix for its destination address;
/// packets matching no route are dropped.
///
/// Combined with `DecIPTTL` and `CheckIPHeader` this forms the "IP router"
/// middlebox of Table 1 and Figure 12.
#[derive(Debug)]
pub struct StaticIPLookup {
    /// Routes sorted by descending prefix length (so the first match is
    /// the longest).
    routes: Vec<(Cidr, usize)>,
    n_outputs: usize,
    no_route: u64,
}

impl StaticIPLookup {
    /// Parses `StaticIPLookup(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<StaticIPLookup, ElementError> {
        let bad = |message: String| ElementError::BadArgs {
            class: "StaticIPLookup",
            message,
        };
        if args.is_empty() {
            return Err(bad("needs at least one route".to_string()));
        }
        let mut routes = Vec::new();
        for arg in args.all() {
            let mut it = arg.split_whitespace();
            let (Some(cidr_s), Some(port_s), None) = (it.next(), it.next(), it.next()) else {
                return Err(bad(format!("route must be 'CIDR PORT', got '{arg}'")));
            };
            let cidr: Cidr = cidr_s
                .parse()
                .map_err(|_| bad(format!("bad prefix '{cidr_s}'")))?;
            let port: usize = port_s
                .parse()
                .map_err(|_| bad(format!("bad port '{port_s}'")))?;
            routes.push((cidr, port));
        }
        routes.sort_by_key(|r| std::cmp::Reverse(r.0.prefix_len()));
        let n_outputs = routes.iter().map(|&(_, p)| p + 1).max().unwrap_or(1);
        Ok(StaticIPLookup {
            routes,
            n_outputs,
            no_route: 0,
        })
    }

    /// The route table, in match order.
    pub fn routes(&self) -> &[(Cidr, usize)] {
        &self.routes
    }

    /// Packets dropped for lack of a route.
    pub fn no_route(&self) -> u64 {
        self.no_route
    }
}

impl Element for StaticIPLookup {
    fn class_name(&self) -> &'static str {
        "StaticIPLookup"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, self.n_outputs)
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let Ok(ip) = pkt.ipv4() else {
            self.no_route += 1;
            return;
        };
        let dst = ip.dst();
        match self.routes.iter().find(|(c, _)| c.contains(dst)) {
            Some(&(_, port)) => out.push(port, pkt),
            None => self.no_route += 1,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn lookup() -> StaticIPLookup {
        StaticIPLookup::from_args(&ConfigArgs::parse(
            "StaticIPLookup",
            "10.0.0.0/8 0, 10.1.0.0/16 1, 0.0.0.0/0 2",
        ))
        .unwrap()
    }

    fn to(dst: Ipv4Addr) -> Packet {
        PacketBuilder::udp().dst_addr(dst).build()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut l = lookup();
        let mut s = VecSink::new();
        l.push(
            0,
            to(Ipv4Addr::new(10, 1, 2, 3)),
            &Context::default(),
            &mut s,
        );
        l.push(
            0,
            to(Ipv4Addr::new(10, 9, 2, 3)),
            &Context::default(),
            &mut s,
        );
        l.push(
            0,
            to(Ipv4Addr::new(8, 8, 8, 8)),
            &Context::default(),
            &mut s,
        );
        let ports: Vec<usize> = s.pushed.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![1, 0, 2]);
    }

    #[test]
    fn no_default_route_drops() {
        let mut l = StaticIPLookup::from_args(&ConfigArgs::parse("StaticIPLookup", "10.0.0.0/8 0"))
            .unwrap();
        let mut s = VecSink::new();
        l.push(
            0,
            to(Ipv4Addr::new(8, 8, 8, 8)),
            &Context::default(),
            &mut s,
        );
        assert!(s.pushed.is_empty());
        assert_eq!(l.no_route(), 1);
    }

    #[test]
    fn output_count_from_routes() {
        assert_eq!(lookup().ports().outputs, 3);
    }

    #[test]
    fn bad_routes_rejected() {
        for bad in [
            "10.0.0.0/8",
            "10.0.0.0/8 x",
            "banana 0",
            "10.0.0.0/8 0 extra",
        ] {
            assert!(
                StaticIPLookup::from_args(&ConfigArgs::parse("StaticIPLookup", bad)).is_err(),
                "{bad} should fail"
            );
        }
    }
}
