//! # innet-platform
//!
//! The In-Net processing platform (paper §5): a ClickOS/Xen host model
//! with the scaling mechanisms the paper adds —
//!
//! * **On-the-fly middleboxes** — the back-end switch controller detects
//!   new flows (TCP SYN / UDP) and boots a tiny ClickOS VM for them,
//!   buffering the first packets ([`SwitchController`]).
//! * **Suspend and resume** — stateful VMs are parked instead of
//!   destroyed, so per-flow state survives idle periods ([`Host`]).
//! * **Consolidation** — many stateless tenants share one VM behind an
//!   `IPClassifier` demultiplexer, which is safe because static analysis
//!   proved their configurations cannot interact
//!   ([`consolidated_config`]).
//!
//! Control-plane latencies (boot/suspend/resume) and memory are *modelled*
//! from the paper's own measurements — [`calib`] is the single source of
//! truth and cites each constant. Data-plane processing is *executed*: a
//! VM's interior is a real `innet_click::Router`, and the [`NativeRunner`]
//! measures real throughput for the evaluation figures.
//!
//! Runners are configured through one builder, [`RunnerConfig`], which
//! finishes as either engine:
//!
//! ```
//! use innet_platform::{plain_firewall, RunnerConfig};
//!
//! let cfg = plain_firewall();
//! let single = RunnerConfig::new().batch(64).native(&cfg).unwrap();
//! let sharded = RunnerConfig::new().workers(4).parallel(&cfg).unwrap();
//! # let _ = (single, sharded);
//! ```
//!
//! The [`ParallelRunner`] scales a configuration across flow-sharded
//! router replicas according to its shardability verdict: stateless
//! configurations shard under the directed flow hash, per-connection
//! stateful ones (NAT, stateful firewall) shard under the symmetric
//! connection-pinning hash, and globally stateful ones degrade to one
//! worker (see [`ParallelRunner::shardability`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod driver;
mod engine;
mod fleet;
mod native;
mod parallel;
mod runner;
mod scenario;
mod spsc;
mod switch;
mod traffic;
mod vm;

pub use calib::{max_vms, VmTimingKind};
pub use driver::{DriverRun, FleetDriver};
pub use engine::Engine;
pub use fleet::{Fleet, FleetError, FleetStats, LinkReport, LinkUsage, MigrationRecord};
pub use native::{
    consolidated_config, middlebox_config, nat_gateway_config, plain_firewall, sandboxed_firewall,
    stateful_firewall_config, NativeRunner, NativeStats,
};
pub use parallel::{ParallelRunner, ParallelStats};
pub use runner::{RunnerConfig, DEFAULT_BATCH, DEFAULT_RING_CAPACITY};
pub use scenario::{RehomeRecord, Scenario, ScenarioEvent, ScenarioHooks, TopoHooks};
pub use switch::{ClientEntry, SwitchController, SwitchStats, Usage};
pub use traffic::{Demand, TrafficMatrix, TrafficParams};
pub use vm::{Delivery, DropReason, Host, HostError, Vm, VmId, VmState};
