//! Static-analyzer integration tests.
//!
//! The load-bearing one is the differential property test: the abstract
//! interpreter's fast-path verdict must agree with full symbolic
//! execution on every generated configuration where it claims to be
//! conclusive — that agreement is the entire soundness contract of the
//! controller's fast path.

use innet::analysis::{abstract_verdict, lint};
use innet::click::{ClickConfig, Registry};
use innet::controller::HardeningPolicy;
use innet::prelude::*;
use innet::symnet::{
    check_module, check_module_summarized, SecurityContext, SummarySource, SymSummary,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::net::Ipv4Addr;

const ASSIGNED: &str = "192.0.2.10";
const REGISTERED: &str = "172.16.15.133";

fn ctx(class: RequesterClass) -> SecurityContext {
    SecurityContext {
        assigned_addr: ASSIGNED.parse().unwrap(),
        registered: vec![REGISTERED.parse().unwrap()],
        class,
    }
}

/// The middle-element pool the generator draws from: every packet-path
/// element family the symbolic models cover (filters, rewriters, tunnels,
/// NATs, proxies, opaque VMs, responders), with valid arguments.
const POOL: &[(&str, &[&str])] = &[
    ("Counter", &[]),
    ("Queue", &[]),
    ("TimedUnqueue", &["120", "100"]),
    ("CheckIPHeader", &[]),
    ("DecIPTTL", &[]),
    ("SetTOS", &["4"]),
    ("Paint", &["3"]),
    ("IPFilter", &["allow udp"]),
    ("IPFilter", &["allow tcp dst port 80"]),
    ("IPFilter", &["allow udp dst port 1500"]),
    ("SetIPSrc", &[ASSIGNED]),
    ("SetIPSrc", &["8.8.8.8"]),
    ("SetIPDst", &[REGISTERED]),
    ("SetIPDst", &["203.0.113.77"]),
    ("IPRewriter", &["pattern - - 172.16.15.133 - 0 0"]),
    ("ICMPPingResponder", &[]),
    ("UDPTunnelEncap", &[ASSIGNED, "7000", REGISTERED, "7001"]),
    ("UDPTunnelDecap", &[]),
    ("IPNAT", &["203.0.113.1"]),
    ("StaticIPLookup", &["172.16.0.0/12 0"]),
    ("StockX86VM", &[]),
    ("ServerS", &[]),
];

/// A random linear chain `FromNetfront -> middle* -> terminal`. Linear
/// chains over the full pool already exercise every abstract transfer
/// function (constants, copies, runtime values, filters, tunnels, havoc).
fn random_config(rng: &mut StdRng) -> ClickConfig {
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    let mut prev = "in".to_string();
    let middles = rng.gen_range(0usize..5);
    for i in 0..middles {
        let (class, args) = POOL[rng.gen_range(0..POOL.len())];
        let name = format!("e{i}");
        cfg.add_element(name.clone(), class, args);
        cfg.connect(prev, 0, name.clone(), 0);
        prev = name;
    }
    let terminal = if rng.gen_range(0u32..8) == 0 {
        "Discard"
    } else {
        "ToNetfront"
    };
    cfg.add_element("out", terminal, &[]);
    cfg.connect(prev, 0, "out", 0);
    cfg
}

/// ≥1000 generated configurations × every requester class: wherever the
/// analyzer returns a verdict, symbolic execution must return the same
/// one. Mismatches print the offending configuration.
#[test]
fn fast_path_agrees_with_symnet_on_generated_configs() {
    let registry = Registry::standard();
    let mut rng = StdRng::seed_from_u64(0x1e7_2015);
    let mut decisive = 0usize;
    let mut inconclusive = 0usize;
    for case in 0..1000 {
        let cfg = random_config(&mut rng);
        for class in [
            RequesterClass::ThirdParty,
            RequesterClass::Client,
            RequesterClass::Operator,
        ] {
            let ctx = ctx(class);
            let Some(abs) = abstract_verdict(&cfg, &ctx, &registry) else {
                inconclusive += 1;
                continue;
            };
            decisive += 1;
            let sym = check_module(&cfg, &ctx, &registry).unwrap_or_else(|e| {
                panic!(
                    "case {case} ({class:?}): analyzer was conclusive but SymNet \
                     failed to model the config: {e}\n{}",
                    cfg.canonical_text()
                )
            });
            assert_eq!(
                abs.verdict,
                sym.verdict,
                "case {case} ({class:?}): fast path said {:?}, SymNet said {:?} \
                 (violations: {:?}, unknowns: {:?})\noffending config:\n{}",
                abs.verdict,
                sym.verdict,
                sym.violations,
                sym.unknowns,
                cfg.canonical_text()
            );
        }
    }
    // The fast path must be decisive often enough to matter; the exact
    // rate depends on the pool mix.
    assert!(
        decisive > 100,
        "fast path decided only {decisive} of {} cases",
        decisive + inconclusive
    );
}

/// In-test [`SummarySource`]: a plain map keyed by the canonical slice
/// text, mirroring the controller's fleet-wide cache (minus locking).
#[derive(Default)]
struct MapSource {
    entries: std::cell::RefCell<std::collections::HashMap<String, std::sync::Arc<SymSummary>>>,
    hits: std::cell::Cell<usize>,
}

impl SummarySource for MapSource {
    fn lookup(&self, cfg: &ClickConfig, chain: &[usize]) -> Option<std::sync::Arc<SymSummary>> {
        let hit = self
            .entries
            .borrow()
            .get(&cfg.canonical_slice_text(chain))
            .cloned();
        if hit.is_some() {
            self.hits.set(self.hits.get() + 1);
        }
        hit
    }

    fn store(&self, cfg: &ClickConfig, chain: &[usize], summary: std::sync::Arc<SymSummary>) {
        self.entries
            .borrow_mut()
            .insert(cfg.canonical_slice_text(chain), summary);
    }
}

/// ≥1000 generated configurations × every requester class: the
/// compositional checker (summary replay over the entry chain, cold and
/// cache-warm) must return the same verdict as whole-graph symbolic
/// execution. This is the soundness contract of the summary path — the
/// whole-graph executor stays the differential oracle.
#[test]
fn compositional_verdict_agrees_with_whole_graph() {
    let registry = Registry::standard();
    let mut rng = StdRng::seed_from_u64(0xc0_2015);
    let warm = MapSource::default();
    let mut chain_nodes = 0u64;
    for case in 0..1000 {
        let cfg = random_config(&mut rng);
        for class in [
            RequesterClass::ThirdParty,
            RequesterClass::Client,
            RequesterClass::Operator,
        ] {
            let ctx = ctx(class);
            let oracle = check_module(&cfg, &ctx, &registry);
            // Cold: every summary computed in-call; warm: replayed from
            // the shared map that persists across all 1000 cases.
            let cold = check_module_summarized(&cfg, &ctx, &registry, None);
            let warmed = check_module_summarized(&cfg, &ctx, &registry, Some(&warm));
            for (mode, got) in [("cold", cold), ("warm", warmed)] {
                match (&oracle, got) {
                    (Ok(want), Ok((report, stats))) => {
                        assert_eq!(
                            want.verdict,
                            report.verdict,
                            "case {case} ({class:?}, {mode}): whole-graph said {:?}, \
                             compositional said {:?}\noffending config:\n{}",
                            want.verdict,
                            report.verdict,
                            cfg.canonical_text()
                        );
                        chain_nodes += stats.summary_chain_nodes;
                    }
                    (Err(_), Err(_)) => {}
                    (want, got) => panic!(
                        "case {case} ({class:?}, {mode}): whole-graph {want:?} but \
                         compositional {got:?}\noffending config:\n{}",
                        cfg.canonical_text()
                    ),
                }
            }
        }
    }
    // The summary path must actually engage (chains of >= 2 safe
    // elements exist in the pool) and the shared map must get replay
    // traffic across alpha-equivalent chains.
    assert!(chain_nodes > 0, "summary replay never engaged");
    assert!(warm.hits.get() > 0, "warm source never served a summary");
}

// --- Seeded malformed configurations: each must trip its lint rule. ---

fn lint_of(cfg: &ClickConfig) -> innet::analysis::LintReport {
    lint(cfg, &Registry::standard())
}

#[test]
fn arity_violation_is_l004() {
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("c", "Counter", &[]);
    cfg.add_element("out", "ToNetfront", &[]);
    cfg.connect("in", 0, "c", 0);
    // Counter has exactly one output; port 1 does not exist.
    cfg.connect("c", 1, "out", 0);
    let r = lint_of(&cfg);
    assert!(r.has_rule("IN-L004"), "{r}");
    assert!(r.has_errors());
}

#[test]
fn dead_output_is_l007() {
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("t", "Tee", &["2"]);
    cfg.add_element("out", "ToNetfront", &[]);
    cfg.connect("in", 0, "t", 0);
    cfg.connect("t", 0, "out", 0);
    // t[1] is wired to nothing: its copies vanish silently.
    let r = lint_of(&cfg);
    assert!(r.has_rule("IN-L007"), "{r}");
}

#[test]
fn unreachable_element_is_l008() {
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("out", "ToNetfront", &[]);
    cfg.add_element("orphan", "Counter", &[]);
    cfg.add_element("sink", "Discard", &[]);
    cfg.connect("in", 0, "out", 0);
    cfg.connect("orphan", 0, "sink", 0);
    let r = lint_of(&cfg);
    assert!(r.has_rule("IN-L008"), "{r}");
}

#[test]
fn queueless_cycle_is_l009_and_a_queue_clears_it() {
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("a", "Counter", &[]);
    cfg.add_element("b", "Counter", &[]);
    cfg.connect("in", 0, "a", 0);
    cfg.connect("a", 0, "b", 0);
    cfg.connect("b", 0, "a", 0);
    let r = lint_of(&cfg);
    assert!(r.has_rule("IN-L009"), "{r}");

    // The same loop through a Queue is a legitimate feedback shape.
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("a", "Counter", &[]);
    cfg.add_element("q", "Queue", &[]);
    cfg.connect("in", 0, "a", 0);
    cfg.connect("a", 0, "q", 0);
    cfg.connect("q", 0, "a", 0);
    let r = lint_of(&cfg);
    assert!(!r.has_rule("IN-L009"), "{r}");
}

#[test]
fn remaining_rules_fire() {
    // IN-L001: duplicate names.
    let mut cfg = ClickConfig::new();
    cfg.add_element("x", "Counter", &[]);
    cfg.add_element("x", "Counter", &[]);
    assert!(lint_of(&cfg).has_rule("IN-L001"));

    // IN-L002: unknown class.
    let mut cfg = ClickConfig::new();
    cfg.add_element("f", "Frobnicator", &[]);
    assert!(lint_of(&cfg).has_rule("IN-L002"));

    // IN-L003: malformed arguments.
    let mut cfg = ClickConfig::new();
    cfg.add_element("t", "SetTOS", &["not-a-number"]);
    assert!(lint_of(&cfg).has_rule("IN-L003"));

    // IN-L005: dangling connection.
    let mut cfg = ClickConfig::new();
    cfg.connect("ghost", 0, "phantom", 0);
    assert!(lint_of(&cfg).has_rule("IN-L005"));

    // IN-L006: fanout without a Tee.
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("a", "Discard", &[]);
    cfg.add_element("b", "Discard", &[]);
    cfg.connect("in", 0, "a", 0);
    cfg.connect("in", 0, "b", 0);
    assert!(lint_of(&cfg).has_rule("IN-L006"));

    // IN-L010: wiring into a source is a warning, not an error.
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("in2", "FromNetfront", &[]);
    cfg.add_element("out", "ToNetfront", &[]);
    cfg.connect("in", 0, "in2", 0);
    cfg.connect("in2", 0, "out", 0);
    let r = lint_of(&cfg);
    assert!(r.has_rule("IN-L010"), "{r}");
    assert!(!r.has_errors(), "{r}");
}

#[test]
fn dead_classifier_rule_is_l011() {
    // Rule 2 `udp dst port 53` can never fire: rule 0 `udp` already
    // captures every UDP packet. The warning names the shortest
    // shadowing prefix (just rule 0 here).
    let cfg = ClickConfig::parse(
        "in :: FromNetfront(); \
         c :: IPClassifier(udp, tcp, udp dst port 53, -); \
         a :: Discard(); b :: Discard(); d :: Discard(); e :: Discard(); \
         in -> c; c[0] -> a; c[1] -> b; c[2] -> d; c[3] -> e;",
    )
    .unwrap();
    let r = lint_of(&cfg);
    assert!(r.has_rule("IN-L011"), "{r}");
    assert!(!r.has_errors(), "{r}");
    let d = r.diagnostics.iter().find(|d| d.rule == "IN-L011").unwrap();
    assert_eq!(d.element.as_deref(), Some("c"));
    assert!(d.message.contains("rule 2"), "{}", d.message);
    assert!(d.message.contains("0..=0"), "{}", d.message);
}

#[test]
fn dead_filter_rule_is_l011_with_multi_rule_prefix() {
    // Rule 2 `deny tcp dst port 80` is only fully covered once both
    // `tcp syn` (rule 0) and `tcp` (rule 1) are refuted, so the
    // shortest shadowing prefix is 0..=1.
    let cfg = ClickConfig::parse(
        "in :: FromNetfront(); \
         f :: IPFilter(allow tcp syn, allow tcp, deny tcp dst port 80, allow any); \
         out :: ToNetfront(); in -> f -> out;",
    )
    .unwrap();
    let r = lint_of(&cfg);
    assert!(r.has_rule("IN-L011"), "{r}");
    assert!(!r.has_errors(), "{r}");
    let d = r.diagnostics.iter().find(|d| d.rule == "IN-L011").unwrap();
    assert_eq!(d.element.as_deref(), Some("f"));
    assert!(d.message.contains("rule 2"), "{}", d.message);
    assert!(d.message.contains("0..=1"), "{}", d.message);
    assert!(d.message.contains("deny tcp dst port 80"), "{}", d.message);
}

#[test]
fn live_rules_are_not_l011() {
    // The Figure 4 filter and an order-sensitive classifier where every
    // rule still has reachable packets.
    let cfg = ClickConfig::parse(
        "in :: FromNetfront(); \
         f :: IPFilter(allow udp dst port 1500); \
         c :: IPClassifier(udp dst port 53, udp, -); \
         a :: Discard(); b :: Discard(); d :: Discard(); \
         in -> f -> c; c[0] -> a; c[1] -> b; c[2] -> d;",
    )
    .unwrap();
    let r = lint_of(&cfg);
    assert!(!r.has_rule("IN-L011"), "{r}");
}

// --- Controller integration: lint rejection and the fast path. ---

fn controller() -> Controller {
    let mut c = Controller::new(Topology::figure3());
    c.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec![REGISTERED.parse().unwrap()],
    );
    c.register_client(
        "cdn-corp",
        RequesterClass::ThirdParty,
        vec![Ipv4Addr::new(198, 51, 100, 1)],
    );
    c
}

#[test]
fn controller_rejects_lint_errors_with_the_diagnostic() {
    let mut c = controller();
    let mut cfg = ClickConfig::new();
    cfg.add_element("in", "FromNetfront", &[]);
    cfg.add_element("t", "Tee", &["2"]);
    cfg.add_element("out", "ToNetfront", &[]);
    cfg.connect("in", 0, "t", 0);
    cfg.connect("t", 0, "out", 0);
    let req = ClientRequest::click("m", cfg);
    let err = c.deploy("mobile-7", req).unwrap_err();
    match err {
        DeployError::Lint(report) => {
            assert!(report.has_rule("IN-L007"), "{report}");
        }
        other => panic!("expected a lint rejection, got {other}"),
    }
    assert_eq!(c.stats().lint_rejects, 1);
    assert_eq!(c.modules().len(), 0);
}

/// The stock corpus (no requirements) must ride the fast path: every
/// verdict is decided by the analyzer, no symbolic execution at all.
#[test]
fn stock_corpus_rides_the_fast_path() {
    let mut c = controller();
    let obs = innet::obs::Registry::new();
    c.attach_metrics(&obs);
    for (i, kind) in ["geo-dns", "reverse-proxy", "x86-vm", "explicit-proxy"]
        .iter()
        .enumerate()
    {
        let req = ClientRequest::parse(&format!("stock m{i}: {kind}")).unwrap();
        c.deploy("cdn-corp", req).unwrap();
    }
    let stats = c.stats();
    assert!(
        stats.fastpath_hits >= 4,
        "expected every stock deploy to fast-path, got {stats:?}"
    );
    assert!(stats.fastpath_hit_rate() > 0.0);
    assert_eq!(stats.check_ns, 0, "fast path must skip symbolic checking");
    assert_eq!(stats.compile_ns, 0, "fast path must skip model compilation");
    assert!(stats.analysis_ns > 0);

    // The counters are exported through the shared registry.
    let text = obs.snapshot().to_prometheus();
    assert!(text.contains("innet_ctl_fastpath_hits_total"), "{text}");
    assert!(text.contains("innet_ctl_lint_rejects_total"), "{text}");
}

/// A symbolic (non-fast-path) deploy exports the admission-pipeline
/// instrumentation: the reason-labeled bailout counter, the summary
/// cache counters, and the per-stage latency histograms.
#[test]
fn symbolic_pipeline_metrics_are_exported() {
    let mut c = controller();
    let obs = innet::obs::Registry::new();
    c.attach_metrics(&obs);
    let req = ClientRequest::parse(
        "module batcher:\n\
         FromNetfront()\n\
           -> IPFilter(allow udp dst port 1500)\n\
           -> IPRewriter(pattern - - 172.16.15.133 - 0 0)\n\
           -> TimedUnqueue(120, 100)\n\
           -> dst :: ToNetfront();\n\
         reach from internet udp\n\
           -> batcher:dst:0 dst 172.16.15.133\n\
           -> client dst port 1500\n\
           const proto && dst port && payload",
    )
    .unwrap();
    c.deploy("mobile-7", req).unwrap();

    let stats = c.stats();
    assert!(
        stats.summary_chain_nodes > 0,
        "summaries engaged: {stats:?}"
    );
    assert_eq!(
        stats.symbolic_bailouts(),
        stats.hop_cap_bailouts + stats.visit_cap_bailouts
    );

    let text = obs.snapshot().to_prometheus();
    for metric in [
        "innet_ctl_symbolic_bailouts_total",
        "innet_ctl_summary_cache_hits_total",
        "innet_ctl_summary_cache_misses_total",
        "innet_ctl_stage_lint_ns",
        "innet_ctl_stage_fastpath_ns",
        "innet_ctl_stage_symbolic_ns",
        "innet_ctl_stage_placement_ns",
    ] {
        assert!(text.contains(metric), "missing {metric} in:\n{text}");
    }
}

/// Disabling the analyzer forces the symbolic path — and the verdicts
/// stay identical (the stock x86 VM still gets its sandbox).
#[test]
fn disabling_analysis_preserves_verdicts() {
    let mut fast = controller();
    let mut slow = controller();
    slow.set_analysis_enabled(false);
    for c in [&mut fast, &mut slow] {
        let req = ClientRequest::parse("stock vm: x86-vm").unwrap();
        let resp = c.deploy("cdn-corp", req).unwrap();
        assert!(resp.sandboxed);
    }
    assert!(fast.stats().fastpath_hits > 0);
    assert_eq!(slow.stats().fastpath_hits, 0);
    assert!(slow.stats().check_ns > 0, "symbolic path must have run");
}

/// A spoofing config is rejected by the fast path with a security report,
/// not a lint error (it is structurally fine).
#[test]
fn fast_path_rejects_spoofing_with_security_report() {
    let mut c = controller();
    let req =
        ClientRequest::parse("module evil:\nFromNetfront() -> SetIPSrc(8.8.8.8) -> ToNetfront();")
            .unwrap();
    let err = c.deploy("cdn-corp", req).unwrap_err();
    assert!(matches!(err, DeployError::SecurityReject(_)), "{err}");
    assert!(c.stats().fastpath_hits > 0);
    assert_eq!(c.stats().check_ns, 0);
}

/// Hardening gates the fast path off: the UDP-reflection ban needs
/// symbolic egress flows the analyzer does not produce.
#[test]
fn hardening_gates_the_fast_path_off() {
    let mut c = controller();
    c.set_hardening(HardeningPolicy {
        ingress_filtering: true,
        ban_udp_reflection: true,
    });
    let req = ClientRequest::parse("stock dns: geo-dns").unwrap();
    assert!(matches!(
        c.deploy("cdn-corp", req),
        Err(DeployError::SecurityReject(_))
    ));
    assert_eq!(c.stats().fastpath_hits, 0);
    assert!(c.stats().check_ns > 0);
}
