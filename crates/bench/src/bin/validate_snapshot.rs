//! Schema-validates `BENCH_*.json` snapshot files (CI's bench-snapshot
//! smoke step). Exits non-zero with a diagnostic on the first invalid
//! file.

use innet_bench::BenchSnapshot;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_snapshot <BENCH_*.json>...");
        std::process::exit(2);
    }
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                std::process::exit(1);
            }
        };
        match BenchSnapshot::parse(&text) {
            Ok(snap) => {
                if snap.rows.is_empty() {
                    eprintln!("{path}: valid but has no rows");
                    std::process::exit(1);
                }
                println!(
                    "{path}: ok ({} rows, bench '{}')",
                    snap.rows.len(),
                    snap.bench
                );
            }
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }
}
