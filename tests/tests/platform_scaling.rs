//! Integration tests across the platform-scaling mechanisms (§5):
//! on-the-fly boot, suspend/resume, consolidation — and their isolation
//! guarantees.

use innet::click::elements::IPFilter;
use innet::platform::{consolidated_config, ClientEntry, Host, NativeRunner, SwitchController};
use innet::prelude::*;
use std::net::Ipv4Addr;

fn addr(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(203, 0, 113, i)
}

/// The full on-the-fly life cycle: boot on first packet, steady-state
/// processing, idle reclamation, re-boot on return.
#[test]
fn on_the_fly_lifecycle() {
    let mut host = Host::new(16 * 1024);
    let mut sw = SwitchController::new();
    sw.register(ClientEntry {
        addr: addr(10),
        config: ClickConfig::parse("FromNetfront() -> IPFilter(allow udp) -> ToNetfront();")
            .unwrap(),
        stateful: false,
    });

    let pkt = |t: u16| {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 1000 + t)
            .dst(addr(10), 1500)
            .build()
    };

    // Boot, buffer, flush.
    assert!(sw.on_packet(&mut host, pkt(0), 0).unwrap().is_empty());
    assert_eq!(host.advance(200_000_000).len(), 1);
    // Steady state.
    for i in 1..50u16 {
        let out = sw
            .on_packet(&mut host, pkt(i), 200_000_000 + i as u64 * 1_000_000)
            .unwrap();
        assert_eq!(out.len(), 1);
    }
    assert_eq!(sw.stats().boots, 1);
    // Idle reclamation destroys the stateless VM.
    sw.reclaim_idle(&mut host, 60_000_000_000, 1_000_000_000);
    assert_eq!(host.live_vms(), 0);
    // The next packet re-boots.
    sw.on_packet(&mut host, pkt(99), 61_000_000_000).unwrap();
    assert_eq!(sw.stats().boots, 2);
}

/// Stateful modules keep their state across suspend/resume: a firewall's
/// conntrack entry survives, so a reply arriving after resumption still
/// passes.
#[test]
fn conntrack_survives_suspend_resume() {
    let mut host = Host::new(16 * 1024);
    let cfg = ClickConfig::parse(
        r#"
        inside :: FromNetfront(0);
        outside :: FromNetfront(1);
        fw :: StatefulFirewall(allow udp, timeout 3600);
        to_out :: ToNetfront(1);
        to_in :: ToNetfront(0);
        inside -> [0]fw; fw[0] -> to_out;
        outside -> [1]fw; fw[1] -> to_in;
        "#,
    )
    .unwrap();
    let vm = host.boot_clickos(&cfg, 0).unwrap();
    host.advance(100_000_000);

    // Outbound request authorizes the flow.
    let out_pkt = PacketBuilder::udp()
        .src(Ipv4Addr::new(10, 0, 0, 5), 4000)
        .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
        .build();
    let tx = host.deliver(vm, 0, out_pkt, 200_000_000).unwrap();
    assert_eq!(tx.len(), 1);

    // Suspend, then resume much later.
    let done = host.suspend(vm, 1_000_000_000).unwrap();
    host.advance(done);
    let ready = host.resume(vm, 100_000_000_000).unwrap();
    host.advance(ready);

    // The reply still passes: state survived.
    let reply = PacketBuilder::udp()
        .src(Ipv4Addr::new(8, 8, 8, 8), 53)
        .dst(Ipv4Addr::new(10, 0, 0, 5), 4000)
        .build();
    let tx = host.deliver(vm, 1, reply, ready + 1).unwrap();
    assert_eq!(tx.len(), 1, "conntrack entry survived suspension");
}

/// Consolidation isolation: tenants in one VM cannot see or influence
/// each other's traffic — packets only ever leave through the right
/// tenant's filter.
#[test]
fn consolidation_isolates_tenants() {
    let tenants: Vec<Ipv4Addr> = (1..=20).map(addr).collect();
    let cfg = consolidated_config(&tenants);
    let mut runner = NativeRunner::new(&cfg).unwrap();

    // Traffic addressed to tenant 7 passes exactly one filter: fw6.
    let pkt = PacketBuilder::udp().dst(tenants[6], 80).build();
    let stats = runner.run(&[pkt], 1);
    assert_eq!(stats.transmitted, 1);
    let router = runner
        .router()
        .expect("interpreted runner exposes its router");
    for (i, _) in tenants.iter().enumerate() {
        let fw = router
            .element_as::<IPFilter>(&format!("fw{i}"))
            .expect("filter exists");
        let expected = u64::from(i == 6);
        assert_eq!(
            fw.passed() + fw.dropped(),
            expected,
            "tenant {i} saw foreign traffic"
        );
    }
}

/// Memory capacity enforces the §6 density bounds: a 16 GB host runs
/// 1,000+ ClickOS VMs but only ~25 Linux VMs.
#[test]
fn host_density_bounds() {
    let cfg = ClickConfig::parse("FromNetfront() -> ToNetfront();").unwrap();
    let mut host = Host::new(16 * 1024);
    let mut clickos = 0;
    while host.boot_clickos(&cfg, 0).is_ok() {
        clickos += 1;
        if clickos > 2000 {
            break;
        }
    }
    assert!(
        (1000..=1400).contains(&clickos),
        "16 GB fits ~1,260 ClickOS VMs, got {clickos}"
    );

    let mut host = Host::new(16 * 1024);
    let mut linux = 0;
    while host.boot_linux(0).is_ok() {
        linux += 1;
    }
    assert!((20..=30).contains(&linux), "got {linux}");
}
