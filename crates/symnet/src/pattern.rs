//! Symbolic evaluation of the tcpdump-subset pattern language.
//!
//! `satisfy` splits a symbolic packet into the branches that *match* an
//! expression; `refute` into the branches that *do not*. Branches whose
//! constraints become unsatisfiable are discarded. This is the mechanism
//! behind classifier/filter models and behind flow-specification checks in
//! requirements.

use innet_packet::{
    pattern::{Atom, Dir, PatternExpr},
    IpProto,
};

use crate::{field::Field, packet::SymPacket, value::RangeSet};

fn proto_tcp_udp() -> RangeSet {
    // {6} ∪ {17}: complement-based union of two singletons.
    RangeSet::single(IpProto::Tcp.number() as u64)
        .complement()
        .intersect(&RangeSet::single(IpProto::Udp.number() as u64).complement())
        .complement()
}

fn cidr_set(c: &innet_packet::Cidr) -> RangeSet {
    RangeSet::range(c.first_u32() as u64, c.last_u32() as u64)
}

fn keep_feasible(branches: Vec<SymPacket>) -> Vec<SymPacket> {
    branches.into_iter().filter(|p| p.feasible()).collect()
}

fn constrained(mut pkt: SymPacket, f: Field, set: &RangeSet) -> Option<SymPacket> {
    if pkt.constrain(f, set) {
        Some(pkt)
    } else {
        None
    }
}

fn satisfy_atom(pkt: &SymPacket, atom: &Atom) -> Vec<SymPacket> {
    match atom {
        Atom::True => vec![pkt.clone()],
        Atom::Proto(p) => constrained(
            pkt.clone(),
            Field::Proto,
            &RangeSet::single(p.number() as u64),
        )
        .into_iter()
        .collect(),
        Atom::Net(dir, c) => {
            let set = cidr_set(c);
            match dir {
                Dir::Src => constrained(pkt.clone(), Field::IpSrc, &set)
                    .into_iter()
                    .collect(),
                Dir::Dst => constrained(pkt.clone(), Field::IpDst, &set)
                    .into_iter()
                    .collect(),
                Dir::Either => {
                    // Disjoint split: (src ∈ S) ∪ (src ∉ S ∧ dst ∈ S).
                    // Overlap-free branches keep the branch count bounded
                    // when the same predicate recurs along a path.
                    let mut out = Vec::new();
                    out.extend(constrained(pkt.clone(), Field::IpSrc, &set));
                    out.extend(
                        constrained(pkt.clone(), Field::IpSrc, &set.complement())
                            .and_then(|p| constrained(p, Field::IpDst, &set)),
                    );
                    out
                }
            }
        }
        Atom::Port(dir, p) => satisfy_port(pkt, *dir, &RangeSet::single(*p as u64)),
        Atom::PortRange(dir, lo, hi) => {
            satisfy_port(pkt, *dir, &RangeSet::range(*lo as u64, *hi as u64))
        }
        Atom::Syn => {
            let mut p = pkt.clone();
            if p.constrain_eq(Field::Proto, IpProto::Tcp.number() as u64)
                && p.constrain_eq(Field::TcpSyn, 1)
            {
                vec![p]
            } else {
                vec![]
            }
        }
    }
}

fn satisfy_port(pkt: &SymPacket, dir: Dir, set: &RangeSet) -> Vec<SymPacket> {
    // Port predicates implicitly require TCP or UDP.
    let Some(base) = constrained(pkt.clone(), Field::Proto, &proto_tcp_udp()) else {
        return vec![];
    };
    match dir {
        Dir::Src => constrained(base, Field::SrcPort, set).into_iter().collect(),
        Dir::Dst => constrained(base, Field::DstPort, set).into_iter().collect(),
        Dir::Either => {
            // Disjoint split, as for address predicates.
            let mut out = Vec::new();
            out.extend(constrained(base.clone(), Field::SrcPort, set));
            out.extend(
                constrained(base, Field::SrcPort, &set.complement())
                    .and_then(|p| constrained(p, Field::DstPort, set)),
            );
            out
        }
    }
}

fn refute_atom(pkt: &SymPacket, atom: &Atom) -> Vec<SymPacket> {
    match atom {
        Atom::True => vec![],
        Atom::Proto(p) => constrained(
            pkt.clone(),
            Field::Proto,
            &RangeSet::single(p.number() as u64).complement(),
        )
        .into_iter()
        .collect(),
        Atom::Net(dir, c) => {
            let not_set = cidr_set(c).complement();
            match dir {
                Dir::Src => constrained(pkt.clone(), Field::IpSrc, &not_set)
                    .into_iter()
                    .collect(),
                Dir::Dst => constrained(pkt.clone(), Field::IpDst, &not_set)
                    .into_iter()
                    .collect(),
                Dir::Either => {
                    // ¬(src ∈ S ∨ dst ∈ S) = src ∉ S ∧ dst ∉ S.
                    constrained(pkt.clone(), Field::IpSrc, &not_set)
                        .and_then(|p| constrained(p, Field::IpDst, &not_set))
                        .into_iter()
                        .collect()
                }
            }
        }
        Atom::Port(dir, p) => refute_port(pkt, *dir, &RangeSet::single(*p as u64)),
        Atom::PortRange(dir, lo, hi) => {
            refute_port(pkt, *dir, &RangeSet::range(*lo as u64, *hi as u64))
        }
        Atom::Syn => {
            // ¬(tcp ∧ syn) = ¬tcp ∨ (tcp ∧ ¬syn).
            let mut out = Vec::new();
            out.extend(constrained(
                pkt.clone(),
                Field::Proto,
                &RangeSet::single(IpProto::Tcp.number() as u64).complement(),
            ));
            if let Some(p) = constrained(
                pkt.clone(),
                Field::Proto,
                &RangeSet::single(IpProto::Tcp.number() as u64),
            ) {
                out.extend(constrained(p, Field::TcpSyn, &RangeSet::single(0)));
            }
            out
        }
    }
}

fn refute_port(pkt: &SymPacket, dir: Dir, set: &RangeSet) -> Vec<SymPacket> {
    // ¬(proto ∈ {tcp,udp} ∧ P(port)) = proto ∉ {tcp,udp} ∨ (proto ∈ ∧ ¬P).
    let mut out = Vec::new();
    out.extend(constrained(
        pkt.clone(),
        Field::Proto,
        &proto_tcp_udp().complement(),
    ));
    let Some(base) = constrained(pkt.clone(), Field::Proto, &proto_tcp_udp()) else {
        return out;
    };
    let not_set = set.complement();
    match dir {
        Dir::Src => out.extend(constrained(base, Field::SrcPort, &not_set)),
        Dir::Dst => out.extend(constrained(base, Field::DstPort, &not_set)),
        Dir::Either => {
            // ¬(sp ∈ S ∨ dp ∈ S) = sp ∉ S ∧ dp ∉ S.
            out.extend(
                constrained(base, Field::SrcPort, &not_set)
                    .and_then(|p| constrained(p, Field::DstPort, &not_set)),
            );
        }
    }
    out
}

/// The branches of `pkt` that match `expr`.
pub fn satisfy(pkt: &SymPacket, expr: &PatternExpr) -> Vec<SymPacket> {
    let branches = match expr {
        PatternExpr::Atom(a) => satisfy_atom(pkt, a),
        PatternExpr::And(xs) => {
            let mut branches = vec![pkt.clone()];
            for x in xs {
                branches = branches.iter().flat_map(|b| satisfy(b, x)).collect();
                if branches.is_empty() {
                    break;
                }
            }
            branches
        }
        PatternExpr::Or(xs) => {
            // Disjoint union: a ∨ b ∨ c ≡ a ∪ (¬a ∧ b) ∪ (¬a ∧ ¬b ∧ c).
            // Without this, a branch that satisfies several disjuncts is
            // emitted several times, and repeated evaluation of the same
            // expression along a path multiplies branches exponentially.
            let mut out = Vec::new();
            let mut remaining = vec![pkt.clone()];
            for x in xs {
                out.extend(remaining.iter().flat_map(|r| satisfy(r, x)));
                remaining = remaining.iter().flat_map(|r| refute(r, x)).collect();
                if remaining.is_empty() {
                    break;
                }
            }
            out
        }
        PatternExpr::Not(x) => refute(pkt, x),
    };
    keep_feasible(branches)
}

/// The branches of `pkt` that do *not* match `expr`.
pub fn refute(pkt: &SymPacket, expr: &PatternExpr) -> Vec<SymPacket> {
    let branches = match expr {
        PatternExpr::Atom(a) => refute_atom(pkt, a),
        // ¬(a ∧ b ∧ …) = ¬a ∪ (a ∧ ¬b) ∪ (a ∧ b ∧ ¬c) ∪ … — the
        // disjoint expansion, for the same branch-count reason as Or.
        PatternExpr::And(xs) => {
            let mut out = Vec::new();
            let mut satisfied_prefix = vec![pkt.clone()];
            for x in xs {
                out.extend(satisfied_prefix.iter().flat_map(|r| refute(r, x)));
                satisfied_prefix = satisfied_prefix
                    .iter()
                    .flat_map(|r| satisfy(r, x))
                    .collect();
                if satisfied_prefix.is_empty() {
                    break;
                }
            }
            out
        }
        // ¬(a ∨ b ∨ …) = ¬a ∧ ¬b ∧ …
        PatternExpr::Or(xs) => {
            let mut branches = vec![pkt.clone()];
            for x in xs {
                branches = branches.iter().flat_map(|b| refute(b, x)).collect();
                if branches.is_empty() {
                    break;
                }
            }
            branches
        }
        PatternExpr::Not(x) => satisfy(pkt, x),
    };
    keep_feasible(branches)
}

/// Whether any branch of `pkt` can match `expr`.
pub fn satisfiable(pkt: &SymPacket, expr: &PatternExpr) -> bool {
    !satisfy(pkt, expr).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(s: &str) -> PatternExpr {
        s.parse().unwrap()
    }

    #[test]
    fn satisfy_constrains() {
        let p = SymPacket::unconstrained();
        let out = satisfy(&p, &expr("udp dst port 1500"));
        assert_eq!(out.len(), 1);
        assert!(out[0].provably_eq(Field::Proto, 17));
        assert!(out[0].provably_eq(Field::DstPort, 1500));
    }

    #[test]
    fn satisfy_then_conflict_infeasible() {
        let p = SymPacket::unconstrained();
        let udp = satisfy(&p, &expr("udp")).remove(0);
        assert!(satisfy(&udp, &expr("tcp")).is_empty());
    }

    #[test]
    fn refute_excludes() {
        let p = SymPacket::unconstrained();
        let out = refute(&p, &expr("udp"));
        assert_eq!(out.len(), 1);
        assert!(!out[0].possible(Field::Proto).contains(17));
        assert!(out[0].possible(Field::Proto).contains(6));
    }

    #[test]
    fn either_direction_branches() {
        let p = SymPacket::unconstrained();
        let out = satisfy(&p, &expr("port 53"));
        assert_eq!(out.len(), 2, "src branch and disjoint dst branch");
        // The branches are disjoint: the second excludes src=53.
        assert!(out[0].possible(Field::SrcPort).contains(53));
        assert!(!out[1].possible(Field::SrcPort).contains(53));
        assert!(out[1].possible(Field::DstPort).as_single() == Some(53));
    }

    #[test]
    fn repeated_or_does_not_multiply_branches() {
        // Evaluating the same disjunction repeatedly must not grow the
        // branch set (the Figure 10 scaling depends on this).
        let p = SymPacket::unconstrained();
        let e = expr("tcp src port 80 or tcp dst port 80");
        let mut branches = satisfy(&p, &e);
        for _ in 0..5 {
            branches = branches.iter().flat_map(|b| satisfy(b, &e)).collect();
        }
        assert!(branches.len() <= 4, "{}", branches.len());
    }

    #[test]
    fn or_branches_and_not() {
        let p = SymPacket::unconstrained();
        let out = satisfy(&p, &expr("tcp or udp"));
        assert_eq!(out.len(), 2);
        let out = satisfy(&p, &expr("not (tcp or udp)"));
        assert_eq!(out.len(), 1);
        assert!(!out[0].possible(Field::Proto).contains(6));
        assert!(!out[0].possible(Field::Proto).contains(17));
        assert!(out[0].possible(Field::Proto).contains(1));
    }

    #[test]
    fn net_predicates() {
        let p = SymPacket::unconstrained();
        let out = satisfy(&p, &expr("dst net 10.0.0.0/8"));
        assert_eq!(out.len(), 1);
        let dst = out[0].possible(Field::IpDst);
        assert!(dst.contains(u32::from(std::net::Ipv4Addr::new(10, 1, 2, 3)) as u64));
        assert!(!dst.contains(u32::from(std::net::Ipv4Addr::new(11, 0, 0, 0)) as u64));
    }

    #[test]
    fn satisfy_refute_partition() {
        // For a deterministic expression, satisfy + refute cover the
        // packet space: a concrete witness from either side evaluates
        // consistently with the concrete matcher.
        let p = SymPacket::unconstrained();
        let e = expr("udp dst portrange 1000-2000");
        let sat = satisfy(&p, &e);
        let unsat = refute(&p, &e);
        assert!(!sat.is_empty() && !unsat.is_empty());
        for b in &sat {
            assert!(b.possible(Field::Proto).contains(17));
        }
    }

    #[test]
    fn port_requires_tcp_or_udp() {
        let p = SymPacket::unconstrained();
        let mut q = p.clone();
        q.constrain_eq(Field::Proto, 1); // ICMP.
        assert!(satisfy(&q, &expr("dst port 80")).is_empty());
    }

    #[test]
    fn refute_true_is_empty() {
        let p = SymPacket::unconstrained();
        assert!(refute(&p, &PatternExpr::any()).is_empty());
    }

    #[test]
    fn syn_satisfy_and_refute() {
        let p = SymPacket::unconstrained();
        let sat = satisfy(&p, &expr("tcp syn"));
        assert_eq!(sat.len(), 1);
        assert!(sat[0].provably_eq(Field::TcpSyn, 1));
        // "tcp syn" is And(tcp, syn); ¬(a∧b) expands to ¬a ∨ ¬b, and ¬syn
        // itself branches — overlapping branches are fine for
        // exists-semantics. Every branch must avoid (tcp ∧ syn).
        let unsat = refute(&p, &expr("tcp syn"));
        assert!(!unsat.is_empty());
        for b in &unsat {
            let tcp_possible = b.possible(Field::Proto).contains(6);
            let syn_possible = b.possible(Field::TcpSyn).contains(1);
            assert!(
                !(tcp_possible
                    && syn_possible
                    && b.provably_eq(Field::TcpSyn, 1)
                    && b.provably_eq(Field::Proto, 6))
            );
        }
    }
}
