//! Log-linear histograms: bounded-memory latency distributions with
//! monotone quantiles and an exact, sum-preserving total.
//!
//! Values are bucketed HDR-style: each power-of-two octave is split into
//! [`SUB`] linear sub-buckets, so relative error is bounded by `1/SUB`
//! (6.25%) at any magnitude while the whole `u64` range fits in under a
//! thousand buckets. `count`, `sum`, `min`, and `max` are tracked
//! exactly, so the recorded mass is preserved bit-for-bit even though
//! individual samples are quantized.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sub-buckets per power-of-two octave (must be a power of two).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index for a value: exact below `SUB`, log-linear above.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // 2^e <= v < 2^(e+1), e >= SUB_BITS
        let shift = e - SUB_BITS;
        let sub = (v >> shift) & (SUB - 1);
        (SUB + (shift as u64) * SUB + sub) as usize
    }
}

/// Largest value a bucket can hold (the quantile representative, before
/// clamping to the observed `[min, max]`).
fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let shift = (idx - SUB) / SUB;
        let sub = (idx - SUB) % SUB;
        // Upper bound of [ (SUB+sub) << shift, (SUB+sub+1) << shift ).
        let lo = (SUB + sub) << shift;
        let width = 1u64 << shift;
        lo + (width - 1)
    }
}

#[derive(Debug)]
struct Inner {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// A point-in-time view of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of every recorded sample (not quantized).
    pub sum: u128,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A log-linear latency histogram.
///
/// Handles are cheap clones of shared state. Record wall-clock spans with
/// [`Histogram::span`] and virtual-time or pre-measured latencies with
/// [`Histogram::observe`].
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<Inner>>);

impl Histogram {
    /// A fresh, unregistered, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        let mut h = self.0.lock().expect("histogram poisoned");
        h.counts[bucket_index(v)] += 1;
        h.count += 1;
        h.sum += v as u128;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// Starts a wall-clock span; the elapsed nanoseconds are recorded
    /// when the guard drops.
    pub fn span(&self) -> SpanGuard {
        SpanGuard {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram poisoned").count
    }

    /// The value at quantile `q` in `[0, 1]`, or 0 when empty.
    ///
    /// Quantiles are monotone in `q` and always within the observed
    /// `[min, max]`; `quantile(1.0)` is the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let h = self.0.lock().expect("histogram poisoned");
        Histogram::quantile_locked(&h, q)
    }

    fn quantile_locked(h: &Inner, q: f64) -> u64 {
        if h.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
        let mut seen = 0u64;
        for (idx, &c) in h.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket representative into the exactly
                // tracked range so quantiles never exceed the true max
                // (nor undershoot the true min), keeping p50 <= p95 <=
                // p99 <= max monotone even within one bucket.
                return bucket_upper(idx).clamp(h.min, h.max);
            }
        }
        h.max
    }

    /// A consistent point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0.lock().expect("histogram poisoned");
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
            p50: Histogram::quantile_locked(&h, 0.50),
            p95: Histogram::quantile_locked(&h, 0.95),
            p99: Histogram::quantile_locked(&h, 0.99),
        }
    }
}

/// Drop guard returned by [`Histogram::span`]: records the elapsed
/// wall-clock nanoseconds into the histogram when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Histogram,
    start: Instant,
}

impl SpanGuard {
    /// Ends the span early, returning the recorded nanoseconds.
    pub fn finish(self) -> u64 {
        self.start.elapsed().as_nanos() as u64
        // Drop records it.
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_u64_in_order() {
        // Exact region, boundaries, and monotone indices.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        let mut last = 0usize;
        for shift in 0..60 {
            let v = 17u64 << shift;
            let idx = bucket_index(v);
            assert!(idx >= last, "indices monotone at {v}");
            assert!(idx < BUCKETS);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        for &v in &[0u64, 1, 15, 16, 17, 100, 1000, 1 << 20, u64::MAX / 3] {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "upper({idx}) >= {v}");
            // Relative error of the representative is bounded.
            if v >= SUB {
                let err = (bucket_upper(idx) - v) as f64 / v as f64;
                assert!(err <= 1.0 / SUB as f64, "err {err} at {v}");
            }
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, (1..=1000u128).sum::<u128>());
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // 6.25% quantization error budget.
        assert!((470..=540).contains(&s.p50), "p50 {}", s.p50);
        assert!((900..=1000).contains(&s.p95), "p95 {}", s.p95);
        assert!((950..=1000).contains(&s.p99), "p99 {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(1_000);
        }
        let s = h.snapshot();
        // All quantiles clamp to the exact observed value.
        assert_eq!((s.p50, s.p95, s.p99, s.max), (1_000, 1_000, 1_000, 1_000));
        assert_eq!(s.sum, 100_000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn span_records_elapsed() {
        let h = Histogram::new();
        {
            let _g = h.span();
            std::hint::black_box(0);
        }
        assert_eq!(h.count(), 1);
    }
}
