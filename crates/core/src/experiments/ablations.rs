//! Ablations of the design choices the paper argues for (§2, §5):
//! consolidation, on-the-fly instantiation, and statically-gated
//! sandboxing. Each ablation removes one mechanism and quantifies what
//! it was buying.

use innet_click::ClickConfig;
use innet_controller::{table1_catalog, ClientRequest, Controller};
use innet_packet::{Packet, PacketBuilder};
use innet_platform::{
    calib::{boot_latency_ns, vm_mem_mb, VmTimingKind},
    consolidated_config, plain_firewall, sandboxed_firewall, NativeRunner,
};
use innet_symnet::{RequesterClass, Verdict};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// Ablation 1: consolidation off — one VM per tenant.
// ---------------------------------------------------------------------------

/// Consolidation ablation result.
#[derive(Debug, Clone, Copy)]
pub struct ConsolidationAblation {
    /// Tenants in the comparison.
    pub tenants: usize,
    /// Throughput with all tenants consolidated in one VM (pps).
    pub consolidated_pps: f64,
    /// Throughput with one VM per tenant, round-robined on the core (pps).
    pub per_vm_pps: f64,
    /// Memory for the consolidated deployment (MB).
    pub consolidated_mem_mb: u64,
    /// Memory for the per-tenant deployment (MB).
    pub per_vm_mem_mb: u64,
}

fn tenant_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 70, (i / 250) as u8, (1 + i % 250) as u8)
}

fn tenant_traffic(tenants: usize, frame: usize) -> Vec<Packet> {
    (0..256)
        .map(|i| {
            PacketBuilder::udp()
                .src(Ipv4Addr::new(8, 8, 8, 8), 1000 + (i % 512) as u16)
                .dst(tenant_addr(i % tenants), 80)
                .pad_to(frame)
                .build()
        })
        .collect()
}

/// Measures consolidation on vs off for `tenants` stateless tenants.
pub fn consolidation_ablation(tenants: usize, rounds: usize) -> ConsolidationAblation {
    let addrs: Vec<Ipv4Addr> = (0..tenants).map(tenant_addr).collect();
    let pkts = tenant_traffic(tenants, 512);

    // Consolidated: one VM, demux + per-tenant firewalls.
    let mut consolidated = NativeRunner::new(&consolidated_config(&addrs)).expect("valid");
    consolidated.run(&pkts, 1);
    let c_stats = consolidated.run(&pkts, rounds);

    // Per-tenant: one tiny VM each; the vswitch steers by address, so each
    // VM only sees (and pays for) its own packets.
    let mut per_vm: Vec<NativeRunner> = addrs
        .iter()
        .map(|a| {
            let cfg = ClickConfig::parse(&format!(
                "FromNetfront() -> IPFilter(allow udp dst host {a}, allow tcp dst host {a}) \
                 -> ToNetfront();"
            ))
            .expect("valid");
            NativeRunner::new(&cfg).expect("instantiates")
        })
        .collect();
    // Pre-split traffic per tenant (the vswitch demux, charged to the host).
    let mut per_tenant_pkts: Vec<Vec<Packet>> = vec![Vec::new(); tenants];
    for p in &pkts {
        let dst = p.ipv4().expect("built packets are IPv4").dst();
        let idx = addrs
            .iter()
            .position(|&a| a == dst)
            .expect("tenant traffic");
        per_tenant_pkts[idx].push(p.clone());
    }
    let start = std::time::Instant::now();
    let mut packets = 0u64;
    for _ in 0..rounds {
        for (r, pp) in per_vm.iter_mut().zip(per_tenant_pkts.iter()) {
            if pp.is_empty() {
                continue;
            }
            let s = r.run(pp, 1);
            packets += s.packets;
        }
    }
    let elapsed = start.elapsed().as_nanos().max(1) as f64;

    ConsolidationAblation {
        tenants,
        consolidated_pps: c_stats.pps(),
        per_vm_pps: packets as f64 / (elapsed / 1e9),
        consolidated_mem_mb: vm_mem_mb(VmTimingKind::ClickOs),
        per_vm_mem_mb: tenants as u64 * vm_mem_mb(VmTimingKind::ClickOs),
    }
}

// ---------------------------------------------------------------------------
// Ablation 2: on-the-fly off — pre-boot everything.
// ---------------------------------------------------------------------------

/// On-the-fly ablation result.
#[derive(Debug, Clone, Copy)]
pub struct OnTheFlyAblation {
    /// Registered tenants.
    pub registered: usize,
    /// Concurrently active tenants.
    pub active: usize,
    /// Memory if every registered tenant has a VM booted in advance (MB).
    pub preboot_mem_mb: u64,
    /// Memory with on-the-fly boot (VMs only for active tenants) (MB).
    pub onthefly_mem_mb: u64,
    /// First-packet latency penalty paid by on-the-fly boot (ms, at the
    /// current active count).
    pub first_packet_penalty_ms: f64,
}

/// Computes the memory/latency trade of on-the-fly instantiation (the
/// paper: "we only have to ensure that the platform copes with the
/// maximum number of concurrent clients at any given instant").
pub fn onthefly_ablation(registered: usize, active: usize) -> OnTheFlyAblation {
    OnTheFlyAblation {
        registered,
        active,
        preboot_mem_mb: registered as u64 * vm_mem_mb(VmTimingKind::ClickOs),
        onthefly_mem_mb: active as u64 * vm_mem_mb(VmTimingKind::ClickOs),
        first_packet_penalty_ms: boot_latency_ns(VmTimingKind::ClickOs, active) as f64 / 1e6,
    }
}

// ---------------------------------------------------------------------------
// Ablation 3: static checking off — sandbox everything.
// ---------------------------------------------------------------------------

/// Sandbox-gating ablation result.
#[derive(Debug, Clone, Copy)]
pub struct SandboxAblation {
    /// Catalog size (the Table 1 middleboxes).
    pub catalog: usize,
    /// Catalog entries a third party may deploy at all.
    pub deployable: usize,
    /// Modules that actually need a sandbox under static gating.
    pub need_sandbox: usize,
    /// Measured throughput ratio sandboxed/plain for a representative
    /// module at 64 B frames (the worst case of Figure 11).
    pub sandbox_throughput_ratio: f64,
}

/// Quantifies what static checking buys over the status quo of
/// sandboxing everything (paper §7.2: "sandboxing is not needed in the
/// first place since we can statically check whether the processing is
/// safe for most client configurations").
pub fn sandbox_ablation(rounds: usize) -> SandboxAblation {
    // How many Table-1 middleboxes a third party could deploy need a
    // sandbox when statically gated (rejected ones excluded — they run
    // nowhere under either regime).
    let assigned = Ipv4Addr::new(203, 0, 113, 10);
    let owner = Ipv4Addr::new(172, 16, 15, 133);
    let owner2 = Ipv4Addr::new(172, 16, 15, 134);
    let peer = Ipv4Addr::new(198, 51, 100, 1);
    let registry = innet_click::Registry::standard();
    let mut deployable = 0usize;
    let mut need_sandbox = 0usize;
    for (_name, cfg) in table1_catalog(assigned, owner, owner2, peer) {
        let verdict = innet_symnet::check_module(
            &cfg,
            &innet_symnet::SecurityContext {
                assigned_addr: assigned,
                registered: vec![owner, owner2, peer],
                class: RequesterClass::ThirdParty,
            },
            &registry,
        )
        .expect("catalog is modellable")
        .verdict;
        match verdict {
            Verdict::Safe => deployable += 1,
            Verdict::SafeWithSandbox => {
                deployable += 1;
                need_sandbox += 1;
            }
            Verdict::Reject => {}
        }
    }

    // The runtime cost a statically-proven module avoids (64 B frames).
    let module = Ipv4Addr::new(203, 0, 113, 10);
    let white = Ipv4Addr::new(198, 51, 100, 1);
    let pkts: Vec<Packet> = (0..256)
        .map(|i| {
            PacketBuilder::udp()
                .src(
                    Ipv4Addr::new(8, 8, (i / 250) as u8, (1 + i % 250) as u8),
                    40_000 + i as u16,
                )
                .dst(module, 1500)
                .pad_to(64)
                .build()
        })
        .collect();
    let mut plain = NativeRunner::new(&plain_firewall()).expect("valid");
    let mut boxed = NativeRunner::new(&sandboxed_firewall(module, white)).expect("valid");
    plain.run(&pkts, 2);
    boxed.run(&pkts, 2);
    let p = plain.run(&pkts, rounds);
    let b = boxed.run(&pkts, rounds);

    SandboxAblation {
        catalog: 12,
        deployable,
        need_sandbox,
        sandbox_throughput_ratio: b.pps() / p.pps(),
    }
}

/// End-to-end check that static gating really skips the sandbox for a
/// provably safe third-party module while applying it to an opaque one.
pub fn sandbox_gating_demo() -> (bool, bool) {
    let mut ctl = Controller::new(innet_topology::Topology::figure3());
    ctl.register_client(
        "t",
        RequesterClass::ThirdParty,
        vec![Ipv4Addr::new(198, 51, 100, 1)],
    );
    let safe = ctl
        .deploy(
            "t",
            ClientRequest::parse("stock a: reverse-proxy").expect("parses"),
        )
        .expect("deployable");
    let opaque = ctl
        .deploy(
            "t",
            ClientRequest::parse("stock b: x86-vm").expect("parses"),
        )
        .expect("deployable");
    (safe.sandboxed, opaque.sandboxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_saves_two_orders_of_memory() {
        let a = consolidation_ablation(64, 3);
        assert_eq!(a.per_vm_mem_mb, 64 * a.consolidated_mem_mb);
        // Throughput stays within the same ballpark either way.
        let ratio = a.consolidated_pps / a.per_vm_pps;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "consolidated {} vs per-VM {}",
            a.consolidated_pps,
            a.per_vm_pps
        );
    }

    #[test]
    fn onthefly_memory_scales_with_active_not_registered() {
        let a = onthefly_ablation(1000, 50);
        assert_eq!(a.preboot_mem_mb / a.onthefly_mem_mb, 20);
        // The penalty is a one-time ~tens-of-ms boot.
        assert!(a.first_packet_penalty_ms < 150.0, "{a:?}");
    }

    #[test]
    fn static_gating_avoids_most_sandboxes() {
        let a = sandbox_ablation(10);
        // Of the deployable third-party catalog, only the tunnel and the
        // x86 VM need runtime enforcement.
        assert_eq!(a.need_sandbox, 2, "{a:?}");
        assert_eq!(a.deployable, 8, "12 minus the 4 rejected transit boxes");
        // The ratio itself is measured by the bench; in a debug test we
        // only require it to be a sane fraction.
        assert!((0.2..=1.3).contains(&a.sandbox_throughput_ratio), "{a:?}");
    }

    #[test]
    fn gating_end_to_end() {
        let (safe_sandboxed, opaque_sandboxed) = sandbox_gating_demo();
        assert!(!safe_sandboxed);
        assert!(opaque_sandboxed);
    }
}
