//! Figure 5: ClickOS reaction time for the first 15 packets of 100
//! concurrent flows (plus the Linux-VM baseline from §6).

use innet::experiments::fig05_reaction::{reaction_time, GuestKind, ReactionParams};
use innet_bench::{quick_mode, Report};

fn main() {
    let flows = if quick_mode() { 25 } else { 100 };
    let mut r = Report::new(
        "fig05_reaction_time",
        "Figure 5: ping RTT (ms) for the first 15 probes of concurrent flows",
    );

    let series = reaction_time(&ReactionParams {
        flows,
        kind: GuestKind::ClickOs,
        ..Default::default()
    });
    r.line(&format!(
        "{:>6} {:>10} {:>10} {:>10}",
        "flow", "probe1", "probe2", "probe15"
    ));
    for s in series.iter().step_by((flows / 10).max(1)) {
        r.line(&format!(
            "{:>6} {:>10.2} {:>10.3} {:>10.3}",
            s.flow, s.rtts_ms[0], s.rtts_ms[1], s.rtts_ms[14]
        ));
    }
    let avg_first: f64 = series.iter().map(|s| s.rtts_ms[0]).sum::<f64>() / flows as f64;
    let max_first = series.iter().map(|s| s.rtts_ms[0]).fold(0.0f64, f64::max);
    r.blank();
    r.line(&format!(
        "ClickOS: first-probe RTT avg {avg_first:.1} ms, max {max_first:.1} ms \
         (paper: ~50 ms avg, ~100 ms at flow 100)"
    ));

    let linux = reaction_time(&ReactionParams {
        flows: flows.min(20),
        kind: GuestKind::Linux,
        ..Default::default()
    });
    let l_avg: f64 = linux.iter().map(|s| s.rtts_ms[0]).sum::<f64>() / linux.len() as f64;
    r.line(&format!(
        "Linux VM baseline: first-probe RTT avg {l_avg:.0} ms (paper: ~700 ms)"
    ));
    r.finish();
}
