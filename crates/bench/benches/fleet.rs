//! Fleet fabric: controller placement latency over a generated
//! thousand-node capacitated topology, plus live-migration downtime
//! through the multi-host switch fabric.
//!
//! Two measurements, recorded to `BENCH_fleet.json`:
//!
//! * **placement** — a cold controller over
//!   [`innet::topology::generate_fleet`] admits a corpus of requests
//!   (stock templates, randomized novel chains, and a 50/50 mix), each
//!   under a unique module name so the verdict cache never replays; the
//!   per-deploy wall time is the end-to-end admission + ranked-placement
//!   latency on a ~400-platform topology.
//! * **migration** — a [`innet::platform::Fleet`] over the same topology
//!   boots tenants on their home platforms, then live-migrates each to a
//!   neighbouring platform; the recorded downtime is the suspend →
//!   transfer → resume window during which the fleet buffers the
//!   tenant's traffic.

use std::net::Ipv4Addr;
use std::time::Instant;

use innet::click::ClickConfig;
use innet::controller::{ClientRequest, Controller};
use innet::packet::PacketBuilder;
use innet::prelude::*;
use innet::topology::{generate_fleet, FleetParams, Topology};
use innet_bench::{quick_mode, FleetSnapshot, Report};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Stock templates: accepted pipelines a fleet deploys over and over
/// under fresh module names. Every chain ends by rewriting the
/// destination to the tenant's registered address (the Figure 4 idiom),
/// which satisfies the ownership rule for Client-class requesters.
const STOCK: &[&str] = &[
    "FromNetfront() -> CheckIPHeader() -> IPFilter(allow udp dst port 1500) \
     -> Counter() -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> ToNetfront();",
    "FromNetfront() -> IPFilter(allow tcp dst port 80) -> DecIPTTL() \
     -> Counter() -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> ToNetfront();",
    "FromNetfront() -> IPFilter(allow udp dst port 53) -> SetTOS(10) \
     -> Counter() -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> ToNetfront();",
];

/// A novel one-off chain with randomized arguments, same delivery rule.
fn novel_config(rng: &mut StdRng) -> String {
    let tos = rng.gen_range(0u32..64);
    let paint = rng.gen_range(0u32..256);
    let port = rng.gen_range(1u32..1024);
    format!(
        "FromNetfront() -> IPFilter(allow udp dst port {port}) -> SetTOS({tos}) \
         -> Paint({paint}) -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> ToNetfront();"
    )
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Drives `deploys` requests of the given mix through a cold controller
/// over `topo` and returns the sorted per-deploy latencies.
fn placement_storm(topo: &Topology, scenario: &str, deploys: usize, seed: u64) -> Vec<u64> {
    let mut c = Controller::new(topo.clone());
    c.register_client(
        "tenant",
        RequesterClass::Client,
        vec![Ipv4Addr::new(172, 16, 15, 133)],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(deploys);
    for i in 0..deploys {
        let stock = match scenario {
            "stock" => true,
            "novel" => false,
            _ => i % 2 == 0,
        };
        let config = if stock {
            STOCK[rng.gen_range(0..STOCK.len())].to_string()
        } else {
            novel_config(&mut rng)
        };
        let req = ClientRequest::parse(&format!("module {scenario}{i}:\n{config}"))
            .expect("corpus configs parse");
        let t = Instant::now();
        let outcome = c.deploy("tenant", req);
        latencies.push(t.elapsed().as_nanos() as u64);
        assert!(outcome.is_ok(), "fleet corpus must admit: {outcome:?}");
    }
    latencies.sort_unstable();
    latencies
}

/// Boots `tenants` stateful VMs across the fleet's platforms, migrates
/// each to the next platform over the fabric, and returns the sorted
/// downtimes.
fn migration_run(topo: &Topology, tenants: usize) -> Vec<u64> {
    let mut fleet = Fleet::new(topo);
    let platforms = fleet.platforms();
    assert!(platforms.len() >= 2, "fleet topologies have many platforms");
    let config = ClickConfig::parse(
        "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
    )
    .expect("entry config parses");
    let addrs: Vec<Ipv4Addr> = (0..tenants)
        .map(|i| Ipv4Addr::new(203, 0, 113, 10 + i as u8))
        .collect();
    for (i, &addr) in addrs.iter().enumerate() {
        let home = platforms[i % platforms.len()];
        fleet
            .register(
                home,
                ClientEntry {
                    addr,
                    config: config.clone(),
                    stateful: true,
                },
            )
            .expect("home platform exists");
    }
    // One driver timeline: the first packet of each flow boots its VM on
    // the fly at t=0; once every boot has completed, each tenant
    // live-migrates one platform over.
    let mut driver = FleetDriver::new(fleet).until(120_000_000_000);
    for (i, &addr) in addrs.iter().enumerate() {
        let pkt = PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 9000 + i as u16)
            .dst(addr, 1500)
            .build();
        let to = platforms[(i + 1) % platforms.len()];
        driver = driver.inject(0, pkt).migrate(5_000_000_000, addr, to);
    }
    let run = driver.run();
    assert_eq!(run.errors, 0, "every tenant VM is migratable");
    let mut downtimes: Vec<u64> = run
        .fleet
        .migrations()
        .iter()
        .map(|r| r.downtime_ns)
        .collect();
    assert_eq!(downtimes.len(), tenants, "every migration completes");
    downtimes.sort_unstable();
    downtimes
}

fn main() {
    let (params, deploys, tenants) = if quick_mode() {
        (
            FleetParams {
                pops: 20,
                platforms_per_pop: 2,
                clients_per_pop: 1,
                seed: 42,
            },
            24,
            4,
        )
    } else {
        (FleetParams::default(), 200, 16)
    };
    let topo = generate_fleet(&params);
    let nodes = topo.nodes.len() as u64;
    let platforms = topo.platforms().len() as u64;

    let mut r = Report::new(
        "fleet",
        "Fleet fabric: placement latency and live-migration downtime",
    );
    r.line(&format!(
        "generated topology: {nodes} nodes, {platforms} platforms (seed {})",
        params.seed
    ));
    r.blank();
    r.line(&format!(
        "{:>20} {:>10} {:>14} {:>14}",
        "scenario", "deploys", "place p50 (us)", "place p99 (us)"
    ));

    let mut snap = FleetSnapshot::new("fleet");
    for scenario in ["stock", "novel", "mixed-stock-novel"] {
        let lat = placement_storm(&topo, scenario, deploys, 0x5702_2015);
        let p50 = percentile(&lat, 0.50);
        let p99 = percentile(&lat, 0.99);
        r.line(&format!(
            "{:>20} {:>10} {:>14.1} {:>14.1}",
            scenario,
            deploys,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3
        ));
        let (migrations, d50, d99) = if scenario == "mixed-stock-novel" {
            let downtimes = migration_run(&topo, tenants);
            (
                downtimes.len() as u64,
                percentile(&downtimes, 0.50),
                percentile(&downtimes, 0.99),
            )
        } else {
            (0, 0, 0)
        };
        snap.row(
            scenario,
            nodes,
            platforms,
            deploys as u64,
            percentile(&lat, 0.50) as f64,
            percentile(&lat, 0.99) as f64,
            migrations,
            d50 as f64,
            d99 as f64,
        );
        if migrations > 0 {
            r.blank();
            r.line(&format!(
                "live migration over the fabric: {migrations} tenants, downtime p50 {:.1} ms, \
                 p99 {:.1} ms",
                d50 as f64 / 1e6,
                d99 as f64 / 1e6
            ));
        }
    }
    r.finish();
    snap.write();
}
