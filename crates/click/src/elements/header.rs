//! Header manipulation elements: validity checks, TTL, field setters,
//! stripping and Ethernet encapsulation.

use std::any::Any;
use std::net::Ipv4Addr;

use innet_packet::{EtherType, MacAddr, Packet, ETHER_HDR_LEN};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// `CheckIPHeader()` — passes well-formed IPv4 packets (version, length,
/// checksum) and drops the rest.
#[derive(Debug, Default)]
pub struct CheckIPHeader {
    dropped: u64,
}

impl CheckIPHeader {
    /// Creates a checker.
    pub fn new() -> CheckIPHeader {
        CheckIPHeader::default()
    }

    /// Packets dropped as malformed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for CheckIPHeader {
    fn class_name(&self) -> &'static str {
        "CheckIPHeader"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let ok = pkt
            .ipv4()
            .map(|ip| ip.version() == 4 && ip.verify_checksum())
            .unwrap_or(false);
        if ok {
            out.push(0, pkt);
        } else {
            self.dropped += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `MarkIPHeader([OFFSET])` — records where the IPv4 header starts
/// (default: immediately after Ethernet).
#[derive(Debug)]
pub struct MarkIPHeader {
    offset: usize,
}

impl MarkIPHeader {
    /// Parses `MarkIPHeader([OFFSET])`.
    pub fn from_args(args: &ConfigArgs) -> Result<MarkIPHeader, ElementError> {
        args.expect_len_range(0, 1)?;
        Ok(MarkIPHeader {
            offset: args.parse_or(0, ETHER_HDR_LEN)?,
        })
    }
}

impl Element for MarkIPHeader {
    fn class_name(&self) -> &'static str {
        "MarkIPHeader"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        pkt.meta.l3_offset = Some(self.offset);
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `DecIPTTL()` — decrements the TTL, fixing the checksum; packets whose
/// TTL would reach zero are dropped (a router would emit ICMP time
/// exceeded; we count instead).
#[derive(Debug, Default)]
pub struct DecIPTTL {
    expired: u64,
}

impl DecIPTTL {
    /// Creates a TTL decrementer.
    pub fn new() -> DecIPTTL {
        DecIPTTL::default()
    }

    /// Packets dropped because the TTL expired.
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

impl Element for DecIPTTL {
    fn class_name(&self) -> &'static str {
        "DecIPTTL"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let Ok(mut ip) = pkt.ipv4_mut() else {
            self.expired += 1;
            return;
        };
        let ttl = ip.ttl();
        if ttl <= 1 {
            self.expired += 1;
            return;
        }
        ip.set_ttl(ttl - 1);
        ip.update_checksum();
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `SetIPSrc(ADDR)` — overwrites the IPv4 source address.
#[derive(Debug)]
pub struct SetIPSrc {
    addr: Ipv4Addr,
}

impl SetIPSrc {
    /// Parses `SetIPSrc(ADDR)`.
    pub fn from_args(args: &ConfigArgs) -> Result<SetIPSrc, ElementError> {
        args.expect_len(1)?;
        Ok(SetIPSrc {
            addr: args.addr_at(0)?,
        })
    }

    /// The configured address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }
}

impl Element for SetIPSrc {
    fn class_name(&self) -> &'static str {
        "SetIPSrc"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        if let Ok(mut ip) = pkt.ipv4_mut() {
            ip.set_src(self.addr);
            ip.update_checksum();
        }
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `SetIPDst(ADDR)` — overwrites the IPv4 destination address.
#[derive(Debug)]
pub struct SetIPDst {
    addr: Ipv4Addr,
}

impl SetIPDst {
    /// Parses `SetIPDst(ADDR)`.
    pub fn from_args(args: &ConfigArgs) -> Result<SetIPDst, ElementError> {
        args.expect_len(1)?;
        Ok(SetIPDst {
            addr: args.addr_at(0)?,
        })
    }

    /// The configured address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }
}

impl Element for SetIPDst {
    fn class_name(&self) -> &'static str {
        "SetIPDst"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        if let Ok(mut ip) = pkt.ipv4_mut() {
            ip.set_dst(self.addr);
            ip.update_checksum();
        }
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `SetTOS(VALUE)` — overwrites the DSCP/ECN byte (used by traffic
/// prioritization configurations).
#[derive(Debug)]
pub struct SetTOS {
    tos: u8,
}

impl SetTOS {
    /// Parses `SetTOS(VALUE)`.
    pub fn from_args(args: &ConfigArgs) -> Result<SetTOS, ElementError> {
        args.expect_len(1)?;
        Ok(SetTOS {
            tos: args.parse_at(0)?,
        })
    }
}

impl Element for SetTOS {
    fn class_name(&self) -> &'static str {
        "SetTOS"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        if let Ok(mut ip) = pkt.ipv4_mut() {
            ip.set_tos(self.tos);
            ip.update_checksum();
        }
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `Strip(N)` — removes N bytes from the front of the frame.
#[derive(Debug)]
pub struct Strip {
    n: usize,
    underflow: u64,
}

impl Strip {
    /// Parses `Strip(N)`.
    pub fn from_args(args: &ConfigArgs) -> Result<Strip, ElementError> {
        args.expect_len(1)?;
        Ok(Strip {
            n: args.parse_at(0)?,
            underflow: 0,
        })
    }
}

impl Element for Strip {
    fn class_name(&self) -> &'static str {
        "Strip"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        if pkt.pop_front(self.n).is_ok() {
            out.push(0, pkt);
        } else {
            self.underflow += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `EtherEncap(ETHERTYPE, SRC, DST)` — prepends an Ethernet header.
///
/// The ethertype may be decimal or `0x`-prefixed hex.
#[derive(Debug)]
pub struct EtherEncap {
    ethertype: EtherType,
    src: MacAddr,
    dst: MacAddr,
}

fn parse_mac(s: &str) -> Option<MacAddr> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 6 {
        return None;
    }
    let mut m = [0u8; 6];
    for (i, p) in parts.iter().enumerate() {
        m[i] = u8::from_str_radix(p, 16).ok()?;
    }
    Some(MacAddr(m))
}

impl EtherEncap {
    /// Parses `EtherEncap(ETHERTYPE, SRC, DST)`.
    pub fn from_args(args: &ConfigArgs) -> Result<EtherEncap, ElementError> {
        let bad = |message: String| ElementError::BadArgs {
            class: "EtherEncap",
            message,
        };
        args.expect_len(3)?;
        let et_s = args.str_at(0)?;
        let et = if let Some(hex) = et_s.strip_prefix("0x") {
            u16::from_str_radix(hex, 16).map_err(|_| bad(format!("bad ethertype '{et_s}'")))?
        } else {
            et_s.parse()
                .map_err(|_| bad(format!("bad ethertype '{et_s}'")))?
        };
        let src = parse_mac(args.str_at(1)?)
            .ok_or_else(|| bad(format!("bad MAC '{}'", args.str_at(1).unwrap_or(""))))?;
        let dst = parse_mac(args.str_at(2)?)
            .ok_or_else(|| bad(format!("bad MAC '{}'", args.str_at(2).unwrap_or(""))))?;
        Ok(EtherEncap {
            ethertype: EtherType(et),
            src,
            dst,
        })
    }
}

impl Element for EtherEncap {
    fn class_name(&self) -> &'static str {
        "EtherEncap"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        let mut hdr = [0u8; ETHER_HDR_LEN];
        hdr[0..6].copy_from_slice(&self.dst.0);
        hdr[6..12].copy_from_slice(&self.src.0);
        hdr[12..14].copy_from_slice(&self.ethertype.0.to_be_bytes());
        pkt.push_front(&hdr);
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn check_ip_header_accepts_valid() {
        let mut el = CheckIPHeader::new();
        let mut s = VecSink::new();
        el.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 1);
    }

    #[test]
    fn check_ip_header_drops_corrupt() {
        let mut pkt = PacketBuilder::udp().build();
        pkt.bytes_mut()[20] ^= 0xff; // Corrupt a header byte.
        let mut el = CheckIPHeader::new();
        let mut s = VecSink::new();
        el.push(0, pkt, &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
        assert_eq!(el.dropped(), 1);
    }

    #[test]
    fn dec_ttl_decrements_and_fixes_checksum() {
        let mut el = DecIPTTL::new();
        let mut s = VecSink::new();
        el.push(
            0,
            PacketBuilder::udp().ttl(64).build(),
            &Context::default(),
            &mut s,
        );
        let out = s.only(0).unwrap();
        assert_eq!(out.ipv4().unwrap().ttl(), 63);
        assert!(out.ipv4().unwrap().verify_checksum());
    }

    #[test]
    fn dec_ttl_expires() {
        let mut el = DecIPTTL::new();
        let mut s = VecSink::new();
        el.push(
            0,
            PacketBuilder::udp().ttl(1).build(),
            &Context::default(),
            &mut s,
        );
        assert!(s.pushed.is_empty());
        assert_eq!(el.expired(), 1);
    }

    #[test]
    fn set_ip_dst_rewrites() {
        let args = ConfigArgs::parse("SetIPDst", "172.16.15.133");
        let mut el = SetIPDst::from_args(&args).unwrap();
        let mut s = VecSink::new();
        el.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        let out = s.only(0).unwrap();
        assert_eq!(out.ipv4().unwrap().dst(), Ipv4Addr::new(172, 16, 15, 133));
        assert!(out.ipv4().unwrap().verify_checksum());
    }

    #[test]
    fn strip_and_ether_encap_roundtrip() {
        let pkt = PacketBuilder::udp().payload(b"data").build();
        let original = pkt.bytes().to_vec();

        let mut strip = Strip::from_args(&ConfigArgs::parse("Strip", "14")).unwrap();
        let mut s = VecSink::new();
        strip.push(0, pkt, &Context::default(), &mut s);
        let stripped = s.pushed.pop().unwrap().1;
        assert_eq!(stripped.len(), original.len() - 14);

        let args = ConfigArgs::parse("EtherEncap", "0x0800, 02:00:00:00:00:01, 02:00:00:00:00:02");
        let mut encap = EtherEncap::from_args(&args).unwrap();
        let mut s2 = VecSink::new();
        encap.push(0, stripped, &Context::default(), &mut s2);
        let rebuilt = s2.pushed.pop().unwrap().1;
        assert_eq!(rebuilt.len(), original.len());
        assert!(rebuilt.is_ipv4());
        assert_eq!(&rebuilt.bytes()[14..], &original[14..]);
    }

    #[test]
    fn bad_macs_rejected() {
        let args = ConfigArgs::parse("EtherEncap", "0x0800, nope, 02:00:00:00:00:02");
        assert!(EtherEncap::from_args(&args).is_err());
    }
}
