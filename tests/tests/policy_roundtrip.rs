//! Property tests for the requirements language and its interaction with
//! the verification pipeline.

use innet::policy::{ConstField, NodeRef, Requirement};
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("internet".to_string()),
        Just("client".to_string()),
        Just("10.0.0.0/8".to_string()),
        Just("192.0.2.7".to_string()),
        Just("HTTPOptimizer".to_string()),
        Just("batcher:dst:0".to_string()),
        Just("batcher:dst".to_string()),
    ]
}

fn arb_flow() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("udp".to_string()),
        Just("tcp src port 80".to_string()),
        Just("udp dst port 1500".to_string()),
        Just("dst net 172.16.0.0/16".to_string()),
        Just("(tcp or udp) and not dst port 22".to_string()),
    ]
}

fn arb_const() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just(" const proto".to_string()),
        Just(" const dst port && payload".to_string()),
        Just(" const proto && dst port && payload".to_string()),
        Just(" const src host && ttl".to_string()),
    ]
}

proptest! {
    /// Any statement assembled from valid pieces parses, with the right
    /// hop count, and re-parses identically after whitespace mangling.
    #[test]
    fn assembled_requirements_parse(
        from in arb_node(),
        from_flow in arb_flow(),
        hops in proptest::collection::vec((arb_node(), arb_flow(), arb_const()), 1..4),
    ) {
        let mut text = format!("reach from {from} {from_flow}");
        for (node, flow, cst) in &hops {
            text.push_str(&format!(" -> {node} {flow}{cst}"));
        }
        let parsed = Requirement::parse(&text).unwrap();
        prop_assert_eq!(parsed.hops.len(), hops.len());

        // Whitespace-mangled variant parses to the same AST.
        let mangled = text.split_whitespace().collect::<Vec<_>>().join("  \n ");
        let reparsed = Requirement::parse(&mangled).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Const fields parse to the expected variants in order.
    #[test]
    fn const_fields_ordered(perm in proptest::sample::subsequence(
        vec!["proto", "src port", "dst port", "payload", "ttl", "tos"], 1..6))
    {
        let text = format!(
            "reach from internet -> client const {}",
            perm.join(" && ")
        );
        let r = Requirement::parse(&text).unwrap();
        prop_assert_eq!(r.hops[0].const_fields.len(), perm.len());
        for (f, name) in r.hops[0].const_fields.iter().zip(perm.iter()) {
            let expect = match *name {
                "proto" => ConstField::Proto,
                "src port" => ConstField::SrcPort,
                "dst port" => ConstField::DstPort,
                "payload" => ConstField::Payload,
                "ttl" => ConstField::Ttl,
                "tos" => ConstField::Tos,
                _ => unreachable!(),
            };
            prop_assert_eq!(*f, expect);
        }
    }

    /// Garbage never panics the parser.
    #[test]
    fn garbage_never_panics(s in "\\PC{0,80}") {
        let _ = Requirement::parse(&s);
    }

    /// Node references classify as expected.
    #[test]
    fn node_kinds(label in arb_node()) {
        let r = Requirement::parse(&format!("reach from internet -> {label}")).unwrap();
        let node = &r.hops[0].node;
        let ok = match label.as_str() {
            "internet" => *node == NodeRef::Internet,
            "client" => *node == NodeRef::Client,
            "10.0.0.0/8" | "192.0.2.7" => matches!(node, NodeRef::Addr(_)),
            "HTTPOptimizer" => matches!(node, NodeRef::Named(_)),
            _ => matches!(node, NodeRef::ElementPort { .. }),
        };
        prop_assert!(ok, "label {} parsed to {:?}", label, node);
    }
}
