//! Conservative per-element field-effect summaries for static analysis.
//!
//! Each summary describes, per input port, the set of flows an element can
//! emit: which header fields it constrains, which it overwrites (and with
//! what kind of value), and whether it pushes or pops a tunnel layer. The
//! `innet-analysis` crate composes summaries along every graph path with a
//! worklist abstract interpretation, yielding a config-level verdict
//! without running symbolic execution.
//!
//! **Soundness contract.** A summary mirrors the element's *symbolic
//! model* in `innet-symnet::models` — not its concrete packet-processing
//! behavior — because the fast-path verdict must agree with what SymNet
//! would conclude. A flow whose constraint list contains an inexact
//! constraint ([`Constraint::Narrow`] or [`Constraint::Opaque`]) *may* be
//! unsatisfiable (the flow may not exist); a flow with only exact
//! constraints definitely exists whenever its `Eq`/`Neq` tests pass.

use std::net::Ipv4Addr;

use innet_packet::IpProto;

use crate::{
    args::ConfigArgs,
    element::{Element, ElementError, PortCount},
    elements::{self as el, FieldSpec, FilterAction},
    registry::Registry,
};

/// The header fields of the symbolic packet model, as seen by summaries.
///
/// This is the same field set `innet-symnet` executes over; it is
/// duplicated here (rather than imported) so `innet-click` stays free of
/// a dependency on the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsField {
    /// IPv4 source address.
    IpSrc,
    /// IPv4 destination address.
    IpDst,
    /// IP protocol number.
    Proto,
    /// Transport source port.
    SrcPort,
    /// Transport destination port.
    DstPort,
    /// IP time-to-live.
    Ttl,
    /// IP type-of-service byte.
    Tos,
    /// TCP SYN flag (0/1).
    TcpSyn,
    /// Opaque payload identity.
    Payload,
    /// The analysis-only firewall-authorization tag.
    FwTag,
}

/// Every [`AbsField`], in declaration order (usable as an array index via
/// [`AbsField::index`]).
pub const ABS_FIELDS: [AbsField; AbsField::COUNT] = [
    AbsField::IpSrc,
    AbsField::IpDst,
    AbsField::Proto,
    AbsField::SrcPort,
    AbsField::DstPort,
    AbsField::Ttl,
    AbsField::Tos,
    AbsField::TcpSyn,
    AbsField::Payload,
    AbsField::FwTag,
];

impl AbsField {
    /// Number of modeled fields.
    pub const COUNT: usize = 10;

    /// Dense index of this field, `0..COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AbsField::IpSrc => "ip_src",
            AbsField::IpDst => "ip_dst",
            AbsField::Proto => "proto",
            AbsField::SrcPort => "src_port",
            AbsField::DstPort => "dst_port",
            AbsField::Ttl => "ttl",
            AbsField::Tos => "tos",
            AbsField::TcpSyn => "tcp_syn",
            AbsField::Payload => "payload",
            AbsField::FwTag => "fw_tag",
        }
    }
}

/// Provenance of a value only known at runtime (mirrors
/// `innet-symnet`'s variable origins, minus the free ingress origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtOrigin {
    /// Revealed by decapsulating a tunnel the analysis did not see built.
    Decap,
    /// Produced by an opaque computation (x86 VM).
    Opaque,
    /// Computed by a modeled element (NAT port choice, TTL arithmetic…).
    Computed,
}

impl RtOrigin {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RtOrigin::Decap => "decap",
            RtOrigin::Opaque => "opaque",
            RtOrigin::Computed => "computed",
        }
    }
}

/// What an element writes into one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldWrite {
    /// A compile-time constant.
    Const(u64),
    /// A copy of another field's value as it stood *before* this
    /// element's writes (but after its constraints).
    CopyOf(AbsField),
    /// A fresh runtime-chosen value.
    Runtime(RtOrigin),
}

/// A condition a flow's packets must satisfy to take this flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// The field provably equals the value (exact: the flow survives iff
    /// the test can hold).
    Eq(AbsField, u64),
    /// The field provably differs from the value (exact).
    Neq(AbsField, u64),
    /// The field is narrowed to some value subset (inexact: the flow may
    /// be filtered away entirely).
    Narrow(AbsField),
    /// An opaque pattern filter that may narrow *any* field or drop the
    /// flow (inexact).
    Opaque,
}

/// Tunnel-layer effect of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayerOp {
    /// No layer change.
    #[default]
    None,
    /// Push a fresh outer header (encapsulation).
    Push,
    /// Pop the outer header (decapsulation); reveals either the saved
    /// inner header or runtime-unknown fields.
    Pop,
}

/// One abstract flow through an element: packets arriving on `in_port`
/// that satisfy `constraints` leave on `out_port` after `layer` and
/// `writes` are applied (in that order, mirroring the symbolic models).
#[derive(Debug, Clone)]
pub struct FlowSummary {
    /// Input port the flow consumes from.
    pub in_port: usize,
    /// Output port the flow is emitted on.
    pub out_port: usize,
    /// Conditions, applied in order.
    pub constraints: Vec<Constraint>,
    /// Field writes, applied after `constraints` and `layer`.
    pub writes: Vec<(AbsField, FieldWrite)>,
    /// Tunnel-layer effect, applied between constraints and writes.
    pub layer: LayerOp,
}

impl FlowSummary {
    /// An unconditional pass-through flow from `in_port` to `out_port`.
    pub fn identity(in_port: usize, out_port: usize) -> FlowSummary {
        FlowSummary {
            in_port,
            out_port,
            constraints: Vec::new(),
            writes: Vec::new(),
            layer: LayerOp::None,
        }
    }

    /// Whether every constraint is exact (`Eq`/`Neq`): an unfiltered flow
    /// definitely exists when its tests pass.
    pub fn is_exact(&self) -> bool {
        self.constraints
            .iter()
            .all(|c| matches!(c, Constraint::Eq(..) | Constraint::Neq(..)))
    }
}

/// What kind of node an element is in the abstract flow graph.
#[derive(Debug, Clone)]
pub enum SummaryKind {
    /// A transform with zero or more flows per input port.
    Flows(Vec<FlowSummary>),
    /// Terminal egress to the network (`ToNetfront`).
    Egress,
    /// Absorbs everything (`Discard`, `Idle`).
    Sink,
}

/// How an element's state interacts with flow-sharded replication — the
/// three-point lattice behind the parallel runner's worker-count verdict.
///
/// The variants are ordered `Stateless < FlowPartitionable < Global`
/// (derived `Ord`), so a configuration's verdict is simply the `max`
/// over its elements: one `Global` element poisons the whole config,
/// one `FlowPartitionable` element upgrades dispatch from the directed
/// flow hash to the symmetric (connection-pinning) hash, and an
/// all-`Stateless` config shards freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Shardability {
    /// Forwarding is a pure function of the packet: replicas make
    /// identical per-packet decisions, so any flow-to-worker pinning
    /// keeps output order-identical to a single instance.
    Stateless,
    /// Forwarding depends on state keyed by the *connection* (the
    /// canonical 5-tuple): NAT translation tables, firewall connection
    /// tracking, per-flow meters. Replicas stay equivalent to a single
    /// instance as long as both directions of every connection are
    /// pinned to the same replica — which the symmetric dispatch hash
    /// guarantees — because then each replica owns a disjoint slice of
    /// the connection-state table.
    FlowPartitionable,
    /// Forwarding depends on state shared *across* connections (token
    /// buckets, queues, round-robin schedulers, opaque x86 VMs): no
    /// flow-to-worker pinning can keep replicas equivalent, and the
    /// runner degrades the configuration to a single worker.
    Global,
}

impl Shardability {
    /// Short display name (`stateless` / `flow` / `global`).
    pub fn name(self) -> &'static str {
        match self {
            Shardability::Stateless => "stateless",
            Shardability::FlowPartitionable => "flow",
            Shardability::Global => "global",
        }
    }
}

/// The complete field-effect summary of one configured element.
#[derive(Debug, Clone)]
pub struct ElementSummary {
    /// Port signature of the element.
    pub ports: PortCount,
    /// Flow behavior.
    pub kind: SummaryKind,
    /// Whether this element breaks combinational cycles (queues,
    /// shapers — anything that decouples input from output in time).
    pub queue_like: bool,
    /// Where this element sits on the replication-safety lattice: what
    /// kind of cross-packet state (if any) its forwarding depends on,
    /// and therefore what dispatch discipline flow-sharded execution
    /// needs to replicate it faithfully. See [`Shardability`].
    pub shardability: Shardability,
}

impl ElementSummary {
    /// A one-in one-out pass-through element.
    pub fn identity() -> ElementSummary {
        ElementSummary {
            ports: PortCount::ONE_ONE,
            kind: SummaryKind::Flows(vec![FlowSummary::identity(0, 0)]),
            queue_like: false,
            shardability: Shardability::Stateless,
        }
    }

    /// A transform with the given ports and flows.
    pub fn flows(ports: PortCount, flows: Vec<FlowSummary>) -> ElementSummary {
        ElementSummary {
            ports,
            kind: SummaryKind::Flows(flows),
            queue_like: false,
            shardability: Shardability::Stateless,
        }
    }

    /// Marks the element as cycle-breaking.
    pub fn queue_like(mut self) -> ElementSummary {
        self.queue_like = true;
        self
    }

    /// Marks the element's forwarding as dependent on per-connection
    /// state ([`Shardability::FlowPartitionable`]).
    pub fn flow_state(mut self) -> ElementSummary {
        self.shardability = Shardability::FlowPartitionable;
        self
    }

    /// Marks the element's forwarding as dependent on cross-connection
    /// state ([`Shardability::Global`]).
    pub fn global_state(mut self) -> ElementSummary {
        self.shardability = Shardability::Global;
        self
    }

    /// Whether forwarding depends on *any* cross-packet state (the old
    /// boolean view of the lattice).
    pub fn is_stateful(&self) -> bool {
        self.shardability != Shardability::Stateless
    }

    /// All flows consuming from `in_port` (empty for egress/sinks).
    pub fn flows_from(&self, in_port: usize) -> impl Iterator<Item = &FlowSummary> {
        let flows = match &self.kind {
            SummaryKind::Flows(f) => f.as_slice(),
            _ => &[],
        };
        flows.iter().filter(move |f| f.in_port == in_port)
    }
}

/// Constructor signature for a class summary: parses the element's
/// arguments (sharing validation with the runtime constructor) and
/// returns its field-effect summary.
pub type SummaryCtor = fn(&[String]) -> Result<ElementSummary, ElementError>;

fn a64(a: Ipv4Addr) -> u64 {
    u32::from(a) as u64
}

fn proto(p: IpProto) -> u64 {
    p.number() as u64
}

/// One over-approximating flow per output, no constraints: the element
/// definitely emits on every output (`Tee`, `Classifier`, switches…).
fn any_output(outputs: usize) -> ElementSummary {
    let flows = (0..outputs).map(|o| FlowSummary::identity(0, o)).collect();
    ElementSummary::flows(PortCount::new(1, outputs), flows)
}

fn from_netfront(args: &[String]) -> Result<ElementSummary, ElementError> {
    el::FromNetfront::from_args(&ConfigArgs::new("FromNetfront", args))?;
    Ok(ElementSummary::identity())
}

fn to_netfront(args: &[String]) -> Result<ElementSummary, ElementError> {
    let t = el::ToNetfront::from_args(&ConfigArgs::new("ToNetfront", args))?;
    Ok(ElementSummary {
        ports: Element::ports(&t),
        kind: SummaryKind::Egress,
        queue_like: false,
        shardability: Shardability::Stateless,
    })
}

fn discard_sink(args: &[String]) -> Result<ElementSummary, ElementError> {
    ConfigArgs::new("Discard", args).expect_len(0)?;
    Ok(ElementSummary {
        ports: PortCount::new(1, 0),
        kind: SummaryKind::Sink,
        queue_like: false,
        shardability: Shardability::Stateless,
    })
}

fn idle_sink(args: &[String]) -> Result<ElementSummary, ElementError> {
    ConfigArgs::new("Idle", args).expect_len(0)?;
    // Idle declares an output port but never emits on it.
    Ok(ElementSummary {
        ports: PortCount::ONE_ONE,
        kind: SummaryKind::Sink,
        queue_like: false,
        shardability: Shardability::Stateless,
    })
}

macro_rules! identity_summary {
    ($class:literal, no_args) => {
        |args: &[String]| -> Result<ElementSummary, ElementError> {
            ConfigArgs::new($class, args).expect_len(0)?;
            Ok(ElementSummary::identity())
        }
    };
    ($class:literal, $ty:ty) => {
        |args: &[String]| -> Result<ElementSummary, ElementError> {
            <$ty>::from_args(&ConfigArgs::new($class, args))?;
            Ok(ElementSummary::identity())
        }
    };
    // Per-connection measurement state (FlowMeter): safe to shard as
    // long as both directions of a connection stay on one worker.
    ($class:literal, no_args, flow) => {
        |args: &[String]| -> Result<ElementSummary, ElementError> {
            ConfigArgs::new($class, args).expect_len(0)?;
            Ok(ElementSummary::identity().flow_state())
        }
    };
    // Queue-like elements decouple input from output in time, which also
    // makes them global state for sharding: their emission schedule (and
    // shared token bucket / buffer) depends on every packet they have
    // absorbed so far, across all flows.
    ($class:literal, $ty:ty, queue) => {
        |args: &[String]| -> Result<ElementSummary, ElementError> {
            <$ty>::from_args(&ConfigArgs::new($class, args))?;
            Ok(ElementSummary::identity().queue_like().global_state())
        }
    };
}

macro_rules! any_output_summary {
    ($class:literal, $ty:ty) => {
        |args: &[String]| -> Result<ElementSummary, ElementError> {
            let e = <$ty>::from_args(&ConfigArgs::new($class, args))?;
            Ok(any_output(Element::ports(&e).outputs))
        }
    };
    // Per-connection inspection state (DPI counters): shardable under
    // symmetric dispatch.
    ($class:literal, $ty:ty, flow) => {
        |args: &[String]| -> Result<ElementSummary, ElementError> {
            let e = <$ty>::from_args(&ConfigArgs::new($class, args))?;
            Ok(any_output(Element::ports(&e).outputs).flow_state())
        }
    };
    // Output choice depends on cross-flow arrival history (schedulers,
    // token buckets, seeded rngs) — safe to verify, unsafe to replicate.
    ($class:literal, $ty:ty, global) => {
        |args: &[String]| -> Result<ElementSummary, ElementError> {
            let e = <$ty>::from_args(&ConfigArgs::new($class, args))?;
            Ok(any_output(Element::ports(&e).outputs).global_state())
        }
    };
}

fn ip_classifier(args: &[String]) -> Result<ElementSummary, ElementError> {
    let c = el::IPClassifier::from_args(&ConfigArgs::new("IPClassifier", args))?;
    let n = c.rules().len();
    let flows = (0..n)
        .map(|i| FlowSummary {
            in_port: 0,
            out_port: i,
            constraints: vec![Constraint::Opaque],
            writes: Vec::new(),
            layer: LayerOp::None,
        })
        .collect();
    Ok(ElementSummary::flows(PortCount::new(1, n), flows))
}

fn ip_filter(args: &[String]) -> Result<ElementSummary, ElementError> {
    let f = el::IPFilter::from_args(&ConfigArgs::new("IPFilter", args))?;
    let any_allow = f
        .rules()
        .iter()
        .any(|(a, _)| matches!(a, FilterAction::Allow));
    let flows = if any_allow {
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: vec![Constraint::Opaque],
            writes: Vec::new(),
            layer: LayerOp::None,
        }]
    } else {
        Vec::new()
    };
    Ok(ElementSummary::flows(PortCount::ONE_ONE, flows))
}

fn dec_ip_ttl(args: &[String]) -> Result<ElementSummary, ElementError> {
    ConfigArgs::new("DecIPTTL", args).expect_len(0)?;
    Ok(ElementSummary::flows(
        PortCount::ONE_ONE,
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: vec![Constraint::Narrow(AbsField::Ttl)],
            writes: vec![(AbsField::Ttl, FieldWrite::Runtime(RtOrigin::Computed))],
            layer: LayerOp::None,
        }],
    ))
}

fn set_field(
    class: &'static str,
    field: AbsField,
    value: u64,
) -> Result<ElementSummary, ElementError> {
    let _ = class;
    Ok(ElementSummary::flows(
        PortCount::ONE_ONE,
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: Vec::new(),
            writes: vec![(field, FieldWrite::Const(value))],
            layer: LayerOp::None,
        }],
    ))
}

fn set_ip_src(args: &[String]) -> Result<ElementSummary, ElementError> {
    let s = el::SetIPSrc::from_args(&ConfigArgs::new("SetIPSrc", args))?;
    set_field("SetIPSrc", AbsField::IpSrc, a64(s.addr()))
}

fn set_ip_dst(args: &[String]) -> Result<ElementSummary, ElementError> {
    let s = el::SetIPDst::from_args(&ConfigArgs::new("SetIPDst", args))?;
    set_field("SetIPDst", AbsField::IpDst, a64(s.addr()))
}

fn set_tos(args: &[String]) -> Result<ElementSummary, ElementError> {
    el::SetTOS::from_args(&ConfigArgs::new("SetTOS", args))?;
    // Value re-parsed the same way the symbolic model does.
    let v: u64 = args
        .first()
        .and_then(|a| a.trim().parse().ok())
        .unwrap_or(0);
    set_field("SetTOS", AbsField::Tos, v)
}

fn firewall(args: &[String]) -> Result<ElementSummary, ElementError> {
    let f = el::StatefulFirewall::from_args(&ConfigArgs::new("StatefulFirewall", args))?;
    let mut flows = Vec::new();
    if !f.allow_rules().is_empty() {
        flows.push(FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: vec![Constraint::Opaque],
            writes: vec![(AbsField::FwTag, FieldWrite::Const(1))],
            layer: LayerOp::None,
        });
    }
    flows.push(FlowSummary {
        in_port: 1,
        out_port: 1,
        constraints: vec![Constraint::Eq(AbsField::FwTag, 1)],
        writes: Vec::new(),
        layer: LayerOp::None,
    });
    Ok(ElementSummary::flows(PortCount::new(2, 2), flows).flow_state())
}

fn nat(args: &[String]) -> Result<ElementSummary, ElementError> {
    let n = el::IpNat::from_args(&ConfigArgs::new("IPNAT", args))?;
    let public = a64(n.public_addr());
    Ok(ElementSummary::flows(
        PortCount::new(2, 2),
        vec![
            FlowSummary {
                in_port: 0,
                out_port: 0,
                constraints: Vec::new(),
                writes: vec![
                    (AbsField::IpSrc, FieldWrite::Const(public)),
                    (AbsField::SrcPort, FieldWrite::Runtime(RtOrigin::Computed)),
                ],
                layer: LayerOp::None,
            },
            FlowSummary {
                in_port: 1,
                out_port: 1,
                constraints: vec![Constraint::Eq(AbsField::IpDst, public)],
                writes: vec![
                    (AbsField::IpDst, FieldWrite::Runtime(RtOrigin::Computed)),
                    (AbsField::DstPort, FieldWrite::Runtime(RtOrigin::Computed)),
                ],
                layer: LayerOp::None,
            },
        ],
    )
    .flow_state())
}

fn rewriter(args: &[String]) -> Result<ElementSummary, ElementError> {
    let r = el::IPRewriter::from_args(&ConfigArgs::new("IPRewriter", args))?;
    let p = r.pattern().clone();
    let ports = Element::ports(&r);
    let mut fwd_writes = Vec::new();
    if let FieldSpec::Set(a) = p.saddr {
        fwd_writes.push((AbsField::IpSrc, FieldWrite::Const(a64(a))));
    }
    if let FieldSpec::Set(sp) = p.sport {
        fwd_writes.push((AbsField::SrcPort, FieldWrite::Const(sp as u64)));
    }
    if let FieldSpec::Set(a) = p.daddr {
        fwd_writes.push((AbsField::IpDst, FieldWrite::Const(a64(a))));
    }
    if let FieldSpec::Set(dp) = p.dport {
        fwd_writes.push((AbsField::DstPort, FieldWrite::Const(dp as u64)));
    }
    Ok(ElementSummary::flows(
        ports,
        vec![
            FlowSummary {
                in_port: 0,
                out_port: p.fwd_out,
                constraints: Vec::new(),
                writes: fwd_writes,
                layer: LayerOp::None,
            },
            FlowSummary {
                in_port: 1,
                out_port: p.rev_out,
                constraints: Vec::new(),
                writes: vec![
                    (AbsField::IpSrc, FieldWrite::Runtime(RtOrigin::Computed)),
                    (AbsField::SrcPort, FieldWrite::Runtime(RtOrigin::Computed)),
                    (AbsField::IpDst, FieldWrite::Runtime(RtOrigin::Computed)),
                    (AbsField::DstPort, FieldWrite::Runtime(RtOrigin::Computed)),
                ],
                layer: LayerOp::None,
            },
        ],
    )
    .global_state())
}

fn transparent_proxy(args: &[String]) -> Result<ElementSummary, ElementError> {
    let t = el::TransparentProxy::from_args(&ConfigArgs::new("TransparentProxy", args))?;
    let (proxy, proxy_port, intercept) = t.params();
    let tcp = proto(IpProto::Tcp);
    Ok(ElementSummary::flows(
        PortCount::new(2, 2),
        vec![
            // Intercepted: TCP to the intercept port, redirected.
            FlowSummary {
                in_port: 0,
                out_port: 0,
                constraints: vec![
                    Constraint::Eq(AbsField::Proto, tcp),
                    Constraint::Eq(AbsField::DstPort, intercept as u64),
                ],
                writes: vec![
                    (AbsField::IpDst, FieldWrite::Const(a64(proxy))),
                    (AbsField::DstPort, FieldWrite::Const(proxy_port as u64)),
                ],
                layer: LayerOp::None,
            },
            // Pass-through: not TCP.
            FlowSummary {
                in_port: 0,
                out_port: 0,
                constraints: vec![Constraint::Neq(AbsField::Proto, tcp)],
                writes: Vec::new(),
                layer: LayerOp::None,
            },
            // Pass-through: TCP to another port.
            FlowSummary {
                in_port: 0,
                out_port: 0,
                constraints: vec![
                    Constraint::Eq(AbsField::Proto, tcp),
                    Constraint::Neq(AbsField::DstPort, intercept as u64),
                ],
                writes: Vec::new(),
                layer: LayerOp::None,
            },
            // Reverse path: unknown original server restored.
            FlowSummary {
                in_port: 1,
                out_port: 1,
                constraints: Vec::new(),
                writes: vec![
                    (AbsField::IpSrc, FieldWrite::Runtime(RtOrigin::Computed)),
                    (AbsField::SrcPort, FieldWrite::Runtime(RtOrigin::Computed)),
                ],
                layer: LayerOp::None,
            },
        ],
    )
    .global_state())
}

fn encap_flows(
    p: u64,
    src: u64,
    sport: Option<u64>,
    dst: u64,
    dport: Option<u64>,
) -> Vec<FlowSummary> {
    let mut writes = vec![
        (AbsField::Proto, FieldWrite::Const(p)),
        (AbsField::IpSrc, FieldWrite::Const(src)),
        (AbsField::IpDst, FieldWrite::Const(dst)),
    ];
    if let Some(sp) = sport {
        writes.push((AbsField::SrcPort, FieldWrite::Const(sp)));
    }
    if let Some(dp) = dport {
        writes.push((AbsField::DstPort, FieldWrite::Const(dp)));
    }
    writes.push((AbsField::Ttl, FieldWrite::Const(64)));
    vec![FlowSummary {
        in_port: 0,
        out_port: 0,
        constraints: Vec::new(),
        writes,
        layer: LayerOp::Push,
    }]
}

fn udp_tunnel_encap(args: &[String]) -> Result<ElementSummary, ElementError> {
    let t = el::UdpTunnelEncap::from_args(&ConfigArgs::new("UDPTunnelEncap", args))?;
    let (src, sport, dst, dport) = t.params();
    Ok(ElementSummary::flows(
        PortCount::ONE_ONE,
        encap_flows(
            proto(IpProto::Udp),
            a64(src),
            Some(sport as u64),
            a64(dst),
            Some(dport as u64),
        ),
    ))
}

fn ip_encap(args: &[String]) -> Result<ElementSummary, ElementError> {
    let t = el::IpEncap::from_args(&ConfigArgs::new("IPEncap", args))?;
    let (src, dst) = t.params();
    Ok(ElementSummary::flows(
        PortCount::ONE_ONE,
        encap_flows(proto(IpProto::IpIp), a64(src), None, a64(dst), None),
    ))
}

fn decap(p: u64) -> ElementSummary {
    ElementSummary::flows(
        PortCount::ONE_ONE,
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: vec![Constraint::Eq(AbsField::Proto, p)],
            writes: Vec::new(),
            layer: LayerOp::Pop,
        }],
    )
}

fn udp_tunnel_decap(args: &[String]) -> Result<ElementSummary, ElementError> {
    ConfigArgs::new("UDPTunnelDecap", args).expect_len(0)?;
    Ok(decap(proto(IpProto::Udp)))
}

fn ip_decap(args: &[String]) -> Result<ElementSummary, ElementError> {
    ConfigArgs::new("IPDecap", args).expect_len(0)?;
    Ok(decap(proto(IpProto::IpIp)))
}

fn multicast(args: &[String]) -> Result<ElementSummary, ElementError> {
    let m = el::IpMulticast::from_args(&ConfigArgs::new("IPMulticast", args))?;
    let flows = m
        .destinations()
        .iter()
        .map(|&d| FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: Vec::new(),
            writes: vec![(AbsField::IpDst, FieldWrite::Const(a64(d)))],
            layer: LayerOp::None,
        })
        .collect();
    Ok(ElementSummary::flows(PortCount::ONE_ONE, flows))
}

fn ping_responder(args: &[String]) -> Result<ElementSummary, ElementError> {
    ConfigArgs::new("ICMPPingResponder", args).expect_len(0)?;
    Ok(ElementSummary::flows(
        PortCount::ONE_ONE,
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: vec![Constraint::Eq(AbsField::Proto, proto(IpProto::Icmp))],
            writes: vec![
                (AbsField::IpSrc, FieldWrite::CopyOf(AbsField::IpDst)),
                (AbsField::IpDst, FieldWrite::CopyOf(AbsField::IpSrc)),
            ],
            layer: LayerOp::None,
        }],
    ))
}

fn static_lookup(args: &[String]) -> Result<ElementSummary, ElementError> {
    let l = el::StaticIPLookup::from_args(&ConfigArgs::new("StaticIPLookup", args))?;
    let ports = Element::ports(&l);
    let flows = l
        .routes()
        .iter()
        .map(|&(_, port)| FlowSummary {
            in_port: 0,
            out_port: port,
            constraints: vec![Constraint::Narrow(AbsField::IpDst)],
            writes: Vec::new(),
            layer: LayerOp::None,
        })
        .collect();
    Ok(ElementSummary::flows(ports, flows))
}

fn change_enforcer(args: &[String]) -> Result<ElementSummary, ElementError> {
    let c = el::ChangeEnforcer::from_args(&ConfigArgs::new("ChangeEnforcer", args))?;
    let module = a64(c.params().0);
    Ok(ElementSummary::flows(
        PortCount::new(2, 2),
        vec![
            FlowSummary::identity(0, 0),
            FlowSummary {
                in_port: 1,
                out_port: 1,
                constraints: vec![Constraint::Eq(AbsField::IpSrc, module)],
                writes: Vec::new(),
                layer: LayerOp::None,
            },
        ],
    )
    .global_state())
}

fn stock_addr(class: &str, args: &[String]) -> Result<u64, ElementError> {
    args.first()
        .and_then(|a| a.trim().parse::<Ipv4Addr>().ok())
        .map(a64)
        .ok_or_else(|| ElementError::BadArgs {
            class: "Stock",
            message: format!("{class}: bad address argument 0"),
        })
}

fn stock_x86_vm(_args: &[String]) -> Result<ElementSummary, ElementError> {
    let writes = ABS_FIELDS
        .iter()
        .map(|&f| (f, FieldWrite::Runtime(RtOrigin::Opaque)))
        .collect();
    Ok(ElementSummary::flows(
        PortCount::ONE_ONE,
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: Vec::new(),
            writes,
            layer: LayerOp::None,
        }],
    )
    // Arbitrary x86: assume the worst about internal state.
    .global_state())
}

fn stock_explicit_proxy(args: &[String]) -> Result<ElementSummary, ElementError> {
    let own = stock_addr("StockExplicitProxy", args)?;
    Ok(ElementSummary::flows(
        PortCount::ONE_ONE,
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints: Vec::new(),
            writes: vec![
                (AbsField::IpSrc, FieldWrite::Const(own)),
                (AbsField::IpDst, FieldWrite::Runtime(RtOrigin::Computed)),
                (AbsField::SrcPort, FieldWrite::Runtime(RtOrigin::Computed)),
                (AbsField::DstPort, FieldWrite::Runtime(RtOrigin::Computed)),
                (AbsField::Payload, FieldWrite::Runtime(RtOrigin::Computed)),
            ],
            layer: LayerOp::None,
        }],
    )
    .global_state())
}

fn turnaround(
    p: Option<u64>,
    listen: Option<u64>,
    own: Option<u64>,
    fresh_payload: bool,
) -> ElementSummary {
    let mut constraints = Vec::new();
    if let Some(p) = p {
        constraints.push(Constraint::Eq(AbsField::Proto, p));
    }
    if let Some(port) = listen {
        constraints.push(Constraint::Eq(AbsField::DstPort, port));
    }
    let src_write = match own {
        Some(a) => FieldWrite::Const(a),
        None => FieldWrite::CopyOf(AbsField::IpDst),
    };
    let mut writes = vec![
        (AbsField::IpSrc, src_write),
        (AbsField::IpDst, FieldWrite::CopyOf(AbsField::IpSrc)),
        (AbsField::SrcPort, FieldWrite::CopyOf(AbsField::DstPort)),
        (AbsField::DstPort, FieldWrite::CopyOf(AbsField::SrcPort)),
    ];
    if fresh_payload {
        writes.push((AbsField::Payload, FieldWrite::Runtime(RtOrigin::Computed)));
    }
    ElementSummary::flows(
        PortCount::ONE_ONE,
        vec![FlowSummary {
            in_port: 0,
            out_port: 0,
            constraints,
            writes,
            layer: LayerOp::None,
        }],
    )
}

fn server_s(_args: &[String]) -> Result<ElementSummary, ElementError> {
    Ok(turnaround(Some(proto(IpProto::Udp)), None, None, false).global_state())
}

fn stock_dns(args: &[String]) -> Result<ElementSummary, ElementError> {
    let own = stock_addr("StockDNSServer", args)?;
    Ok(turnaround(Some(proto(IpProto::Udp)), Some(53), Some(own), true).global_state())
}

fn stock_reverse_proxy(args: &[String]) -> Result<ElementSummary, ElementError> {
    let own = stock_addr("StockReverseProxy", args)?;
    Ok(turnaround(Some(proto(IpProto::Tcp)), Some(80), Some(own), true).global_state())
}

/// Registers the field-effect summaries of the standard element library
/// (plus the controller's `Stock*` pseudo-classes) into `r`.
pub(crate) fn register_standard(r: &mut Registry) {
    // Sources, sinks.
    r.register_summary("FromNetfront", from_netfront);
    r.register_summary("FromDevice", from_netfront);
    r.register_summary("ToNetfront", to_netfront);
    r.register_summary("ToDevice", to_netfront);
    r.register_summary("Discard", discard_sink);
    r.register_summary("Idle", idle_sink);

    // Classification and filtering.
    r.register_summary(
        "Classifier",
        any_output_summary!("Classifier", el::Classifier),
    );
    r.register_summary("IPClassifier", ip_classifier);
    r.register_summary("IPFilter", ip_filter);

    // Header manipulation.
    r.register_summary("CheckIPHeader", identity_summary!("CheckIPHeader", no_args));
    r.register_summary(
        "MarkIPHeader",
        identity_summary!("MarkIPHeader", el::MarkIPHeader),
    );
    r.register_summary("DecIPTTL", dec_ip_ttl);
    r.register_summary("SetIPSrc", set_ip_src);
    r.register_summary("SetIPDst", set_ip_dst);
    r.register_summary("SetTOS", set_tos);
    r.register_summary("Strip", identity_summary!("Strip", el::Strip));
    r.register_summary(
        "EtherEncap",
        identity_summary!("EtherEncap", el::EtherEncap),
    );

    // Measurement.
    r.register_summary("Counter", identity_summary!("Counter", no_args));
    r.register_summary("FlowMeter", identity_summary!("FlowMeter", no_args, flow));

    // Shaping and queueing (cycle-breaking).
    r.register_summary(
        "RateLimiter",
        identity_summary!("RateLimiter", el::RateLimiter, queue),
    );
    r.register_summary(
        "BandwidthShaper",
        identity_summary!("BandwidthShaper", el::BandwidthShaper, queue),
    );
    r.register_summary("Queue", identity_summary!("Queue", el::Queue, queue));
    r.register_summary(
        "TimedUnqueue",
        identity_summary!("TimedUnqueue", el::TimedUnqueue, queue),
    );

    // Stateful middleboxes.
    r.register_summary("StatefulFirewall", firewall);
    r.register_summary("IPNAT", nat);
    r.register_summary("IPRewriter", rewriter);
    r.register_summary("TransparentProxy", transparent_proxy);

    // Tunnels.
    r.register_summary("UDPTunnelEncap", udp_tunnel_encap);
    r.register_summary("UDPTunnelDecap", udp_tunnel_decap);
    r.register_summary("IPEncap", ip_encap);
    r.register_summary("IPDecap", ip_decap);

    // Scheduling and annotations.
    r.register_summary(
        "RoundRobinSwitch",
        any_output_summary!("RoundRobinSwitch", el::RoundRobinSwitch, global),
    );
    r.register_summary(
        "RandomSwitch",
        any_output_summary!("RandomSwitch", el::RandomSwitch, global),
    );
    r.register_summary("Meter", any_output_summary!("Meter", el::Meter, global));
    r.register_summary("Paint", identity_summary!("Paint", el::Paint));
    r.register_summary(
        "CheckPaint",
        any_output_summary!("CheckPaint", el::CheckPaint),
    );

    // Duplication, inspection, responders.
    r.register_summary("Tee", any_output_summary!("Tee", el::Tee));
    r.register_summary("IPMulticast", multicast);
    r.register_summary("DPI", any_output_summary!("DPI", el::Dpi, flow));
    r.register_summary("ICMPPingResponder", ping_responder);
    r.register_summary("StaticIPLookup", static_lookup);

    // Sandboxing.
    r.register_summary("ChangeEnforcer", change_enforcer);

    // Stock pseudo-classes (no Click constructor; the controller
    // materializes them directly).
    r.register_summary("StockX86VM", stock_x86_vm);
    r.register_summary("StockExplicitProxy", stock_explicit_proxy);
    r.register_summary("StockDNSServer", stock_dns);
    r.register_summary("StockReverseProxy", stock_reverse_proxy);
    r.register_summary("ServerS", server_s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_summarizes_every_class() {
        let r = Registry::standard();
        for class in r.classes() {
            assert!(r.has_summary(class), "no summary for {class}");
        }
        for stock in [
            "StockX86VM",
            "StockExplicitProxy",
            "StockDNSServer",
            "StockReverseProxy",
            "ServerS",
        ] {
            assert!(r.has_summary(stock), "no summary for {stock}");
        }
    }

    #[test]
    fn summary_arg_validation_matches_ctor() {
        let r = Registry::standard();
        // Bad args fail the summary the same way they fail instantiation.
        assert!(r.summary("SetIPSrc", &["not-an-ip".into()]).is_err());
        assert!(r.instantiate("SetIPSrc", &["not-an-ip".into()]).is_err());
        let ok = r.summary("SetIPSrc", &["10.0.0.1".into()]).unwrap();
        match ok.kind {
            SummaryKind::Flows(f) => {
                assert_eq!(f.len(), 1);
                assert_eq!(
                    f[0].writes,
                    vec![(
                        AbsField::IpSrc,
                        FieldWrite::Const(u32::from(std::net::Ipv4Addr::new(10, 0, 0, 1)) as u64)
                    )]
                );
            }
            _ => panic!("SetIPSrc must be a transform"),
        }
    }

    #[test]
    fn queue_classes_are_cycle_breaking() {
        let r = Registry::standard();
        for (class, args) in [
            ("Queue", vec!["16".to_string()]),
            ("TimedUnqueue", vec!["120".to_string(), "100".to_string()]),
        ] {
            assert!(r.summary(class, &args).unwrap().queue_like, "{class}");
        }
        assert!(!r.summary("Counter", &[]).unwrap().queue_like);
    }

    #[test]
    fn shardability_classification() {
        let r = Registry::standard();
        // Per-connection state (flow tables keyed by the 5-tuple):
        // shardable once both directions pin to one worker.
        for (class, args) in [
            ("StatefulFirewall", vec!["allow udp".to_string()]),
            ("IPNAT", vec!["5.5.5.5".to_string()]),
            ("FlowMeter", vec![]),
            ("DPI", vec!["attack".to_string()]),
        ] {
            let s = r.summary(class, &args).unwrap();
            assert_eq!(s.shardability, Shardability::FlowPartitionable, "{class}");
            assert!(s.is_stateful(), "{class}");
        }
        // Cross-connection state (token buckets, schedulers, buffers,
        // black boxes): never shardable.
        for (class, args) in [
            ("IPRewriter", vec!["pattern - - 1.2.3.4 - 0 0".to_string()]),
            (
                "TransparentProxy",
                vec!["9.9.9.9".to_string(), "3128".to_string(), "80".to_string()],
            ),
            (
                "ChangeEnforcer",
                vec!["1.1.1.1".to_string(), "2.2.2.2".to_string()],
            ),
            ("Queue", vec!["16".to_string()]),
            ("TimedUnqueue", vec!["120".to_string(), "100".to_string()]),
            ("RateLimiter", vec!["1000".to_string()]),
            ("RoundRobinSwitch", vec!["2".to_string()]),
            ("Meter", vec!["1000".to_string()]),
            ("StockX86VM", vec![]),
        ] {
            let s = r.summary(class, &args).unwrap();
            assert_eq!(s.shardability, Shardability::Global, "{class}");
            assert!(s.is_stateful(), "{class}");
        }
        // Pure functions of the packet replicate safely under any
        // dispatch discipline.
        for (class, args) in [
            ("Counter", vec![]),
            ("CheckIPHeader", vec![]),
            ("DecIPTTL", vec![]),
            ("IPFilter", vec!["allow udp".to_string()]),
            ("SetIPSrc", vec!["10.0.0.1".to_string()]),
            ("Tee", vec!["2".to_string()]),
            ("FromNetfront", vec![]),
            ("ToNetfront", vec![]),
            ("Discard", vec![]),
        ] {
            let s = r.summary(class, &args).unwrap();
            assert_eq!(s.shardability, Shardability::Stateless, "{class}");
            assert!(!s.is_stateful(), "{class}");
        }
    }

    #[test]
    fn shardability_lattice_order() {
        use Shardability::*;
        // The config verdict is a lattice join (max): these orderings
        // are what `Registry::config_shardability` relies on.
        assert!(Stateless < FlowPartitionable);
        assert!(FlowPartitionable < Global);
        assert_eq!(Stateless.max(FlowPartitionable), FlowPartitionable);
        assert_eq!(FlowPartitionable.max(Global), Global);
        assert_eq!(Stateless.name(), "stateless");
        assert_eq!(FlowPartitionable.name(), "flow");
        assert_eq!(Global.name(), "global");
    }

    #[test]
    fn exactness_classification() {
        let r = Registry::standard();
        // Turnaround servers are exact: their flows definitely exist.
        let s = r.summary("ServerS", &[]).unwrap();
        if let SummaryKind::Flows(f) = &s.kind {
            assert!(f.iter().all(FlowSummary::is_exact));
        }
        // Pattern filters are not.
        let f = r.summary("IPFilter", &["allow udp".into()]).unwrap();
        if let SummaryKind::Flows(flows) = &f.kind {
            assert!(!flows[0].is_exact());
        }
    }
}
