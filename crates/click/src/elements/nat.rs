//! `IPNAT` — network address and port translation (NAPT).

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_packet::{FlowKey, IpProto, Packet};

use crate::{
    args::ConfigArgs,
    canonical::fnv1a_64,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// First external port handed out by the allocator.
const PORT_BASE: u16 = 1024;

/// Size of the allocatable external-port space (`PORT_BASE..=u16::MAX`).
const PORT_RANGE: u32 = u16::MAX as u32 - PORT_BASE as u32 + 1;

/// How many consecutive candidate ports the allocator probes past a
/// flow's preferred port before reclaiming the preferred port itself.
const PROBE_LIMIT: u16 = 64;

/// Default idle timeout for translation entries (5 minutes, matching
/// [`StatefulFirewall`](crate::elements::StatefulFirewall)).
pub const DEFAULT_NAT_TIMEOUT_S: f64 = 300.0;

/// One live translation: the allocated external port plus the virtual
/// time the mapping last carried a packet (either direction).
#[derive(Debug, Clone, Copy)]
struct Mapping {
    port: u16,
    last_ns: u64,
}

/// `IPNAT(PUBLIC_ADDR [, timeout SECS])` — source NAT with deterministic
/// per-flow port allocation and idle expiry.
///
/// * Input 0 / output 0: inside → outside. The source address is rewritten
///   to `PUBLIC_ADDR` and the source port to an allocated external port.
/// * Input 1 / output 1: outside → inside. Packets addressed to
///   `PUBLIC_ADDR` on an allocated port *from the mapped remote endpoint*
///   are rewritten back to the internal endpoint; everything else is
///   dropped.
///
/// The external port is a pure function of the flow key (a hash-preferred
/// port with a bounded linear probe past live mappings), so allocation
/// does not depend on arrival interleaving across *other* connections.
/// That determinism is what lets flow-sharded execution replicate a NAT:
/// each worker owns a disjoint slice of connections, and every worker
/// would assign any given connection the same external port. Mappings
/// idle longer than the timeout are reaped — both directions atomically —
/// on `tick`, freeing their ports for reuse.
///
/// One of Table 1's middleboxes: safe only when the *operator* runs it
/// (it rewrites source addresses, which the anti-spoofing rule forbids for
/// tenants).
#[derive(Debug)]
pub struct IpNat {
    public: Ipv4Addr,
    /// internal flow (directed, inside->out) -> its live mapping.
    forward: HashMap<FlowKey, Mapping>,
    /// external port -> internal flow. Entry lifetime mirrors `forward`
    /// exactly: every insert/remove updates both tables.
    reverse: HashMap<u16, FlowKey>,
    timeout_ns: u64,
    translated_out: u64,
    translated_in: u64,
    dropped: u64,
    evicted: u64,
}

impl IpNat {
    /// Creates a NAT advertising `public` with the given idle timeout.
    pub fn new(public: Ipv4Addr, timeout_ns: u64) -> IpNat {
        IpNat {
            public,
            forward: HashMap::new(),
            reverse: HashMap::new(),
            timeout_ns: timeout_ns.max(1),
            translated_out: 0,
            translated_in: 0,
            dropped: 0,
            evicted: 0,
        }
    }

    /// Parses `IPNAT(PUBLIC_ADDR [, timeout SECS])`.
    pub fn from_args(args: &ConfigArgs) -> Result<IpNat, ElementError> {
        let bad = |message: String| ElementError::BadArgs {
            class: "IPNAT",
            message,
        };
        let mut timeout_s = DEFAULT_NAT_TIMEOUT_S;
        for (i, arg) in args.all().enumerate() {
            if i == 0 {
                continue; // the public address, parsed below
            }
            if let Some(rest) = arg.strip_prefix("timeout") {
                timeout_s = rest
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad timeout '{arg}'")))?;
            } else {
                return Err(bad(format!("unexpected argument '{arg}'")));
            }
        }
        // The explicit NaN check matters: `x <= 0` waves NaN through.
        if timeout_s.is_nan() || timeout_s <= 0.0 {
            return Err(bad("timeout must be positive".to_string()));
        }
        Ok(IpNat::new(args.addr_at(0)?, (timeout_s * 1e9) as u64))
    }

    /// Number of active translations.
    pub fn mappings(&self) -> usize {
        self.forward.len()
    }

    /// Counters: (outbound translated, inbound translated, dropped).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.translated_out, self.translated_in, self.dropped)
    }

    /// How many live mappings were evicted to reclaim their port.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// The advertised public address.
    pub fn public_addr(&self) -> Ipv4Addr {
        self.public
    }

    /// The external port this flow's mapping starts probing from: a hash
    /// of the flow key, so the choice is a pure function of the flow and
    /// identical no matter which packets preceded it.
    pub fn preferred_port(key: &FlowKey) -> u16 {
        let mut bytes = [0u8; 13];
        bytes[..4].copy_from_slice(&key.src.octets());
        bytes[4..8].copy_from_slice(&key.dst.octets());
        bytes[8] = key.proto.number();
        bytes[9..11].copy_from_slice(&key.src_port.to_be_bytes());
        bytes[11..13].copy_from_slice(&key.dst_port.to_be_bytes());
        PORT_BASE + (fnv1a_64(&bytes) % PORT_RANGE as u64) as u16
    }

    /// The next candidate after `p`, wrapping from `u16::MAX` back to
    /// `PORT_BASE`.
    fn next_candidate(p: u16) -> u16 {
        if p == u16::MAX {
            PORT_BASE
        } else {
            p + 1
        }
    }

    /// Allocates an external port for `key`: the preferred port when
    /// free, else the first free port within [`PROBE_LIMIT`] candidates
    /// (wrapping). If the whole probe window is occupied, the *preferred*
    /// port's current owner is evicted — both its directions removed —
    /// and the port reassigned; under that much pressure someone must
    /// lose, and choosing the preferred-port victim keeps the choice a
    /// deterministic function of the table contents.
    fn alloc_port(&mut self, key: &FlowKey) -> u16 {
        let preferred = IpNat::preferred_port(key);
        let mut p = preferred;
        for _ in 0..PROBE_LIMIT {
            if !self.reverse.contains_key(&p) {
                return p;
            }
            p = IpNat::next_candidate(p);
        }
        // Probe window exhausted: reclaim the preferred port, evicting
        // its owner from both tables so no stale forward entry leaks.
        if let Some(victim) = self.reverse.remove(&preferred) {
            self.forward.remove(&victim);
            self.evicted += 1;
        }
        preferred
    }

    fn set_l4_ports(pkt: &mut Packet, src: Option<u16>, dst: Option<u16>) {
        match pkt.ip_proto() {
            Ok(IpProto::Udp) => {
                if let Ok(mut u) = pkt.udp_mut() {
                    if let Some(s) = src {
                        u.set_src_port(s);
                    }
                    if let Some(d) = dst {
                        u.set_dst_port(d);
                    }
                }
            }
            Ok(IpProto::Tcp) => {
                if let Ok(mut t) = pkt.tcp_mut() {
                    if let Some(s) = src {
                        t.set_src_port(s);
                    }
                    if let Some(d) = dst {
                        t.set_dst_port(d);
                    }
                }
            }
            _ => {}
        }
    }
}

impl Element for IpNat {
    fn class_name(&self) -> &'static str {
        "IPNAT"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(2, 2)
    }

    fn push(&mut self, port: usize, mut pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        let Ok(key) = FlowKey::of(&pkt) else {
            self.dropped += 1;
            return;
        };
        match port {
            0 => {
                let ext_port = match self.forward.get_mut(&key) {
                    Some(m) => {
                        m.last_ns = ctx.now_ns;
                        m.port
                    }
                    None => {
                        let p = self.alloc_port(&key);
                        self.forward.insert(
                            key,
                            Mapping {
                                port: p,
                                last_ns: ctx.now_ns,
                            },
                        );
                        self.reverse.insert(p, key);
                        p
                    }
                };
                if let Ok(mut ip) = pkt.ipv4_mut() {
                    ip.set_src(self.public);
                    ip.update_checksum();
                }
                IpNat::set_l4_ports(&mut pkt, Some(ext_port), None);
                self.translated_out += 1;
                out.push(0, pkt);
            }
            _ => {
                let Ok(ip) = pkt.ipv4() else {
                    self.dropped += 1;
                    return;
                };
                if ip.dst() != self.public {
                    self.dropped += 1;
                    return;
                }
                // The mapping only matches traffic from the remote
                // endpoint the inside host contacted (symmetric-NAT
                // filtering, same policy as the old remote-keyed table).
                let internal = self.reverse.get(&key.dst_port).copied().filter(|flow| {
                    flow.dst == key.src && flow.dst_port == key.src_port && flow.proto == key.proto
                });
                match internal {
                    Some(internal) => {
                        if let Some(m) = self.forward.get_mut(&internal) {
                            m.last_ns = ctx.now_ns;
                        }
                        if let Ok(mut ip) = pkt.ipv4_mut() {
                            ip.set_dst(internal.src);
                            ip.update_checksum();
                        }
                        IpNat::set_l4_ports(&mut pkt, None, Some(internal.src_port));
                        self.translated_in += 1;
                        out.push(1, pkt);
                    }
                    None => self.dropped += 1,
                }
            }
        }
    }

    fn tick(&mut self, ctx: &Context, _out: &mut dyn Sink) {
        let timeout = self.timeout_ns;
        let now = ctx.now_ns;
        let reverse = &mut self.reverse;
        // Both directions of an expired mapping go together, so a reaped
        // port is immediately reusable and no table entry outlives the
        // other.
        self.forward.retain(|_, m| {
            if now.saturating_sub(m.last_ns) <= timeout {
                true
            } else {
                reverse.remove(&m.port);
                false
            }
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    const PUB: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const INSIDE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);
    const SERVER: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    fn nat() -> IpNat {
        IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1")).unwrap()
    }

    fn out_key(sport: u16) -> FlowKey {
        FlowKey {
            src: INSIDE,
            dst: SERVER,
            proto: IpProto::Udp,
            src_port: sport,
            dst_port: 53,
        }
    }

    #[test]
    fn outbound_rewrites_source() {
        let mut n = nat();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp()
            .src(INSIDE, 5555)
            .dst(SERVER, 53)
            .build();
        n.push(0, pkt, &Context::default(), &mut s);
        let out = s.only(0).unwrap();
        let ip = out.ipv4().unwrap();
        assert_eq!(ip.src(), PUB);
        assert!(ip.verify_checksum());
        assert_eq!(
            out.udp().unwrap().src_port(),
            IpNat::preferred_port(&out_key(5555))
        );
        assert_eq!(out.udp().unwrap().dst_port(), 53);
    }

    #[test]
    fn reply_translated_back() {
        let mut n = nat();
        let mut s = VecSink::new();
        n.push(
            0,
            PacketBuilder::udp()
                .src(INSIDE, 5555)
                .dst(SERVER, 53)
                .build(),
            &Context::default(),
            &mut s,
        );
        let ext_port = s.pushed[0].1.udp().unwrap().src_port();
        let reply = PacketBuilder::udp()
            .src(SERVER, 53)
            .dst(PUB, ext_port)
            .build();
        n.push(1, reply, &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 2);
        let back = &s.pushed[1].1;
        assert_eq!(back.ipv4().unwrap().dst(), INSIDE);
        assert_eq!(back.udp().unwrap().dst_port(), 5555);
    }

    #[test]
    fn same_flow_keeps_mapping() {
        let mut n = nat();
        let mut s = VecSink::new();
        for _ in 0..3 {
            n.push(
                0,
                PacketBuilder::udp()
                    .src(INSIDE, 5555)
                    .dst(SERVER, 53)
                    .build(),
                &Context::default(),
                &mut s,
            );
        }
        assert_eq!(n.mappings(), 1);
        let ports: Vec<u16> = s
            .pushed
            .iter()
            .map(|(_, p)| p.udp().unwrap().src_port())
            .collect();
        assert!(ports.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut n = nat();
        let mut s = VecSink::new();
        for sport in [100u16, 200, 300] {
            n.push(
                0,
                PacketBuilder::udp()
                    .src(INSIDE, sport)
                    .dst(SERVER, 53)
                    .build(),
                &Context::default(),
                &mut s,
            );
        }
        let mut ports: Vec<u16> = s
            .pushed
            .iter()
            .map(|(_, p)| p.udp().unwrap().src_port())
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 3);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let mut n = nat();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp().src(SERVER, 53).dst(PUB, 2000).build();
        n.push(1, pkt, &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
        assert_eq!(n.counters().2, 1);
    }

    #[test]
    fn inbound_to_other_address_dropped() {
        let mut n = nat();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp()
            .src(SERVER, 53)
            .dst(Ipv4Addr::new(9, 9, 9, 9), PORT_BASE)
            .build();
        n.push(1, pkt, &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
    }

    #[test]
    fn inbound_from_wrong_remote_dropped() {
        // Symmetric-NAT filtering: the mapping only admits the remote
        // endpoint the inside host actually contacted.
        let mut n = nat();
        let mut s = VecSink::new();
        n.push(
            0,
            PacketBuilder::udp()
                .src(INSIDE, 5555)
                .dst(SERVER, 53)
                .build(),
            &Context::default(),
            &mut s,
        );
        let ext_port = s.pushed[0].1.udp().unwrap().src_port();
        let stranger = PacketBuilder::udp()
            .src(Ipv4Addr::new(6, 6, 6, 6), 53)
            .dst(PUB, ext_port)
            .build();
        n.push(1, stranger, &Context::default(), &mut s);
        assert_eq!(s.pushed.len(), 1, "stranger must not reach the inside");
        assert_eq!(n.counters().2, 1);
    }

    #[test]
    fn port_allocation_is_flow_deterministic() {
        // The same flow gets the same external port no matter what other
        // traffic preceded it — the property sharded replicas rely on.
        let mut quiet = nat();
        let mut busy = nat();
        let mut s = VecSink::new();
        for sport in 1000..1050u16 {
            busy.push(
                0,
                PacketBuilder::udp()
                    .src(Ipv4Addr::new(10, 0, 7, 7), sport)
                    .dst(SERVER, 53)
                    .build(),
                &Context::default(),
                &mut s,
            );
        }
        s.pushed.clear();
        let probe = || {
            PacketBuilder::udp()
                .src(INSIDE, 4242)
                .dst(SERVER, 443)
                .build()
        };
        quiet.push(0, probe(), &Context::default(), &mut s);
        busy.push(0, probe(), &Context::default(), &mut s);
        let p_quiet = s.pushed[0].1.udp().unwrap().src_port();
        let p_busy = s.pushed[1].1.udp().unwrap().src_port();
        assert_eq!(p_quiet, p_busy);
    }

    /// Finds `n` distinct source ports whose flows all prefer external
    /// ports inside the `PROBE_LIMIT`-wide window starting at the
    /// preferred port of `out_key(seed_sport)`.
    fn colliding_sports(seed_sport: u16, n: usize) -> Vec<u16> {
        let base = IpNat::preferred_port(&out_key(seed_sport));
        let in_window = |p: u16| {
            let off = (p as u32 + PORT_RANGE - base as u32) % PORT_RANGE;
            off < PROBE_LIMIT as u32
        };
        let mut found = vec![seed_sport];
        for sport in 1..=u16::MAX {
            if found.len() >= n {
                break;
            }
            if sport != seed_sport && in_window(IpNat::preferred_port(&out_key(sport))) {
                found.push(sport);
            }
        }
        assert!(
            found.len() >= n,
            "need {n} colliding flows, search space too small"
        );
        found
    }

    #[test]
    fn colliding_preferred_ports_do_not_clobber() {
        // Regression for the wrapping cursor allocator: when a second
        // flow wants an external port that is still owned by a live
        // mapping, the old allocator overwrote the reverse entry
        // (misdelivering the first flow's replies to the second flow's
        // host) and leaked the first flow's forward entry forever. The
        // probing allocator must keep both mappings live and intact.
        let sports = colliding_sports(5555, 2);
        let mut n = nat();
        let mut s = VecSink::new();
        for &sport in &sports {
            n.push(
                0,
                PacketBuilder::udp()
                    .src(INSIDE, sport)
                    .dst(SERVER, 53)
                    .build(),
                &Context::default(),
                &mut s,
            );
        }
        let eports: Vec<u16> = s
            .pushed
            .iter()
            .map(|(_, p)| p.udp().unwrap().src_port())
            .collect();
        assert_ne!(eports[0], eports[1], "live mapping's port re-issued");
        // No leak: both tables track exactly the two live mappings.
        assert_eq!(n.forward.len(), 2);
        assert_eq!(n.reverse.len(), 2);
        // Both flows' replies still reach the right internal port.
        for (i, &sport) in sports.iter().enumerate() {
            let reply = PacketBuilder::udp()
                .src(SERVER, 53)
                .dst(PUB, eports[i])
                .build();
            n.push(1, reply, &Context::default(), &mut s);
            let back = s.pushed.last().unwrap();
            assert_eq!(back.0, 1);
            assert_eq!(back.1.udp().unwrap().dst_port(), sport, "flow {i}");
        }
        assert_eq!(n.counters().2, 0, "nothing dropped");
    }

    #[test]
    fn probe_wraps_from_port_max_to_base() {
        // Occupy a flow's preferred port when that port is near u16::MAX,
        // plus PORT_BASE: the probe must walk off the end of the port
        // space and continue from PORT_BASE (the old allocator's wrap
        // re-issued the live PORT_BASE mapping here).
        let sport = (1..=u16::MAX)
            .find(|&sp| IpNat::preferred_port(&out_key(sp)) >= u16::MAX - (PROBE_LIMIT - 3))
            .expect("some flow prefers a port near u16::MAX");
        let key = out_key(sport);
        let preferred = IpNat::preferred_port(&key);
        let mut n = nat();
        // Pin synthetic occupants onto every port from `preferred` up to
        // and including u16::MAX, plus PORT_BASE, leaving PORT_BASE + 1
        // as the first free candidate (all within the probe window).
        let mut occupant = |p: u16, i: u16| {
            let k = out_key(60_000u16.wrapping_add(i));
            n.forward.insert(
                k,
                Mapping {
                    port: p,
                    last_ns: 0,
                },
            );
            n.reverse.insert(p, k);
        };
        let mut i = 0;
        let mut p = preferred;
        loop {
            occupant(p, i);
            i += 1;
            if p == u16::MAX {
                break;
            }
            p += 1;
        }
        occupant(PORT_BASE, i);
        let got = n.alloc_port(&key);
        assert_eq!(got, PORT_BASE + 1, "probe must wrap past u16::MAX");
        assert_eq!(n.evictions(), 0);
    }

    #[test]
    fn exhausted_probe_window_evicts_preferred_atomically() {
        let mut n = nat();
        let key = out_key(9999);
        let preferred = IpNat::preferred_port(&key);
        // Fill the entire probe window with live occupants.
        let mut p = preferred;
        for i in 0..PROBE_LIMIT {
            let k = out_key(40_000 + i);
            n.forward.insert(
                k,
                Mapping {
                    port: p,
                    last_ns: 0,
                },
            );
            n.reverse.insert(p, k);
            p = IpNat::next_candidate(p);
        }
        let victim = n.reverse[&preferred];
        let got = n.alloc_port(&key);
        assert_eq!(got, preferred, "eviction reclaims the preferred port");
        assert_eq!(n.evictions(), 1);
        // The victim vanished from *both* tables — no forward leak.
        assert!(!n.forward.contains_key(&victim));
        assert_eq!(n.forward.len(), PROBE_LIMIT as usize - 1);
        assert_eq!(n.reverse.len(), PROBE_LIMIT as usize - 1);
    }

    #[test]
    fn eviction_under_pressure_keeps_tables_in_lockstep() {
        // Fill a flow's whole probe window with live occupants, then push
        // the flow through the real datapath: the preferred-port victim
        // must vanish from *both* tables (the old allocator diverged:
        // reverse overwritten, forward retained forever) and replies on
        // the contested port must reach the *new* owner.
        let key = out_key(9_123);
        let preferred = IpNat::preferred_port(&key);
        let mut n = nat();
        let mut p = preferred;
        for i in 0..PROBE_LIMIT {
            let k = out_key(50_000 + i);
            n.forward.insert(
                k,
                Mapping {
                    port: p,
                    last_ns: 0,
                },
            );
            n.reverse.insert(p, k);
            p = IpNat::next_candidate(p);
        }
        let victim = n.reverse[&preferred];
        let mut s = VecSink::new();
        n.push(
            0,
            PacketBuilder::udp()
                .src(INSIDE, key.src_port)
                .dst(SERVER, 53)
                .build(),
            &Context::default(),
            &mut s,
        );
        assert_eq!(s.pushed[0].1.udp().unwrap().src_port(), preferred);
        assert_eq!(n.evictions(), 1);
        assert_eq!(n.forward.len(), n.reverse.len(), "tables diverged");
        assert!(!n.forward.contains_key(&victim), "victim's forward leaked");
        // A reply to the contested port now belongs to the new owner.
        let reply = PacketBuilder::udp()
            .src(SERVER, 53)
            .dst(PUB, preferred)
            .build();
        n.push(1, reply, &Context::default(), &mut s);
        let back = s.pushed.last().unwrap();
        assert_eq!(back.1.udp().unwrap().dst_port(), key.src_port);
        // Every reverse entry points at a live forward entry with the
        // same port.
        for (&port, flow) in &n.reverse {
            assert_eq!(n.forward[flow].port, port);
        }
    }

    #[test]
    fn idle_mappings_expire_and_free_ports() {
        let mut n =
            IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1, timeout 60")).unwrap();
        let mut s = VecSink::new();
        n.push(
            0,
            PacketBuilder::udp()
                .src(INSIDE, 5555)
                .dst(SERVER, 53)
                .build(),
            &Context::at(0),
            &mut s,
        );
        let ext_port = s.pushed[0].1.udp().unwrap().src_port();
        assert_eq!(n.mappings(), 1);

        // 61 virtual seconds idle: the reaper removes both directions.
        n.tick(&Context::at(61_000_000_000), &mut s);
        assert_eq!(n.mappings(), 0);
        assert!(n.reverse.is_empty(), "port must be freed with the mapping");

        // The stale reply no longer routes inside.
        let reply = PacketBuilder::udp()
            .src(SERVER, 53)
            .dst(PUB, ext_port)
            .build();
        n.push(1, reply, &Context::at(61_000_000_001), &mut s);
        assert_eq!(s.pushed.len(), 1);

        // And a fresh flow can claim the freed port again.
        n.push(
            0,
            PacketBuilder::udp()
                .src(INSIDE, 5555)
                .dst(SERVER, 53)
                .build(),
            &Context::at(62_000_000_000),
            &mut s,
        );
        assert_eq!(
            s.pushed.last().unwrap().1.udp().unwrap().src_port(),
            ext_port
        );
    }

    #[test]
    fn traffic_refreshes_idle_timer_in_both_directions() {
        let mut n =
            IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1, timeout 60")).unwrap();
        let mut s = VecSink::new();
        n.push(
            0,
            PacketBuilder::udp()
                .src(INSIDE, 5555)
                .dst(SERVER, 53)
                .build(),
            &Context::at(0),
            &mut s,
        );
        let ext_port = s.pushed[0].1.udp().unwrap().src_port();
        // A reply at t=50s refreshes the mapping…
        let reply = PacketBuilder::udp()
            .src(SERVER, 53)
            .dst(PUB, ext_port)
            .build();
        n.push(1, reply, &Context::at(50_000_000_000), &mut s);
        // …so a reap at t=100s (50s idle) keeps it.
        n.tick(&Context::at(100_000_000_000), &mut s);
        assert_eq!(n.mappings(), 1);
        // Another 61 idle seconds and it goes.
        n.tick(&Context::at(161_000_000_000), &mut s);
        assert_eq!(n.mappings(), 0);
    }

    #[test]
    fn bad_args_rejected() {
        assert!(IpNat::from_args(&ConfigArgs::parse("IPNAT", "")).is_err());
        assert!(IpNat::from_args(&ConfigArgs::parse("IPNAT", "not-an-ip")).is_err());
        assert!(IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1, timeout 0")).is_err());
        assert!(IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1, timeout -5")).is_err());
        assert!(IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1, timeout nan")).is_err());
        assert!(IpNat::from_args(&ConfigArgs::parse("IPNAT", "203.0.113.1, bogus")).is_err());
    }
}
