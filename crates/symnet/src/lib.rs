//! # innet-symnet
//!
//! SymNet-style symbolic execution over abstract models of packet
//! processing elements — the static-analysis engine at the heart of In-Net
//! (paper §3, §4.3, and the SymNet paper it builds on).
//!
//! The network is treated as a distributed program and packets as its
//! variables: a [`SymPacket`] represents a *set* of concrete packets whose
//! header fields are symbolic values (constants or constrained variables).
//! Element models transform and branch symbolic packets; the engine
//! ([`SymGraph::run`]) explores every feasible path, recording per-flow
//! traces, field-write histories, and constraint stores.
//!
//! The models follow the paper's tractability restrictions: no loops, no
//! dynamic memory allocation, and middlebox flow state *pushed into the
//! flow itself* (see `FirewallModel`), making the analysis oblivious to
//! flow arrival order.
//!
//! The [`security`] module implements the In-Net security rules
//! (anti-spoofing, the ownership/no-transit rule, and default-off) as
//! tri-state predicates over egress flows, reproducing the paper's
//! Table 1.
//!
//! ## Example: the paper's Figure 2 walk-through
//!
//! ```
//! use innet_click::{ClickConfig, Registry};
//! use innet_symnet::{build_sym_graph, ExecOptions, Field, SymPacket};
//!
//! // Client -> stateful firewall -> server S (which flips the addresses)
//! // -> back through the firewall.
//! let cfg = ClickConfig::parse(r#"
//!     client :: FromNetfront();
//!     fw :: StatefulFirewall(allow udp);
//!     s :: ServerS();
//!     back :: ToNetfront();
//!     client -> [0]fw; fw[0] -> s -> [1]fw; fw[1] -> back;
//! "#).unwrap();
//!
//! let g = build_sym_graph(&cfg, &Registry::standard()).unwrap();
//! let res = g.run_named("client", 0, SymPacket::unconstrained(),
//!                       &ExecOptions::default()).unwrap();
//!
//! // Exactly one flow class survives: UDP, payload untouched, response
//! // destination bound to the original client address.
//! assert_eq!(res.egress.len(), 1);
//! let flow = &res.egress[0].1;
//! assert!(flow.provably_eq(Field::Proto, 17));
//! assert!(!flow.ever_written(Field::Payload));
//! assert!(flow.provably_same(flow.get(Field::IpDst),
//!                            flow.ingress.get(Field::IpSrc)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod model;
mod models;
mod packet;
pub mod pattern;
pub mod plist;
pub mod security;
pub mod summary;
mod value;

pub use field::{Field, FieldMap, ALL_FIELDS};
pub use model::{ExecOptions, ExecResult, Observe, SymElement, SymError, SymGraph, SymOut};
pub use models::{
    build_sym_graph, build_sym_graph_cached, model_for, AnyOutputModel, ChangeEnforcerModel,
    DecTtlModel, DropModel, EgressModel, ExplicitProxyModel, FirewallModel, IdentityModel,
    IpClassifierModel, IpFilterModel, ModelCache, MulticastModel, NatModel, OpaqueVmModel,
    PingResponderModel, RewriterModel, SetFieldModel, StaticLookupModel, TransparentProxyModel,
    TunnelDecapModel, TunnelEncapModel, TurnaroundServerModel,
};
pub use packet::{Hop, SymPacket, WriteRec};
pub use security::{
    check_module, check_module_summarized, check_module_with_stats, CheckStats, RequesterClass,
    SecurityContext, SecurityReport, SummarySource, Tri, Verdict,
};
pub use summary::{
    compose, entry_chain, summarize_chain, summarize_element, BranchOutcome, EntryChain,
    SummaryBranch, SummaryVal, SymSummary,
};
pub use value::{Origin, RangeSet, SymValue, VarId, VarInfo};
