//! A small CDN on In-Net (§8): sandboxed x86 cache modules near the
//! clients, with geolocation spreading the load.
//!
//! Run with: `cargo run -p innet-examples --bin cdn`

use innet::experiments::fig16_cdn::{cdn_downloads, percentile, CdnParams};
use innet::prelude::*;

fn main() {
    let mut ctl = Controller::new(Topology::figure3());
    ctl.register_client(
        "origin-italy",
        RequesterClass::ThirdParty,
        vec!["198.51.100.1".parse().unwrap()],
    );

    // The caches are squid-in-a-VM: opaque x86 images. Static analysis
    // cannot prove them safe, so the controller runs each behind a
    // ChangeEnforcer sandbox — exactly the paper's deployment.
    for region in ["romania", "germany", "italy"] {
        let req = ClientRequest::parse(&format!("stock cache-{region}: x86-vm")).unwrap();
        let resp = ctl.deploy("origin-italy", req).expect("deployable");
        assert!(resp.sandboxed, "x86 caches must be sandboxed");
        println!(
            "cache-{region}: {} on {} (sandboxed)",
            resp.public_addr, resp.platform
        );
    }

    // 75 clients download a 1 KB object from the origin and from their
    // regional cache (Figure 16's CDF).
    let clients = cdn_downloads(&CdnParams::default());
    let origin: Vec<f64> = clients.iter().map(|c| c.origin_ms).collect();
    let cdn: Vec<f64> = clients.iter().map(|c| c.cdn_ms).collect();

    println!("\n1 KB download delay CDF (ms):");
    println!("{:>6}  {:>8}  {:>8}", "pct", "origin", "CDN");
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
        println!(
            "{:>5}%  {:>8.1}  {:>8.1}",
            p,
            percentile(origin.clone(), p),
            percentile(cdn.clone(), p)
        );
    }
    println!(
        "\nmedian {:.1}x lower, p90 {:.1}x lower — the paper reports 2x and 4x",
        percentile(origin.clone(), 50.0) / percentile(cdn.clone(), 50.0),
        percentile(origin, 90.0) / percentile(cdn, 90.0),
    );
}
