//! Packet classification: raw byte patterns (`Classifier`) and the
//! tcpdump-style `IPClassifier`.

use std::any::Any;

use innet_packet::{pattern::PatternExpr, Packet};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// One `Classifier` pattern: byte comparisons at fixed offsets, or a
/// catch-all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BytePattern {
    /// `offset/value[%mask]` comparisons that must all hold.
    Match(Vec<ByteCheck>),
    /// `-` — matches everything.
    CatchAll,
}

/// A single masked byte-string comparison at an offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteCheck {
    /// Byte offset from the start of the frame.
    pub offset: usize,
    /// Expected value bytes.
    pub value: Vec<u8>,
    /// Mask applied to both packet and value bytes (same length as value).
    pub mask: Vec<u8>,
}

impl ByteCheck {
    /// Whether the masked comparison holds against `pkt`'s bytes.
    ///
    /// `offset` and `value` are tenant-controlled, so the bounds check
    /// must not compute `offset + value.len()` — at `offset = usize::MAX`
    /// that sum overflows (a panic in debug builds, a wrapped-and-small
    /// bound that indexes out of range in release builds). Comparing
    /// against the bytes *remaining past* the offset cannot overflow.
    pub fn matches(&self, pkt: &Packet) -> bool {
        let data = pkt.bytes();
        if data.len().saturating_sub(self.offset) < self.value.len() {
            return false;
        }
        data[self.offset..]
            .iter()
            .zip(self.value.iter().zip(self.mask.iter()))
            .all(|(d, (v, m))| d & m == v & m)
    }
}

fn parse_hex_nibbles(s: &str) -> Option<Vec<u8>> {
    if s.is_empty() || !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

impl BytePattern {
    /// Parses one pattern: space-separated `offset/hex[%hexmask]` terms or
    /// `-`.
    pub fn parse(s: &str) -> Result<BytePattern, String> {
        let s = s.trim();
        if s == "-" {
            return Ok(BytePattern::CatchAll);
        }
        let mut checks = Vec::new();
        for term in s.split_whitespace() {
            let (off_s, rest) = term
                .split_once('/')
                .ok_or_else(|| format!("bad classifier term '{term}'"))?;
            let offset: usize = off_s
                .parse()
                .map_err(|_| format!("bad offset in '{term}'"))?;
            let (val_s, mask_s) = match rest.split_once('%') {
                Some((v, m)) => (v, Some(m)),
                None => (rest, None),
            };
            let value = parse_hex_nibbles(val_s).ok_or_else(|| format!("bad hex in '{term}'"))?;
            let mask = match mask_s {
                Some(m) => {
                    let mask =
                        parse_hex_nibbles(m).ok_or_else(|| format!("bad mask in '{term}'"))?;
                    if mask.len() != value.len() {
                        return Err(format!("mask/value length mismatch in '{term}'"));
                    }
                    mask
                }
                None => vec![0xff; value.len()],
            };
            checks.push(ByteCheck {
                offset,
                value,
                mask,
            });
        }
        if checks.is_empty() {
            return Err("empty classifier pattern".to_string());
        }
        Ok(BytePattern::Match(checks))
    }

    /// Whether the whole pattern matches `pkt`.
    pub fn matches(&self, pkt: &Packet) -> bool {
        match self {
            BytePattern::CatchAll => true,
            BytePattern::Match(checks) => checks.iter().all(|c| c.matches(pkt)),
        }
    }
}

/// `Classifier(PATTERN, PATTERN, ...)` — sends each packet to the output of
/// the first matching raw byte pattern; unmatched packets are dropped.
#[derive(Debug)]
pub struct Classifier {
    patterns: Vec<BytePattern>,
    dropped: u64,
}

impl Classifier {
    /// Parses `Classifier(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<Classifier, ElementError> {
        if args.is_empty() {
            return Err(ElementError::BadArgs {
                class: "Classifier",
                message: "needs at least one pattern".to_string(),
            });
        }
        let patterns = args
            .all()
            .map(BytePattern::parse)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|m| ElementError::BadArgs {
                class: "Classifier",
                message: m,
            })?;
        Ok(Classifier {
            patterns,
            dropped: 0,
        })
    }

    /// The parsed patterns, in match order (the plan compiler lowers
    /// these into a [`crate::compile::CompiledRouter`] byte program).
    pub fn patterns(&self) -> &[BytePattern] {
        &self.patterns
    }

    /// Packets that matched no pattern.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for Classifier {
    fn class_name(&self) -> &'static str {
        "Classifier"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, self.patterns.len())
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        for (i, p) in self.patterns.iter().enumerate() {
            if p.matches(&pkt) {
                out.push(i, pkt);
                return;
            }
        }
        self.dropped += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `IPClassifier(EXPR, EXPR, ...)` — sends each packet to the output of the
/// first matching tcpdump-style expression; unmatched packets are dropped.
///
/// Rules are scanned linearly, as in Click. The platform's consolidation
/// layer uses an `IPClassifier` with one `dst host` rule per tenant as its
/// demultiplexer, which is exactly the setup measured in the paper's
/// Figure 8 — the linear scan is what eventually bends that curve.
#[derive(Debug)]
pub struct IPClassifier {
    rules: Vec<PatternExpr>,
    /// Per-rule compiled fast path (Click compiles classifier programs;
    /// the common `dst host A` demux rule becomes one integer compare).
    compiled: Vec<CompiledRule>,
    dropped: u64,
}

/// The compiled form of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompiledRule {
    /// `dst host A`: destination equals the value.
    DstHost(u32),
    /// Anything else: evaluate the expression tree.
    General,
}

fn compile_rule(rule: &PatternExpr) -> CompiledRule {
    use innet_packet::pattern::{Atom, Dir};
    if let PatternExpr::Atom(Atom::Net(Dir::Dst, net)) = rule {
        if net.prefix_len() == 32 {
            return CompiledRule::DstHost(net.first_u32());
        }
    }
    CompiledRule::General
}

impl IPClassifier {
    /// Builds a classifier from parsed rules.
    pub fn new(rules: Vec<PatternExpr>) -> IPClassifier {
        let compiled = rules.iter().map(compile_rule).collect();
        IPClassifier {
            rules,
            compiled,
            dropped: 0,
        }
    }

    /// Parses `IPClassifier(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<IPClassifier, ElementError> {
        if args.is_empty() {
            return Err(ElementError::BadArgs {
                class: "IPClassifier",
                message: "needs at least one rule".to_string(),
            });
        }
        Ok(IPClassifier::new(args.patterns()?))
    }

    /// The parsed rules, in match order.
    pub fn rules(&self) -> &[PatternExpr] {
        &self.rules
    }

    /// Packets that matched no rule.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for IPClassifier {
    fn class_name(&self) -> &'static str {
        "IPClassifier"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, self.rules.len())
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        // Parse the headers once, scan the compiled rules against the view.
        let view = innet_packet::pattern::PacketView::of(&pkt);
        let is_ip = view.proto.is_some();
        for (i, c) in self.compiled.iter().enumerate() {
            let hit = match c {
                CompiledRule::DstHost(a) => is_ip && view.dst == *a,
                CompiledRule::General => self.rules[i].matches_view(&view),
            };
            if hit {
                out.push(i, pkt);
                return;
            }
        }
        self.dropped += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn byte_pattern_ethertype() {
        // 12/0800 matches the IPv4 ethertype of built packets.
        let p = BytePattern::parse("12/0800").unwrap();
        assert!(p.matches(&PacketBuilder::udp().build()));
        let p6 = BytePattern::parse("12/86dd").unwrap();
        assert!(!p6.matches(&PacketBuilder::udp().build()));
    }

    #[test]
    fn byte_pattern_mask() {
        // Match only the low nibble of the protocol byte (offset 23).
        let p = BytePattern::parse("23/01%0f").unwrap();
        let udp = PacketBuilder::udp().build(); // proto 17 = 0x11 -> low nibble 1.
        assert!(p.matches(&udp));
    }

    #[test]
    fn classifier_first_match_wins() {
        let args = ConfigArgs::parse("Classifier", "12/0800, -");
        let mut c = Classifier::from_args(&args).unwrap();
        let mut s = VecSink::new();
        c.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert_eq!(s.pushed[0].0, 0, "IPv4 matched before the catch-all");
    }

    #[test]
    fn classifier_drops_unmatched() {
        let args = ConfigArgs::parse("Classifier", "12/86dd");
        let mut c = Classifier::from_args(&args).unwrap();
        let mut s = VecSink::new();
        c.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
        assert_eq!(c.dropped(), 1);
    }

    #[test]
    fn ip_classifier_routes_by_rule() {
        let args = ConfigArgs::parse("IPClassifier", "udp dst port 53, udp, -");
        let mut c = IPClassifier::from_args(&args).unwrap();
        let mut s = VecSink::new();
        let dns = PacketBuilder::udp()
            .dst(std::net::Ipv4Addr::new(1, 1, 1, 1), 53)
            .build();
        let other_udp = PacketBuilder::udp()
            .dst(std::net::Ipv4Addr::new(1, 1, 1, 1), 99)
            .build();
        let tcp = PacketBuilder::tcp().build();
        c.push(0, dns, &Context::default(), &mut s);
        c.push(0, other_udp, &Context::default(), &mut s);
        c.push(0, tcp, &Context::default(), &mut s);
        let ports: Vec<usize> = s.pushed.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![0, 1, 2]);
    }

    #[test]
    fn compiled_dst_host_agrees_with_general() {
        use std::net::Ipv4Addr;
        let args = ConfigArgs::parse(
            "IPClassifier",
            "dst host 10.0.0.7, dst net 10.0.0.0/8, udp, -",
        );
        let mut c = IPClassifier::from_args(&args).unwrap();
        let mut s = VecSink::new();
        let cases = [
            (
                PacketBuilder::udp()
                    .dst(Ipv4Addr::new(10, 0, 0, 7), 1)
                    .build(),
                0usize,
            ),
            (
                PacketBuilder::udp()
                    .dst(Ipv4Addr::new(10, 9, 9, 9), 1)
                    .build(),
                1,
            ),
            (
                PacketBuilder::udp()
                    .dst(Ipv4Addr::new(9, 9, 9, 9), 1)
                    .build(),
                2,
            ),
            (
                PacketBuilder::tcp()
                    .dst(Ipv4Addr::new(9, 9, 9, 9), 1)
                    .build(),
                3,
            ),
        ];
        for (pkt, want) in cases {
            s.pushed.clear();
            c.push(0, pkt, &Context::default(), &mut s);
            assert_eq!(s.pushed[0].0, want);
        }
    }

    #[test]
    fn bad_patterns_rejected() {
        assert!(BytePattern::parse("12-0800").is_err());
        assert!(BytePattern::parse("x/0800").is_err());
        assert!(BytePattern::parse("12/080").is_err());
        assert!(BytePattern::parse("12/0800%ff").is_err());
        assert!(Classifier::from_args(&ConfigArgs::parse("Classifier", "")).is_err());
        assert!(IPClassifier::from_args(&ConfigArgs::parse("IPClassifier", "")).is_err());
    }
}
