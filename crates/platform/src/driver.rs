//! `FleetDriver`: the one place fleet time advances.
//!
//! PR 9's fleet grew an ad-hoc control surface — callers hand-rolled
//! `inject` / `inject_at` / `advance` / `migrate` / `rebalance` /
//! `reclaim_idle` loops, each with its own ordering bugs waiting to
//! happen. The driver collapses that into a builder + event loop:
//!
//! ```
//! use innet_platform::{Fleet, FleetDriver};
//!
//! let fleet = Fleet::single_host(4 * 1024);
//! let run = FleetDriver::new(fleet).until(1_000_000_000).run();
//! assert_eq!(run.stats.injected, 0);
//! # let _ = run.fleet;
//! ```
//!
//! Everything is scheduled: packets ([`FleetDriver::inject`],
//! [`FleetDriver::inject_at`]), migrations ([`FleetDriver::migrate`]),
//! periodic triggers ([`FleetDriver::rebalance_every`],
//! [`FleetDriver::reclaim_every`], [`FleetDriver::on_tick`]), a traffic
//! matrix ([`FleetDriver::traffic`]), and scenario events
//! ([`FleetDriver::events`]). [`FleetDriver::run`] merges all of it
//! into one deterministic timeline — items fire in `(time, insertion)`
//! order and the fleet advances to each item's instant — and returns a
//! [`DriverRun`] with the fleet, its outputs, and per-tenant failover
//! records.
//!
//! A zero-event run is byte- and order-identical to the hand-rolled
//! inject/advance pattern it replaces (pinned by a differential test),
//! so the old surface could be deprecated rather than re-specified.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

use innet_packet::Packet;
use innet_sim::des::SimTime;
use innet_topology::NodeId;

use crate::fleet::{Fleet, FleetStats};
use crate::scenario::{
    apply_event, rehome_tenant, RehomeRecord, Scenario, ScenarioHooks, TopoHooks,
};
use crate::traffic::TrafficMatrix;

/// Default failover detection delay before stranded tenants re-home:
/// 50 ms, a conservative health-check timeout.
const DEFAULT_DETECTION_NS: SimTime = 50_000_000;

/// One timeline item. Processing order is `(at, seq)` — insertion
/// order breaks simultaneity ties, so runs are fully deterministic.
enum Work {
    /// Deliver a packet (home delivery when `ingress` is `None`).
    Packet {
        ingress: Option<NodeId>,
        from_matrix: bool,
        pkt: Packet,
    },
    /// Start a live migration.
    Migrate { addr: Ipv4Addr, to: NodeId },
    /// Apply scenario event `idx` of the attached scenario.
    Event { idx: usize },
    /// Re-home a stranded tenant (scheduled `detection_ns` after its
    /// platform died).
    Rehome {
        addr: Ipv4Addr,
        dead: NodeId,
        killed_at: SimTime,
    },
    /// Periodic load rebalance.
    Rebalance { threshold: usize },
    /// Periodic idle-VM reclaim.
    Reclaim { idle_ns: SimTime },
    /// User callback `idx` of the registered tick closures.
    Tick { idx: usize },
}

struct Item {
    at: SimTime,
    seq: u64,
    work: Work,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for Item {}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What a [`FleetDriver::run`] produced.
pub struct DriverRun {
    /// The fleet, returned for inspection or further driving.
    pub fleet: Fleet,
    /// Every transmission, as `(platform, iface, packet)` in emission
    /// order.
    pub out: Vec<(NodeId, u16, Packet)>,
    /// Fleet counters at the end of the run.
    pub stats: FleetStats,
    /// One record per failover re-home attempt, in execution order.
    pub rehomes: Vec<RehomeRecord>,
    /// Consolidation moves executed on the data plane.
    pub consolidation_moves: Vec<(Ipv4Addr, NodeId, NodeId)>,
    /// Moves started by periodic rebalance triggers.
    pub rebalance_moves: Vec<(Ipv4Addr, NodeId, NodeId)>,
    /// CDN replica registrations added by `CdnTier` events.
    pub cdn_edges: usize,
    /// Packets the traffic matrix injected.
    pub traffic_injected: u64,
    /// Scheduled operations that failed (bad migration, dead ingress).
    pub errors: u64,
}

/// Builder + event loop driving a [`Fleet`] through a scenario. See
/// the module docs for the model.
pub struct FleetDriver<'h> {
    fleet: Fleet,
    horizon: SimTime,
    detection_ns: SimTime,
    seq: u64,
    items: BinaryHeap<Reverse<Item>>,
    scenario: Option<Scenario>,
    traffic: Option<TrafficMatrix>,
    hooks: Option<Box<dyn ScenarioHooks + 'h>>,
    #[allow(clippy::type_complexity)]
    ticks: Vec<(SimTime, Box<dyn FnMut(&mut Fleet, SimTime) + 'h>)>,
    rebalance: Option<(SimTime, usize)>,
    reclaim: Option<(SimTime, SimTime)>,
}

impl<'h> FleetDriver<'h> {
    /// Takes ownership of the fleet; [`DriverRun::fleet`] returns it.
    pub fn new(fleet: Fleet) -> FleetDriver<'h> {
        FleetDriver {
            fleet,
            horizon: 0,
            detection_ns: DEFAULT_DETECTION_NS,
            seq: 0,
            items: BinaryHeap::new(),
            scenario: None,
            traffic: None,
            hooks: None,
            ticks: Vec::new(),
            rebalance: None,
            reclaim: None,
        }
    }

    fn push(&mut self, at: SimTime, work: Work) {
        self.items.push(Reverse(Item {
            at,
            seq: self.seq,
            work,
        }));
        self.seq += 1;
    }

    /// Runs the timeline out to `horizon` (the run always ends with an
    /// advance to this instant). The effective horizon is at least the
    /// latest scheduled item, so explicitly scheduled work never
    /// silently drops off the end.
    pub fn until(mut self, horizon: SimTime) -> Self {
        self.horizon = self.horizon.max(horizon);
        self
    }

    /// Failover detection delay between a platform dying and its
    /// tenants re-homing (default 50 ms).
    pub fn failover_detection(mut self, ns: SimTime) -> Self {
        self.detection_ns = ns;
        self
    }

    /// Schedules a packet for home delivery at `at` (the oracle path:
    /// no fabric cost).
    pub fn inject(mut self, at: SimTime, pkt: Packet) -> Self {
        self.push(
            at,
            Work::Packet {
                ingress: None,
                from_matrix: false,
                pkt,
            },
        );
        self
    }

    /// Schedules a packet arriving at platform `ingress` at `at`; the
    /// fabric is paid if the serving copy lives elsewhere.
    pub fn inject_at(mut self, at: SimTime, ingress: NodeId, pkt: Packet) -> Self {
        self.push(
            at,
            Work::Packet {
                ingress: Some(ingress),
                from_matrix: false,
                pkt,
            },
        );
        self
    }

    /// Schedules a live migration of `addr` to `to` at `at`.
    pub fn migrate(mut self, at: SimTime, addr: Ipv4Addr, to: NodeId) -> Self {
        self.push(at, Work::Migrate { addr, to });
        self
    }

    /// Attaches a scenario whose events fire at their scheduled times.
    pub fn events(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Attaches a traffic matrix: its schedule is paced into the
    /// timeline (segment-wise between scenario events, since those
    /// change rates and ingress points), and its per-tenant demand
    /// weights drive demand-aware rebalancing.
    pub fn traffic(mut self, matrix: TrafficMatrix) -> Self {
        self.traffic = Some(matrix);
        self
    }

    /// Attaches placement hooks (default: [`TopoHooks`]). The
    /// controller crate provides hooks backed by ranked placement and
    /// `plan_fleet`.
    pub fn hooks(mut self, hooks: impl ScenarioHooks + 'h) -> Self {
        self.hooks = Some(Box::new(hooks));
        self
    }

    /// Runs `f(&mut fleet, now)` every `period` until the horizon.
    pub fn on_tick(mut self, period: SimTime, f: impl FnMut(&mut Fleet, SimTime) + 'h) -> Self {
        self.ticks.push((period.max(1), Box::new(f)));
        self
    }

    /// Rebalances the fleet every `period` at the given threshold
    /// (demand-weighted when a traffic matrix is attached).
    pub fn rebalance_every(mut self, period: SimTime, threshold: usize) -> Self {
        self.rebalance = Some((period.max(1), threshold));
        self
    }

    /// Reclaims VMs idle longer than `idle_ns` every `period`.
    pub fn reclaim_every(mut self, period: SimTime, idle_ns: SimTime) -> Self {
        self.reclaim = Some((period.max(1), idle_ns));
        self
    }

    /// Runs the merged timeline to the horizon. Each item fires in
    /// `(time, insertion)` order and the fleet advances to its instant,
    /// so outputs interleave exactly as a hand-rolled
    /// inject-then-advance loop would produce them.
    pub fn run(self) -> DriverRun {
        let FleetDriver {
            mut fleet,
            horizon,
            detection_ns,
            mut seq,
            mut items,
            scenario,
            mut traffic,
            mut hooks,
            mut ticks,
            rebalance,
            reclaim,
        } = self;

        let push =
            |items: &mut BinaryHeap<Reverse<Item>>, seq: &mut u64, at: SimTime, work: Work| {
                items.push(Reverse(Item {
                    at,
                    seq: *seq,
                    work,
                }));
                *seq += 1;
            };

        // The horizon covers every explicitly scheduled item.
        let mut horizon = horizon;
        for Reverse(item) in items.iter() {
            horizon = horizon.max(item.at);
        }
        if let Some(s) = &scenario {
            for &(at, _) in s.events() {
                horizon = horizon.max(at);
            }
        }

        // Expand periodic triggers out to the horizon.
        if let Some((period, threshold)) = rebalance {
            let mut t = period;
            while t <= horizon {
                push(&mut items, &mut seq, t, Work::Rebalance { threshold });
                t += period;
            }
        }
        if let Some((period, idle_ns)) = reclaim {
            let mut t = period;
            while t <= horizon {
                push(&mut items, &mut seq, t, Work::Reclaim { idle_ns });
                t += period;
            }
        }
        for (idx, &(period, _)) in ticks.iter().enumerate() {
            let mut t = period;
            while t <= horizon {
                push(&mut items, &mut seq, t, Work::Tick { idx });
                t += period;
            }
        }
        if let Some(s) = &scenario {
            for (idx, &(at, _)) in s.events().iter().enumerate() {
                push(&mut items, &mut seq, at, Work::Event { idx });
            }
        }

        // Scenario event times are rate-change boundaries: pace the
        // matrix segment-wise so multiplier and ingress changes take
        // effect exactly at their event.
        let mut boundaries: Vec<SimTime> = scenario
            .iter()
            .flat_map(|s| s.events().iter().map(|&(at, _)| at))
            .collect();
        boundaries.sort_unstable();
        boundaries.push(horizon);
        let mut next_boundary = 0usize;
        if let Some(m) = traffic.as_mut() {
            for (at, ingress, pkt) in m.pace(boundaries[0].min(horizon)) {
                push(
                    &mut items,
                    &mut seq,
                    at,
                    Work::Packet {
                        ingress: Some(ingress),
                        from_matrix: true,
                        pkt,
                    },
                );
            }
            next_boundary = 1;
            fleet.attach_demand(m.demand_by_tenant());
        }

        let mut default_hooks = TopoHooks;

        let mut out = Vec::new();
        let mut rehomes = Vec::new();
        let mut consolidation_moves = Vec::new();
        let mut rebalance_moves = Vec::new();
        let mut cdn_edges = 0usize;
        let mut traffic_injected = 0u64;
        let mut errors = 0u64;

        while let Some(Reverse(item)) = items.pop() {
            let at = item.at;
            // Control actions act on a fleet advanced to `now` (a
            // migrate must see the boot that completed a second ago);
            // packets keep the inject-then-advance order of the
            // hand-rolled loop, which the differential pin freezes.
            if !matches!(item.work, Work::Packet { .. }) {
                out.extend(fleet.advance_impl(at));
            }
            match item.work {
                Work::Packet {
                    ingress,
                    from_matrix,
                    pkt,
                } => {
                    if from_matrix {
                        traffic_injected += 1;
                    }
                    match ingress {
                        None => out.extend(fleet.inject_impl(pkt, at)),
                        Some(node) => match fleet.inject_at_impl(node, pkt, at) {
                            Ok(tx) => out.extend(tx),
                            Err(_) => errors += 1,
                        },
                    }
                }
                Work::Migrate { addr, to } => {
                    if fleet.migrate(addr, to, at).is_err() {
                        errors += 1;
                    }
                }
                Work::Event { idx } => {
                    let Some(s) = &scenario else { continue };
                    let (_, event) = &s.events()[idx];
                    let h: &mut dyn ScenarioHooks = match hooks.as_mut() {
                        Some(b) => b.as_mut(),
                        None => &mut default_hooks,
                    };
                    let outcome = apply_event(&mut fleet, &mut traffic, h, event, at);
                    consolidation_moves.extend(outcome.consolidation_moves.iter().copied());
                    cdn_edges += outcome.cdn_edges;
                    for (addr, dead) in outcome.stranded {
                        push(
                            &mut items,
                            &mut seq,
                            at + detection_ns,
                            Work::Rehome {
                                addr,
                                dead,
                                killed_at: at,
                            },
                        );
                        horizon = horizon.max(at + detection_ns);
                    }
                    if outcome.demand_changed {
                        if let Some(m) = traffic.as_ref() {
                            fleet.attach_demand(m.demand_by_tenant());
                        }
                    }
                    // Re-pace the matrix to the next rate boundary.
                    if let Some(m) = traffic.as_mut() {
                        while next_boundary < boundaries.len() && boundaries[next_boundary] <= at {
                            next_boundary += 1;
                        }
                        let until = boundaries
                            .get(next_boundary)
                            .copied()
                            .unwrap_or(horizon)
                            .min(horizon);
                        for (t, ingress, pkt) in m.pace(until) {
                            push(
                                &mut items,
                                &mut seq,
                                t,
                                Work::Packet {
                                    ingress: Some(ingress),
                                    from_matrix: true,
                                    pkt,
                                },
                            );
                        }
                    }
                }
                Work::Rehome {
                    addr,
                    dead,
                    killed_at,
                } => {
                    let h: &mut dyn ScenarioHooks = match hooks.as_mut() {
                        Some(b) => b.as_mut(),
                        None => &mut default_hooks,
                    };
                    rehomes.push(rehome_tenant(&mut fleet, h, addr, dead, killed_at, at));
                }
                Work::Rebalance { threshold } => {
                    rebalance_moves.extend(fleet.rebalance_impl(at, threshold));
                }
                Work::Reclaim { idle_ns } => fleet.reclaim_idle_impl(at, idle_ns),
                Work::Tick { idx } => (ticks[idx].1)(&mut fleet, at),
            }
            out.extend(fleet.advance_impl(at));
        }
        out.extend(fleet.advance_impl(horizon));

        let stats = fleet.stats();
        DriverRun {
            fleet,
            out,
            stats,
            rehomes,
            consolidation_moves,
            rebalance_moves,
            cdn_edges,
            traffic_injected,
            errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use crate::scenario::ScenarioEvent;
    use crate::switch::ClientEntry;
    use crate::traffic::TrafficParams;
    use innet_click::ClickConfig;
    use innet_packet::PacketBuilder;
    use innet_topology::{generate_fleet, FleetParams};

    const TENANT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

    fn filter_entry(addr: Ipv4Addr, stateful: bool) -> ClientEntry {
        ClientEntry {
            addr,
            config: ClickConfig::parse(
                "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
            )
            .unwrap(),
            stateful,
        }
    }

    fn udp_to(addr: Ipv4Addr, seq: u16) -> Packet {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), seq)
            .dst(addr, 1500)
            .build()
    }

    fn small_fleet() -> Fleet {
        let t = generate_fleet(&FleetParams {
            pops: 2,
            platforms_per_pop: 1,
            clients_per_pop: 1,
            seed: 3,
        });
        Fleet::new(&t)
    }

    #[test]
    #[allow(deprecated)]
    fn driver_matches_manual_inject_advance_loop() {
        // The API-redesign pin: a zero-event driver run is byte- and
        // order-identical to the hand-rolled loop it replaces.
        let mut manual = Fleet::single_host(4 * 1024);
        let platform = manual.platforms()[0];
        manual
            .register(platform, filter_entry(TENANT, true))
            .unwrap();
        let mut driven = Fleet::single_host(4 * 1024);
        driven
            .register(platform, filter_entry(TENANT, true))
            .unwrap();

        let schedule: Vec<(SimTime, Packet)> = (0..6)
            .map(|i| (i * 150_000_000, udp_to(TENANT, i as u16 + 1)))
            .collect();

        let mut manual_out = Vec::new();
        for (at, pkt) in &schedule {
            manual_out.extend(manual.inject(pkt.clone(), *at));
            manual_out.extend(manual.advance(*at));
        }
        manual_out.extend(manual.advance(2_000_000_000));

        let mut driver = FleetDriver::new(driven).until(2_000_000_000);
        for (at, pkt) in schedule {
            driver = driver.inject(at, pkt);
        }
        let run = driver.run();

        assert_eq!(run.out, manual_out, "byte- and order-identical");
        assert_eq!(run.stats, manual.stats());
    }

    #[test]
    fn on_tick_fires_at_period() {
        let fleet = Fleet::single_host(1024);
        let fired = std::cell::RefCell::new(Vec::new());
        let run = FleetDriver::new(fleet)
            .until(1_000_000_000)
            .on_tick(300_000_000, |_, now| fired.borrow_mut().push(now))
            .run();
        assert_eq!(*fired.borrow(), vec![300_000_000, 600_000_000, 900_000_000]);
        assert_eq!(run.errors, 0);
    }

    #[test]
    fn scheduled_migration_executes() {
        let mut fleet = small_fleet();
        let ps = fleet.platforms();
        fleet.register(ps[0], filter_entry(TENANT, true)).unwrap();
        let run = FleetDriver::new(fleet)
            .until(90_000_000_000)
            .inject(0, udp_to(TENANT, 1))
            .migrate(2_000_000_000, TENANT, ps[1])
            .run();
        assert_eq!(run.errors, 0);
        assert_eq!(run.fleet.location(TENANT), Some(ps[1]));
        assert_eq!(run.stats.migrations_completed, 1);
    }

    #[test]
    fn traffic_matrix_drives_the_fleet() {
        let t = generate_fleet(&FleetParams {
            pops: 2,
            platforms_per_pop: 1,
            clients_per_pop: 2,
            seed: 3,
        });
        let mut fleet = Fleet::new(&t);
        let ps = fleet.platforms();
        fleet.register(ps[0], filter_entry(TENANT, false)).unwrap();
        let matrix = TrafficMatrix::gravity(
            &t,
            &[TENANT],
            &TrafficParams {
                total_pps: 200,
                ..TrafficParams::default()
            },
        );
        let run = FleetDriver::new(fleet)
            .until(1_000_000_000)
            .traffic(matrix)
            .run();
        assert!(run.traffic_injected > 100, "{}", run.traffic_injected);
        assert_eq!(run.stats.injected, run.traffic_injected);
        assert!(
            run.stats.fabric_forwards > 0,
            "cross-PoP demand crosses the fabric"
        );
        assert!(run.fleet.demand_attached());
    }

    #[test]
    fn kill_pop_rehomes_tenants() {
        let mut fleet = small_fleet();
        let ps = fleet.platforms();
        let pop0 = fleet.topology().pop_of(ps[0]).unwrap();
        fleet.register(ps[0], filter_entry(TENANT, true)).unwrap();
        let run = FleetDriver::new(fleet)
            .until(3_000_000_000)
            .inject(0, udp_to(TENANT, 1))
            .events(Scenario::new("kill").at(1_000_000_000, ScenarioEvent::KillPop { pop: pop0 }))
            .run();
        assert_eq!(run.rehomes.len(), 1);
        let rec = run.rehomes[0];
        assert_eq!(rec.addr, TENANT);
        assert_eq!(rec.from, ps[0]);
        assert_eq!(rec.to, Some(ps[1]));
        assert_eq!(rec.downtime_ns, 50_000_000, "detection delay is the floor");
        assert_eq!(run.fleet.location(TENANT), Some(ps[1]));
        assert_eq!(run.stats.rehomes, 1);
        // The re-homed tenant serves again: next packet boots a VM there.
        let run2 = FleetDriver::new(run.fleet)
            .until(6_000_000_000)
            .inject(4_000_000_000, udp_to(TENANT, 2))
            .run();
        assert!(run2.fleet.host(ps[1]).unwrap().live_vms() > 0);
    }

    #[test]
    fn consolidation_event_executes_moves() {
        let mut fleet = small_fleet();
        let ps = fleet.platforms();
        // Two stateless tenants on each platform; consolidation homes
        // them all on one.
        for (i, &p) in ps.iter().enumerate() {
            for j in 0..2u8 {
                let addr = Ipv4Addr::new(198, 18, i as u8, j + 1);
                fleet.register(p, filter_entry(addr, false)).unwrap();
            }
        }
        let run = FleetDriver::new(fleet)
            .until(2_000_000_000)
            .events(
                Scenario::new("consolidate").at(1_000_000_000, ScenarioEvent::ExecuteConsolidation),
            )
            .run();
        assert_eq!(run.consolidation_moves.len(), 2, "one platform empties");
        let homes: std::collections::BTreeSet<NodeId> = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| {
                run.fleet
                    .location(Ipv4Addr::new(198, 18, i as u8, j + 1))
                    .unwrap()
            })
            .collect();
        assert_eq!(homes.len(), 1, "all stateless tenants share one home");
    }

    #[test]
    fn cdn_tier_serves_from_nearest_edge() {
        let mut fleet = small_fleet();
        let ps = fleet.platforms();
        fleet.register(ps[0], filter_entry(TENANT, false)).unwrap();
        let run = FleetDriver::new(fleet)
            .until(2_000_000_000)
            .events(Scenario::new("cdn").at(
                0,
                ScenarioEvent::CdnTier {
                    origin: TENANT,
                    edges: vec![ps[1]],
                },
            ))
            .inject_at(1_000_000_000, ps[1], udp_to(TENANT, 1))
            .run();
        assert_eq!(run.cdn_edges, 1);
        // Served at the edge: no fabric crossing.
        assert_eq!(run.stats.fabric_forwards, 0);
        assert!(
            run.fleet.host(ps[1]).unwrap().live_vms() > 0,
            "edge booted the replica"
        );
    }
}
