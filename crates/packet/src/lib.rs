//! # innet-packet
//!
//! Packet buffers, protocol header views, and flow identification for the
//! In-Net stack.
//!
//! This crate is the lowest layer of the In-Net reproduction: everything that
//! touches concrete packet bytes — the Click-style element runtime, the
//! platform's native execution engine, and the discrete-event simulator —
//! builds on the types defined here.
//!
//! ## Design
//!
//! A [`Packet`] owns a contiguous byte buffer that starts at the Ethernet
//! header, plus a small metadata block (ingress port, virtual timestamp, and
//! a fixed-size annotation area mirroring Click's packet annotations).
//! Protocol headers are accessed through zero-copy *views* ([`EtherView`],
//! [`Ipv4View`], [`UdpView`], [`TcpView`], [`IcmpView`]) that validate
//! lengths once and then read/write big-endian fields at fixed offsets.
//!
//! [`PacketBuilder`] constructs well-formed packets for tests, workload
//! generators, and benchmarks; [`FlowKey`] extracts the canonical 5-tuple
//! used by stateful elements (firewalls, NATs) and by the platform's
//! on-the-fly VM instantiation logic.
//!
//! ## Example
//!
//! ```
//! use innet_packet::{PacketBuilder, IpProto, FlowKey};
//! use std::net::Ipv4Addr;
//!
//! let pkt = PacketBuilder::udp()
//!     .src(Ipv4Addr::new(10, 0, 0, 1), 5000)
//!     .dst(Ipv4Addr::new(192, 168, 1, 7), 1500)
//!     .payload(b"notify")
//!     .build();
//!
//! let ip = pkt.ipv4().unwrap();
//! assert_eq!(ip.proto(), IpProto::Udp);
//! assert!(ip.verify_checksum());
//!
//! let key = FlowKey::of(&pkt).unwrap();
//! assert_eq!(key.dst_port, 1500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod builder;
mod ether;
mod flow;
mod icmp;
mod ip;
mod net;
pub mod pattern;
mod pool;
mod tcp;
mod udp;

pub use buf::{Packet, PacketMeta, ANNO_SIZE};
pub use builder::PacketBuilder;
pub use ether::{EtherType, EtherView, MacAddr, ETHER_HDR_LEN};
pub use flow::{FlowKey, FlowTuple};
pub use icmp::{IcmpKind, IcmpView, ICMP_HDR_LEN};
pub use ip::{internet_checksum, IpProto, Ipv4View, IPV4_HDR_LEN};
pub use net::{Cidr, CidrParseError};
pub use pool::{PacketPool, DEFAULT_POOL_BUFFERS};
pub use tcp::{TcpFlags, TcpView, TCP_HDR_LEN};
pub use udp::{UdpView, UDP_HDR_LEN};

/// Errors produced while interpreting packet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer is shorter than the header that was requested.
    Truncated {
        /// Header family that could not be decoded.
        what: &'static str,
        /// Bytes required to decode the header.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The packet does not carry the protocol that was requested
    /// (e.g. asking for a UDP view of a TCP packet).
    WrongProtocol {
        /// Protocol that was expected.
        expected: &'static str,
    },
    /// An IPv4 header declared an invalid header length.
    BadHeaderLength(u8),
    /// The packet is not IPv4 (In-Net's dataplane is IPv4-only, as is the
    /// paper's prototype).
    NotIpv4,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            PacketError::WrongProtocol { expected } => {
                write!(f, "packet does not carry {expected}")
            }
            PacketError::BadHeaderLength(ihl) => write!(f, "bad IPv4 IHL {ihl}"),
            PacketError::NotIpv4 => write!(f, "packet is not IPv4"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Convenient result alias for packet operations.
pub type Result<T> = std::result::Result<T, PacketError>;
