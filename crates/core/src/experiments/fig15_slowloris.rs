//! Figure 15: defending against a Slowloris attack with In-Net.
//!
//! Slowloris starves a web server by holding as many connections open as
//! possible, trickling request bytes so the server cannot time them out.
//! The defense (the paper's reverse-proxy stock module) spins up proxies
//! on remote In-Net platforms and diverts new connections to them by
//! geolocation DNS; the proxies absorb the held connections and forward
//! only complete requests.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One second of the timeline.
#[derive(Debug, Clone, Copy)]
pub struct SlowlorisSample {
    /// Time in seconds.
    pub t_s: u64,
    /// Valid requests served this second, single-server baseline.
    pub single_server_rps: f64,
    /// Valid requests served this second with the In-Net defense.
    pub with_innet_rps: f64,
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct SlowlorisParams {
    /// Timeline length in seconds (the paper plots ~900 s).
    pub duration_s: u64,
    /// Origin server's concurrent-connection capacity.
    pub server_slots: u64,
    /// Valid request arrival rate (requests/second).
    pub valid_rps: f64,
    /// Valid request service time in seconds.
    pub service_s: f64,
    /// Attack start.
    pub attack_start_s: u64,
    /// Attack end.
    pub attack_end_s: u64,
    /// Sockets the attacker opens per second until the target is full.
    pub attack_open_rate: f64,
    /// When the defense detects the attack and requests proxies
    /// (seconds after attack start).
    pub detect_after_s: u64,
    /// Proxies instantiated by the defense.
    pub proxies: u64,
    /// RNG seed for arrival noise.
    pub seed: u64,
}

impl Default for SlowlorisParams {
    fn default() -> Self {
        SlowlorisParams {
            duration_s: 900,
            server_slots: 400,
            valid_rps: 300.0,
            service_s: 1.0,
            attack_start_s: 200,
            attack_end_s: 700,
            attack_open_rate: 40.0,
            detect_after_s: 60,
            proxies: 3,
            seed: 15,
        }
    }
}

fn serve_rate(
    slots: u64,
    held_by_attacker: f64,
    demand_rps: f64,
    service_s: f64,
    rng: &mut StdRng,
) -> f64 {
    let free = (slots as f64 - held_by_attacker).max(0.0);
    let capacity_rps = free / service_s;
    let noise = 0.97 + rng.gen::<f64>() * 0.06;
    demand_rps.min(capacity_rps) * noise
}

/// Runs the scenario.
pub fn slowloris(params: &SlowlorisParams) -> Vec<SlowlorisSample> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut held_single = 0.0f64; // Attacker-held sockets, baseline.
    let mut held_origin = 0.0f64; // Attacker-held sockets at the origin, defended.
    let mut out = Vec::with_capacity(params.duration_s as usize);

    for t in 0..params.duration_s {
        let attacking = (params.attack_start_s..params.attack_end_s).contains(&t);
        let defense_up =
            t >= params.attack_start_s + params.detect_after_s && t < params.attack_end_s + 30;

        // Baseline: the attacker ratchets connections up to the server's
        // limit and keeps them (Slowloris defeats idle timeouts).
        if attacking {
            held_single = (held_single + params.attack_open_rate).min(params.server_slots as f64);
        } else if t >= params.attack_end_s {
            // Connections collapse when the attack stops.
            held_single = (held_single - params.server_slots as f64 / 20.0).max(0.0);
        }
        let single = serve_rate(
            params.server_slots,
            held_single,
            params.valid_rps,
            params.service_s,
            &mut rng,
        );

        // Defended: identical until detection. Then geolocation DNS sends
        // *new* connections (attack included) to the proxies; held
        // connections at the origin time out since the proxies only
        // forward complete requests.
        if attacking && !defense_up {
            held_origin = (held_origin + params.attack_open_rate).min(params.server_slots as f64);
        } else if defense_up {
            held_origin = (held_origin - params.server_slots as f64 / 30.0).max(0.0);
        } else if t >= params.attack_end_s {
            held_origin = (held_origin - params.server_slots as f64 / 20.0).max(0.0);
        }
        let defended = if defense_up {
            // The proxies absorb the slow connections; each proxy has its
            // own slot pool, so the attack is diluted proxies-fold and
            // valid requests pass through unharmed.
            let per_proxy_held = if attacking {
                (params.attack_open_rate * 10.0 / params.proxies as f64)
                    .min(params.server_slots as f64 * 0.4)
            } else {
                0.0
            };
            let origin_facing = serve_rate(
                params.server_slots,
                held_origin,
                params.valid_rps,
                params.service_s,
                &mut rng,
            );
            let proxy_capacity: f64 = (0..params.proxies)
                .map(|_| (params.server_slots as f64 - per_proxy_held).max(0.0) / params.service_s)
                .sum();
            origin_facing.max(params.valid_rps.min(proxy_capacity))
        } else {
            serve_rate(
                params.server_slots,
                held_origin,
                params.valid_rps,
                params.service_s,
                &mut rng,
            )
        };

        out.push(SlowlorisSample {
            t_s: t,
            single_server_rps: single,
            with_innet_rps: defended,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_avg(
        samples: &[SlowlorisSample],
        lo: u64,
        hi: u64,
        f: fn(&SlowlorisSample) -> f64,
    ) -> f64 {
        let sel: Vec<f64> = samples
            .iter()
            .filter(|s| (lo..hi).contains(&s.t_s))
            .map(f)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    }

    #[test]
    fn baseline_collapses_during_attack() {
        let s = slowloris(&SlowlorisParams::default());
        let before = window_avg(&s, 50, 150, |x| x.single_server_rps);
        let during = window_avg(&s, 400, 600, |x| x.single_server_rps);
        let after = window_avg(&s, 800, 890, |x| x.single_server_rps);
        assert!(before > 250.0, "{before}");
        assert!(during < before * 0.15, "collapse: {before} -> {during}");
        assert!(after > before * 0.9, "recovery after attack: {after}");
    }

    #[test]
    fn defense_restores_service() {
        let s = slowloris(&SlowlorisParams::default());
        let during_defended = window_avg(&s, 400, 600, |x| x.with_innet_rps);
        let before = window_avg(&s, 50, 150, |x| x.with_innet_rps);
        assert!(
            during_defended > before * 0.8,
            "defended rate {during_defended} vs pre-attack {before}"
        );
    }

    #[test]
    fn defense_has_a_detection_gap() {
        let s = slowloris(&SlowlorisParams::default());
        // Between attack start and detection both lines dip.
        let gap = window_avg(&s, 230, 255, |x| x.with_innet_rps);
        let before = window_avg(&s, 50, 150, |x| x.with_innet_rps);
        assert!(gap < before, "dip during detection: {gap} vs {before}");
    }
}
