//! Packet entry and exit points: the netfront boundary, plus `Discard` and
//! `Idle`.

use std::any::Any;

use innet_packet::Packet;

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
    netfront::NetfrontRing,
};

/// `FromNetfront([IFACE])` — receives packets from a numbered interface.
///
/// The router delivers external packets to input port 0; the element moves
/// each packet through a [`NetfrontRing`] (reproducing the per-packet copy +
/// checksum cost of the Xen netfront data path) and emits it on output 0
/// with the ingress annotation set.
#[derive(Debug)]
pub struct FromNetfront {
    iface: u16,
    ring: NetfrontRing,
}

impl FromNetfront {
    /// Creates a receiver for `iface`.
    pub fn new(iface: u16) -> FromNetfront {
        FromNetfront {
            iface,
            ring: NetfrontRing::default(),
        }
    }

    /// Parses `FromNetfront([IFACE])`.
    pub fn from_args(args: &ConfigArgs) -> Result<FromNetfront, ElementError> {
        args.expect_len_range(0, 1)?;
        Ok(FromNetfront::new(args.parse_or(0, 0u16)?))
    }

    /// The interface this element receives from.
    pub fn iface(&self) -> u16 {
        self.iface
    }

    /// Packets received so far.
    pub fn rx_packets(&self) -> u64 {
        self.ring.packets
    }

    /// Mutable access to the underlying ring, for batched drains
    /// (`Router::push_batch` moves a whole same-ingress batch through
    /// the ring in one transfer).
    pub fn ring_mut(&mut self) -> &mut NetfrontRing {
        &mut self.ring
    }
}

impl Element for FromNetfront {
    fn class_name(&self) -> &'static str {
        "FromNetfront"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, mut pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        self.ring.transfer(&pkt);
        pkt.meta.ingress = self.iface;
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `ToNetfront([IFACE])` — transmits packets out of the router on a
/// numbered interface, paying the netfront ring cost on the way out.
#[derive(Debug)]
pub struct ToNetfront {
    iface: u16,
    ring: NetfrontRing,
}

impl ToNetfront {
    /// Creates a transmitter for `iface`.
    pub fn new(iface: u16) -> ToNetfront {
        ToNetfront {
            iface,
            ring: NetfrontRing::default(),
        }
    }

    /// Parses `ToNetfront([IFACE])`.
    pub fn from_args(args: &ConfigArgs) -> Result<ToNetfront, ElementError> {
        args.expect_len_range(0, 1)?;
        Ok(ToNetfront::new(args.parse_or(0, 0u16)?))
    }

    /// Packets transmitted so far.
    pub fn tx_packets(&self) -> u64 {
        self.ring.packets
    }

    /// The interface this element transmits on.
    pub fn iface(&self) -> u16 {
        self.iface
    }
}

impl Element for ToNetfront {
    fn class_name(&self) -> &'static str {
        "ToNetfront"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, 0)
    }

    fn push(&mut self, _port: usize, pkt: Packet, _ctx: &Context, out: &mut dyn Sink) {
        self.ring.transfer(&pkt);
        out.transmit(self.iface, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `Discard()` — absorbs and counts every packet.
#[derive(Debug, Default)]
pub struct Discard {
    dropped: u64,
}

impl Discard {
    /// Creates a discard sink.
    pub fn new() -> Discard {
        Discard::default()
    }

    /// Packets absorbed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Element for Discard {
    fn class_name(&self) -> &'static str {
        "Discard"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(1, 0)
    }

    fn push(&mut self, _port: usize, _pkt: Packet, _ctx: &Context, _out: &mut dyn Sink) {
        self.dropped += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// `Idle()` — never emits anything; useful to terminate unused ports.
#[derive(Debug, Default)]
pub struct Idle;

impl Element for Idle {
    fn class_name(&self) -> &'static str {
        "Idle"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, _pkt: Packet, _ctx: &Context, _out: &mut dyn Sink) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;

    #[test]
    fn from_netfront_sets_ingress_and_counts() {
        let mut el = FromNetfront::new(7);
        let mut s = VecSink::new();
        el.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert_eq!(el.rx_packets(), 1);
        let out = s.only(0).unwrap();
        assert_eq!(out.meta.ingress, 7);
    }

    #[test]
    fn to_netfront_transmits() {
        let mut el = ToNetfront::new(3);
        let mut s = VecSink::new();
        el.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert!(s.pushed.is_empty());
        assert_eq!(s.transmitted.len(), 1);
        assert_eq!(s.transmitted[0].0, 3);
        assert_eq!(el.tx_packets(), 1);
    }

    #[test]
    fn discard_counts() {
        let mut el = Discard::new();
        let mut s = VecSink::new();
        el.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        el.push(0, PacketBuilder::udp().build(), &Context::default(), &mut s);
        assert_eq!(el.dropped(), 2);
        assert!(s.pushed.is_empty());
    }

    #[test]
    fn bad_args_rejected() {
        let args = ConfigArgs::parse("FromNetfront", "1, 2");
        assert!(FromNetfront::from_args(&args).is_err());
        let args = ConfigArgs::parse("FromNetfront", "banana");
        assert!(FromNetfront::from_args(&args).is_err());
    }
}
