//! The owned packet buffer and its metadata block.

use bytes::{Bytes, BytesMut};

use crate::{
    ether::{EtherType, EtherView, ETHER_HDR_LEN},
    icmp::IcmpView,
    ip::{IpProto, Ipv4View},
    tcp::TcpView,
    udp::UdpView,
    PacketError, Result,
};

/// Size in bytes of the per-packet annotation area.
///
/// Click attaches a fixed-size annotation block to every packet; elements use
/// it to pass out-of-band information (paint marks, VLAN tags, the firewall
/// tag from the paper's Figure 2, ...). 48 bytes matches Click's default.
pub const ANNO_SIZE: usize = 48;

/// Out-of-band metadata carried alongside the packet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketMeta {
    /// Virtual timestamp in nanoseconds (set by sources and the simulator).
    pub timestamp_ns: u64,
    /// Index of the input port/interface the packet arrived on.
    pub ingress: u16,
    /// Offset of the network (IPv4) header within the buffer.
    ///
    /// `ETHER_HDR_LEN` for freshly built packets; updated by `Strip`-style
    /// elements. `None` means "not yet marked" (Click's `MarkIPHeader`
    /// establishes it).
    pub l3_offset: Option<usize>,
    /// Click-style annotation area.
    pub anno: [u8; ANNO_SIZE],
}

impl Default for PacketMeta {
    fn default() -> Self {
        PacketMeta {
            timestamp_ns: 0,
            ingress: 0,
            l3_offset: Some(ETHER_HDR_LEN),
            anno: [0; ANNO_SIZE],
        }
    }
}

/// An owned network packet.
///
/// The buffer always starts at the Ethernet header. Header accessors return
/// typed views that borrow the buffer (immutably or mutably); see
/// [`Packet::ipv4`], [`Packet::udp`], [`Packet::tcp`], [`Packet::icmp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    data: BytesMut,
    /// Packet metadata (public: elements read and write it freely, exactly
    /// like Click annotations).
    pub meta: PacketMeta,
}

impl Packet {
    /// Wraps raw bytes (starting at the Ethernet header) into a packet.
    pub fn from_bytes(data: impl AsRef<[u8]>) -> Self {
        Packet {
            data: BytesMut::from(data.as_ref()),
            meta: PacketMeta::default(),
        }
    }

    /// Wraps an already-allocated buffer without copying.
    pub fn from_buf(data: BytesMut) -> Self {
        Packet {
            data,
            meta: PacketMeta::default(),
        }
    }

    /// Total length of the buffer in bytes (Ethernet header included).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Freezes the packet into an immutable, cheaply clonable byte handle.
    pub fn freeze(self) -> Bytes {
        self.data.freeze()
    }

    /// Takes the underlying buffer back out of the packet, discarding the
    /// metadata. Pools use this to recycle allocations.
    pub fn into_buf(self) -> BytesMut {
        self.data
    }

    /// Offset of the network header, defaulting to just past Ethernet.
    pub fn l3_offset(&self) -> usize {
        self.meta.l3_offset.unwrap_or(ETHER_HDR_LEN)
    }

    /// An Ethernet view of the packet.
    pub fn ether(&self) -> Result<EtherView<&[u8]>> {
        EtherView::new(self.data.as_ref())
    }

    /// A mutable Ethernet view of the packet.
    pub fn ether_mut(&mut self) -> Result<EtherView<&mut [u8]>> {
        EtherView::new_mut(self.data.as_mut())
    }

    /// Whether the Ethernet type says this is an IPv4 packet.
    pub fn is_ipv4(&self) -> bool {
        self.ether()
            .map(|e| e.ethertype() == EtherType::IPV4)
            .unwrap_or(false)
    }

    /// An IPv4 view of the packet.
    ///
    /// Fails with [`PacketError::NotIpv4`] when the Ethernet type disagrees,
    /// or [`PacketError::Truncated`] when the buffer is too short.
    pub fn ipv4(&self) -> Result<Ipv4View<&[u8]>> {
        if !self.is_ipv4() {
            return Err(PacketError::NotIpv4);
        }
        // `l3_offset` is tenant-controlled (`MarkIPHeader(N)` writes any N):
        // slicing with it directly would panic past the buffer end.
        let off = self.l3_offset();
        let Some(l3) = self.data.get(off..) else {
            return Err(PacketError::Truncated {
                what: "IPv4 header",
                need: off,
                have: self.data.len(),
            });
        };
        Ipv4View::new(l3)
    }

    /// A mutable IPv4 view of the packet.
    pub fn ipv4_mut(&mut self) -> Result<Ipv4View<&mut [u8]>> {
        if !self.is_ipv4() {
            return Err(PacketError::NotIpv4);
        }
        let off = self.l3_offset();
        let have = self.data.len();
        let Some(l3) = self.data.get_mut(off..) else {
            return Err(PacketError::Truncated {
                what: "IPv4 header",
                need: off,
                have,
            });
        };
        Ipv4View::new_mut(l3)
    }

    /// Offset of the transport header within the buffer, derived from the
    /// IPv4 header length.
    pub fn l4_offset(&self) -> Result<usize> {
        let l3 = self.l3_offset();
        let ip = self.ipv4()?;
        Ok(l3 + ip.header_len())
    }

    /// Transport protocol of the packet, if it is IPv4.
    pub fn ip_proto(&self) -> Result<IpProto> {
        Ok(self.ipv4()?.proto())
    }

    /// A UDP view of the packet.
    pub fn udp(&self) -> Result<UdpView<&[u8]>> {
        if self.ip_proto()? != IpProto::Udp {
            return Err(PacketError::WrongProtocol { expected: "UDP" });
        }
        let off = self.l4_offset()?;
        UdpView::new(&self.data[off..])
    }

    /// A mutable UDP view of the packet.
    pub fn udp_mut(&mut self) -> Result<UdpView<&mut [u8]>> {
        if self.ip_proto()? != IpProto::Udp {
            return Err(PacketError::WrongProtocol { expected: "UDP" });
        }
        let off = self.l4_offset()?;
        UdpView::new_mut(&mut self.data[off..])
    }

    /// A TCP view of the packet.
    pub fn tcp(&self) -> Result<TcpView<&[u8]>> {
        if self.ip_proto()? != IpProto::Tcp {
            return Err(PacketError::WrongProtocol { expected: "TCP" });
        }
        let off = self.l4_offset()?;
        TcpView::new(&self.data[off..])
    }

    /// A mutable TCP view of the packet.
    pub fn tcp_mut(&mut self) -> Result<TcpView<&mut [u8]>> {
        if self.ip_proto()? != IpProto::Tcp {
            return Err(PacketError::WrongProtocol { expected: "TCP" });
        }
        let off = self.l4_offset()?;
        TcpView::new_mut(&mut self.data[off..])
    }

    /// An ICMP view of the packet.
    pub fn icmp(&self) -> Result<IcmpView<&[u8]>> {
        if self.ip_proto()? != IpProto::Icmp {
            return Err(PacketError::WrongProtocol { expected: "ICMP" });
        }
        let off = self.l4_offset()?;
        IcmpView::new(&self.data[off..])
    }

    /// A mutable ICMP view of the packet.
    pub fn icmp_mut(&mut self) -> Result<IcmpView<&mut [u8]>> {
        if self.ip_proto()? != IpProto::Icmp {
            return Err(PacketError::WrongProtocol { expected: "ICMP" });
        }
        let off = self.l4_offset()?;
        IcmpView::new_mut(&mut self.data[off..])
    }

    /// The L4 payload bytes (after the UDP/TCP header), or the L3 payload for
    /// other protocols.
    pub fn payload(&self) -> Result<&[u8]> {
        let l4 = self.l4_offset()?;
        let hdr = match self.ip_proto()? {
            IpProto::Udp => crate::udp::UDP_HDR_LEN,
            IpProto::Tcp => self.tcp()?.header_len(),
            IpProto::Icmp => crate::icmp::ICMP_HDR_LEN,
            _ => 0,
        };
        let start = l4 + hdr;
        if start > self.data.len() {
            return Err(PacketError::Truncated {
                what: "payload",
                need: start,
                have: self.data.len(),
            });
        }
        Ok(&self.data[start..])
    }

    /// Mutable access to the L4 payload bytes.
    pub fn payload_mut(&mut self) -> Result<&mut [u8]> {
        let l4 = self.l4_offset()?;
        let hdr = match self.ip_proto()? {
            IpProto::Udp => crate::udp::UDP_HDR_LEN,
            IpProto::Tcp => self.tcp()?.header_len(),
            IpProto::Icmp => crate::icmp::ICMP_HDR_LEN,
            _ => 0,
        };
        let start = l4 + hdr;
        if start > self.data.len() {
            return Err(PacketError::Truncated {
                what: "payload",
                need: start,
                have: self.data.len(),
            });
        }
        Ok(&mut self.data[start..])
    }

    /// Prepends `bytes` in front of the current buffer (used by
    /// encapsulation elements). The L3 offset is reset to follow Ethernet.
    pub fn push_front(&mut self, prefix: &[u8]) {
        let mut new = BytesMut::with_capacity(prefix.len() + self.data.len());
        new.extend_from_slice(prefix);
        new.extend_from_slice(&self.data);
        self.data = new;
        self.meta.l3_offset = Some(ETHER_HDR_LEN);
    }

    /// Removes `n` bytes from the front of the buffer (used by
    /// decapsulation elements). The L3 offset is reset to follow Ethernet.
    ///
    /// Returns an error when fewer than `n` bytes are available.
    pub fn pop_front(&mut self, n: usize) -> Result<()> {
        if self.data.len() < n {
            return Err(PacketError::Truncated {
                what: "pop_front",
                need: n,
                have: self.data.len(),
            });
        }
        let _ = self.data.split_to(n);
        self.meta.l3_offset = Some(ETHER_HDR_LEN);
        Ok(())
    }

    /// Reads one annotation byte.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= ANNO_SIZE`; annotation offsets are compile-time
    /// constants in practice.
    pub fn anno_u8(&self, idx: usize) -> u8 {
        self.meta.anno[idx]
    }

    /// Writes one annotation byte (see [`Packet::anno_u8`]).
    pub fn set_anno_u8(&mut self, idx: usize, val: u8) {
        self.meta.anno[idx] = val;
    }

    /// Reads a 32-bit big-endian annotation word starting at `idx`.
    pub fn anno_u32(&self, idx: usize) -> u32 {
        u32::from_be_bytes(
            self.meta.anno[idx..idx + 4]
                .try_into()
                .expect("anno bounds"),
        )
    }

    /// Writes a 32-bit big-endian annotation word starting at `idx`.
    pub fn set_anno_u32(&mut self, idx: usize, val: u32) {
        self.meta.anno[idx..idx + 4].copy_from_slice(&val.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;
    use std::net::Ipv4Addr;

    fn sample() -> Packet {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 4242)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 53)
            .payload(b"hello")
            .build()
    }

    #[test]
    fn payload_roundtrip() {
        let pkt = sample();
        assert_eq!(pkt.payload().unwrap(), b"hello");
    }

    #[test]
    fn payload_mut_edits_in_place() {
        let mut pkt = sample();
        pkt.payload_mut().unwrap()[0] = b'H';
        assert_eq!(pkt.payload().unwrap(), b"Hello");
    }

    #[test]
    fn annotations_roundtrip() {
        let mut pkt = sample();
        pkt.set_anno_u8(0, 7);
        pkt.set_anno_u32(4, 0xdead_beef);
        assert_eq!(pkt.anno_u8(0), 7);
        assert_eq!(pkt.anno_u32(4), 0xdead_beef);
    }

    #[test]
    fn push_pop_front_roundtrip() {
        let mut pkt = sample();
        let before = pkt.bytes().to_vec();
        pkt.push_front(&[0xAA; 8]);
        assert_eq!(pkt.len(), before.len() + 8);
        pkt.pop_front(8).unwrap();
        assert_eq!(pkt.bytes(), &before[..]);
    }

    #[test]
    fn pop_front_too_much_errors() {
        let mut pkt = sample();
        let n = pkt.len() + 1;
        assert!(pkt.pop_front(n).is_err());
    }

    #[test]
    fn wrong_protocol_rejected() {
        let pkt = sample();
        assert_eq!(
            pkt.tcp().unwrap_err(),
            PacketError::WrongProtocol { expected: "TCP" }
        );
    }

    #[test]
    fn non_ip_rejected() {
        let pkt = Packet::from_bytes(vec![0u8; 14]); // Ethertype 0x0000.
        assert_eq!(pkt.ipv4().unwrap_err(), PacketError::NotIpv4);
    }
}
