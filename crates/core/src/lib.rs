//! # In-Net: in-network processing for the masses
//!
//! A Rust reproduction of the EuroSys 2015 paper *In-Net: In-Network
//! Processing for the Masses* (Stoenescu et al.): an architecture that
//! lets untrusted endpoints and content providers deploy custom packet
//! processing on platforms owned by network operators, gated by static
//! analysis.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`packet`] | Packet buffers, header views, flow keys, the tcpdump-subset pattern language |
//! | [`click`] | The Click-style element library, configuration language, and runtime |
//! | [`symnet`] | SymNet-style symbolic execution and the In-Net security rules |
//! | [`policy`] | The `reach from …` requirements language |
//! | [`topology`] | The operator network model |
//! | [`controller`] | The In-Net controller: placement, verification, sandboxing |
//! | [`platform`] | The ClickOS platform: VM lifecycle, on-the-fly boot, consolidation, native execution |
//! | [`obs`] | Dependency-free observability: counters, gauges, latency histograms, reason-labeled drop accounting, Prometheus/JSON export |
//! | [`sim`] | Wide-area/device substrates: transports, radio energy, workloads |
//! | [`experiments`] | One reproducible function per table/figure of the paper's evaluation |
//!
//! ## Quickstart
//!
//! ```
//! use innet::prelude::*;
//!
//! // The operator stands up its network and controller.
//! let mut ctl = Controller::new(Topology::figure3());
//! ctl.register_client("mobile-7", RequesterClass::Client,
//!                     vec!["172.16.15.133".parse().unwrap()]);
//!
//! // A mobile client asks for the paper's Figure 4 batcher.
//! let request = ClientRequest::parse(r#"
//!     module batcher:
//!     FromNetfront()
//!       -> IPFilter(allow udp dst port 1500)
//!       -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
//!       -> TimedUnqueue(120, 100)
//!       -> dst :: ToNetfront();
//!
//!     reach from internet udp
//!       -> batcher:dst:0 dst 172.16.15.133
//!       -> client dst port 1500
//!       const proto && dst port && payload
//! "#).unwrap();
//!
//! let response = ctl.deploy("mobile-7", request).unwrap();
//! assert_eq!(response.platform, "platform3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use innet_analysis as analysis;
pub use innet_click as click;
pub use innet_controller as controller;
pub use innet_obs as obs;
pub use innet_packet as packet;
pub use innet_platform as platform;
pub use innet_policy as policy;
pub use innet_sim as sim;
pub use innet_symnet as symnet;
pub use innet_topology as topology;

pub mod experiments;

/// The most commonly used types, re-exported flat: the one-stop client
/// surface. A tenant builds a [`prelude::ClientRequest`], an operator
/// deploys it through a [`prelude::Controller`], and the resulting
/// configuration executes on a [`prelude::NativeRunner`] or — flow-
/// sharded across cores via a [`prelude::RunnerConfig`] — on a
/// [`prelude::ParallelRunner`], all observable through a
/// [`prelude::MetricsRegistry`]. A multi-host [`prelude::Fleet`] is
/// driven through a [`prelude::FleetDriver`] timeline — traffic from a
/// [`prelude::TrafficMatrix`], incidents from a [`prelude::Scenario`].
pub mod prelude {
    pub use innet_click::{ClickConfig, Registry, Router, Shardability};
    pub use innet_controller::{
        ClientRequest, Controller, ControllerHooks, DeployError, DeployResponse, ModuleConfig,
        StockModule,
    };
    pub use innet_obs::Registry as MetricsRegistry;
    pub use innet_packet::{Cidr, FlowKey, IpProto, Packet, PacketBuilder};
    pub use innet_platform::{
        nat_gateway_config, stateful_firewall_config, ClientEntry, Fleet, FleetDriver, Host,
        NativeRunner, NativeStats, ParallelRunner, ParallelStats, RunnerConfig, Scenario,
        ScenarioEvent, SwitchController, TrafficMatrix, TrafficParams,
    };
    pub use innet_policy::Requirement;
    pub use innet_symnet::{RequesterClass, SymPacket, Verdict};
    pub use innet_topology::Topology;
}
