//! Flow-sharded scaling: `ParallelRunner` throughput across worker and
//! batch sweeps, against the single-threaded `NativeRunner` baseline —
//! on both engines (interpreted element graph vs compiled flat plan).
//!
//! Three corpora: the stock consolidated firewall (the paper's
//! §5/Figure 8 multi-tenant configuration — stateless, so it shards
//! under the directed hash), the Figure 12 middlebox corpus (now
//! including `nat` as a flow-partitionable configuration that shards
//! under the symmetric hash), and a bidirectional stateful corpus (NAT
//! gateway + stateful firewall driven with interleaved forward and
//! reverse traffic — the scaling the symmetric dispatch hash buys).
//!
//! Besides the criterion-style timings, the bench records a
//! `BENCH_parallel_scaling.json` snapshot (interpreted vs compiled pps
//! per corpus per worker count) — the machine-readable perf trajectory
//! committed alongside the code.

use criterion::{black_box, Criterion};
use innet::click::elements::IpNat;
use innet::platform::{
    consolidated_config, middlebox_config, nat_gateway_config, stateful_firewall_config,
    RunnerConfig,
};
use innet::prelude::*;
use innet_bench::{quick_mode, BenchSnapshot};
use std::net::Ipv4Addr;

const TRACE_LEN: usize = 2048;
const FLOWS: usize = 64;
const FRAME: usize = 64;

fn clients(n: usize) -> Vec<Ipv4Addr> {
    (0..n)
        .map(|i| Ipv4Addr::new(203, 0, (113 + i / 250) as u8, (1 + i % 250) as u8))
        .collect()
}

fn trace(dsts: &[Ipv4Addr]) -> Vec<Packet> {
    (0..TRACE_LEN)
        .map(|i| {
            let f = i % FLOWS;
            PacketBuilder::udp()
                .src(Ipv4Addr::new(8, 8, 0, (f % 250) as u8 + 1), 4000 + f as u16)
                .dst(dsts[f % dsts.len()], 80)
                .pad_to(FRAME)
                .build()
        })
        .collect()
}

/// Workers ∈ {1, 2, 4, 8} × batch ∈ {1, 32, 256} on the stock
/// consolidated firewall, interpreted and compiled.
fn bench_consolidated_sweep(c: &mut Criterion) {
    let addrs = clients(16);
    let cfg = consolidated_config(&addrs);
    let pkts = trace(&addrs);
    for compiled in [false, true] {
        let engine = if compiled { "compiled" } else { "interp" };
        for workers in [1usize, 2, 4, 8] {
            for batch in [1usize, 32, 256] {
                let name = format!("parallel_consolidated16_{engine}_w{workers}_b{batch}");
                c.bench_function(&name, |b| {
                    let mut runner = RunnerConfig::new()
                        .workers(workers)
                        .batch(batch)
                        .compiled(compiled)
                        .parallel(&cfg)
                        .unwrap();
                    b.iter(|| black_box(runner.run(&pkts, 1)));
                });
            }
        }
        // The single-threaded engine at the same batch sizes, for the
        // sharding-overhead comparison (w1 vs native isolates
        // dispatcher + ring cost).
        for batch in [1usize, 32, 256] {
            let name = format!("native_consolidated16_{engine}_b{batch}");
            c.bench_function(&name, |b| {
                let mut runner = RunnerConfig::new()
                    .batch(batch)
                    .compiled(compiled)
                    .native(&cfg)
                    .unwrap();
                b.iter(|| black_box(runner.run(&pkts, 1)));
            });
        }
    }
}

/// The Figure 12 middlebox corpus at 1 and 4 workers, both engines.
/// `nat` and `flowmeter` keep per-connection state only
/// (flow-partitionable): they shard under the symmetric hash, so their
/// `w4` rows scale like the stateless kinds instead of pinning to one
/// worker.
fn bench_middlebox_corpus(c: &mut Criterion) {
    let dsts = [Ipv4Addr::new(10, 0, 0, 1)];
    let pkts = trace(&dsts);
    for kind in ["firewall", "iprouter", "flowmeter", "nat"] {
        let cfg = middlebox_config(kind).expect("known middlebox kind");
        for compiled in [false, true] {
            let engine = if compiled { "compiled" } else { "interp" };
            for workers in [1usize, 4] {
                let name = format!("parallel_{kind}_{engine}_w{workers}_b32");
                c.bench_function(&name, |b| {
                    let mut runner = RunnerConfig::new()
                        .workers(workers)
                        .batch(32)
                        .compiled(compiled)
                        .parallel(&cfg)
                        .unwrap();
                    b.iter(|| black_box(runner.run(&pkts, 1)));
                });
            }
        }
    }
}

/// An interleaved bidirectional trace for the stateful corpus: even
/// rounds send outbound openers (ingress 0), odd rounds send replies
/// arriving on the outside interface (ingress 1). For the NAT gateway,
/// replies target the deterministic mapped port on the public address;
/// for the firewall they target the inside host directly. Connections
/// are filtered to collision-free NAT preferred ports so every reply
/// finds its mapping.
fn bidirectional_trace(public: Ipv4Addr, nat: bool) -> Vec<Packet> {
    let mut conns: Vec<(FlowKey, u16)> = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    let mut c = 0usize;
    while conns.len() < FLOWS {
        let key = FlowKey {
            src: Ipv4Addr::new(10, 0, 0, (c % 250) as u8 + 1),
            dst: Ipv4Addr::new(198, 51, 100, (c % 250) as u8 + 1),
            proto: IpProto::Udp,
            src_port: 5000 + c as u16,
            dst_port: 53,
        };
        c += 1;
        let mapped = IpNat::preferred_port(&key);
        if used.insert(mapped) {
            conns.push((key, mapped));
        }
    }
    let rounds = TRACE_LEN / FLOWS;
    let mut pkts = Vec::with_capacity(rounds * FLOWS);
    for r in 0..rounds {
        for (key, mapped) in &conns {
            if r % 2 == 0 {
                pkts.push(
                    PacketBuilder::udp()
                        .src(key.src, key.src_port)
                        .dst(key.dst, key.dst_port)
                        .pad_to(FRAME)
                        .build(),
                );
            } else {
                let (dst, dport) = if nat {
                    (public, *mapped)
                } else {
                    (key.src, key.src_port)
                };
                let mut reply = PacketBuilder::udp()
                    .src(key.dst, key.dst_port)
                    .dst(dst, dport)
                    .pad_to(FRAME)
                    .build();
                reply.meta.ingress = 1;
                pkts.push(reply);
            }
        }
    }
    pkts
}

/// The stateful corpus: bidirectional NAT gateway and stateful firewall
/// at 1/2/4/8 workers under the symmetric dispatch hash — the
/// configurations that used to degrade to one worker.
fn bench_stateful_corpus(c: &mut Criterion) {
    let public = Ipv4Addr::new(203, 0, 113, 1);
    let corpus = [
        ("natgw", nat_gateway_config(public), true),
        ("statefulfw", stateful_firewall_config(), false),
    ];
    for (kind, cfg, is_nat) in corpus {
        let pkts = bidirectional_trace(public, is_nat);
        for workers in [1usize, 2, 4, 8] {
            let name = format!("parallel_{kind}_bidir_w{workers}_b32");
            c.bench_function(&name, |b| {
                let mut runner = RunnerConfig::new()
                    .workers(workers)
                    .batch(32)
                    .parallel(&cfg)
                    .unwrap();
                assert_eq!(runner.effective_workers(), workers);
                b.iter(|| black_box(runner.run(&pkts, 1)));
            });
        }
    }
}

/// Measured pps/gbps for one corpus on one engine at one worker count.
/// `workers == 1` uses the native single-threaded runner (no dispatcher
/// in the measurement); more workers use the sharded parallel runner.
///
/// Each point is the best of `reps` timed repetitions: ambient load on a
/// shared machine only ever slows a run, so the max is the noise-robust
/// estimate of what the engine sustains.
fn measure(
    cfg: &innet::click::ClickConfig,
    pkts: &[Packet],
    workers: usize,
    compiled: bool,
    rounds: usize,
    reps: usize,
) -> (f64, f64) {
    let mut best = (0.0f64, 0.0f64);
    if workers == 1 {
        let mut runner = RunnerConfig::new()
            .batch(32)
            .compiled(compiled)
            .native(cfg)
            .unwrap();
        runner.run(pkts, 1); // warm-up
        for _ in 0..reps {
            let stats = runner.run(pkts, rounds);
            if stats.pps() > best.0 {
                best = (stats.pps(), stats.gbps(FRAME));
            }
        }
    } else {
        let mut runner = RunnerConfig::new()
            .workers(workers)
            .batch(32)
            .compiled(compiled)
            .parallel(cfg)
            .unwrap();
        runner.run(pkts, 1); // warm-up
        for _ in 0..reps {
            let stats = runner.run(pkts, rounds);
            if stats.pps() > best.0 {
                best = (stats.pps(), stats.gbps(FRAME));
            }
        }
    }
    best
}

/// Emits `BENCH_parallel_scaling.json`: interpreted vs compiled pps for
/// the consolidated and stateful corpora per worker count.
fn emit_snapshot(quick: bool) {
    let (rounds, reps, worker_counts): (usize, usize, &[usize]) = if quick {
        (4, 2, &[1, 2])
    } else {
        (150, 5, &[1, 2, 4, 8])
    };
    let mut snap = BenchSnapshot::new("parallel_scaling");

    // Two tenant counts: the growth from 16 to 64 is where the compiled
    // host-table dispatch pulls away — the interpreter's classifier
    // scan is linear in the tenant count, the table probe is not.
    for (label, nclients) in [("consolidated", 16), ("consolidated64", 64)] {
        let addrs = clients(nclients);
        let consolidated = consolidated_config(&addrs);
        let cons_pkts = trace(&addrs);
        for &workers in worker_counts {
            for compiled in [false, true] {
                let (pps, gbps) =
                    measure(&consolidated, &cons_pkts, workers, compiled, rounds, reps);
                let mode = if compiled { "compiled" } else { "interpreted" };
                snap.row(label, mode, workers as u64, pps, gbps);
            }
        }
    }

    let public = Ipv4Addr::new(203, 0, 113, 1);
    for (kind, cfg, is_nat) in [
        ("natgw-bidir", nat_gateway_config(public), true),
        ("statefulfw-bidir", stateful_firewall_config(), false),
    ] {
        let pkts = bidirectional_trace(public, is_nat);
        for &workers in worker_counts {
            for compiled in [false, true] {
                let (pps, gbps) = measure(&cfg, &pkts, workers, compiled, rounds, reps);
                let mode = if compiled { "compiled" } else { "interpreted" };
                snap.row(kind, mode, workers as u64, pps, gbps);
            }
        }
    }

    println!();
    println!(
        "{:<20} {:>7} {:>12} {:>12} {:>8}",
        "corpus", "workers", "interp pps", "compiled pps", "speedup"
    );
    for &workers in worker_counts {
        for corpus in [
            "consolidated",
            "consolidated64",
            "natgw-bidir",
            "statefulfw-bidir",
        ] {
            let find = |mode: &str| {
                snap.rows
                    .iter()
                    .find(|r| r.corpus == corpus && r.mode == mode && r.workers == workers as u64)
                    .map(|r| r.pps)
                    .unwrap_or(0.0)
            };
            let (i, c) = (find("interpreted"), find("compiled"));
            println!(
                "{corpus:<20} {workers:>7} {i:>12.0} {c:>12.0} {:>7.2}x",
                if i > 0.0 { c / i } else { 0.0 }
            );
        }
    }
    snap.write();
}

fn main() {
    let quick = quick_mode();
    if !quick {
        let mut c = Criterion::default();
        bench_consolidated_sweep(&mut c);
        bench_middlebox_corpus(&mut c);
        bench_stateful_corpus(&mut c);
    }
    emit_snapshot(quick);
}
