//! Fleet scenario engine: regional failover, flash crowds, executed
//! consolidation, and CDN tiering under a gravity-model traffic matrix.
//!
//! Four scenarios driven through the [`FleetDriver`] timeline over a
//! generated thousand-node fleet, recorded to `BENCH_scenarios.json`:
//!
//! * **kill-pop** — a PoP dies at t=1s under live traffic; every
//!   affected tenant must re-home through the controller's ranked
//!   placement ([`ControllerHooks`]), with per-tenant downtime and
//!   placement-decision latency recorded.
//! * **flash-crowd** — one PoP's demand multiplies 8× mid-run; the
//!   bandwidth-priced fabric accounts queueing and tail drops.
//! * **consolidate** — `plan_fleet`'s stateless consolidation moves are
//!   *executed* on the data plane via live migration, not just planned.
//! * **cdn-tier** — a stateless origin replicates onto edge platforms;
//!   edge-ingress traffic stops crossing the fabric.

use std::net::Ipv4Addr;

use innet::click::ClickConfig;
use innet::controller::InstalledModule;
use innet::platform::ScenarioHooks as _;
use innet::prelude::*;
use innet::topology::{generate_fleet, FleetParams, NodeId, Topology};
use innet_bench::{quick_mode, Report, ScenarioSnapshot};

const SEC: u64 = 1_000_000_000;

fn filter_config() -> ClickConfig {
    ClickConfig::parse(
        "FromNetfront() -> IPFilter(allow udp, allow icmp, allow tcp) -> ToNetfront();",
    )
    .expect("tenant config parses")
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Registers `n` tenants on the fleet — the first half clustered on the
/// platforms of PoP `cluster_pop`, the rest round-robin across the other
/// platforms — and mirrors them as installed modules so the controller
/// hook sees the same placement. Returns the tenant addresses.
fn seed_tenants(
    fleet: &mut Fleet,
    ctl: &mut Controller,
    topo: &Topology,
    n: usize,
    cluster_pop: usize,
    stateful: bool,
) -> Vec<Ipv4Addr> {
    let platforms = fleet.platforms();
    let clustered: Vec<NodeId> = platforms
        .iter()
        .copied()
        .filter(|&p| topo.pop_of(p) == Some(cluster_pop))
        .collect();
    let others: Vec<NodeId> = platforms
        .iter()
        .copied()
        .filter(|&p| topo.pop_of(p) != Some(cluster_pop))
        .collect();
    assert!(!clustered.is_empty() && !others.is_empty());
    let config = filter_config();
    let mut modules = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..n {
        let addr = Ipv4Addr::new(198, 18, (i / 250) as u8, (i % 250) as u8 + 1);
        let home = if i < n / 2 {
            clustered[i % clustered.len()]
        } else {
            others[i % others.len()]
        };
        fleet
            .register(
                home,
                ClientEntry {
                    addr,
                    config: config.clone(),
                    stateful,
                },
            )
            .expect("home platform exists");
        modules.push(InstalledModule {
            id: i as u64,
            name: format!("tenant{i}"),
            platform: home,
            addr,
            config: config.clone(),
            sandboxed: false,
            owner: format!("owner{}", i % 7),
        });
        addrs.push(addr);
    }
    ctl.adopt_modules(modules);
    addrs
}

fn matrix(topo: &Topology, tenants: &[Ipv4Addr], pps: u64) -> TrafficMatrix {
    TrafficMatrix::gravity(
        topo,
        tenants,
        &TrafficParams {
            seed: 0x5702_2015,
            total_pps: pps,
            ..TrafficParams::default()
        },
    )
}

fn main() {
    let (params, tenants_n, pps) = if quick_mode() {
        (
            FleetParams {
                pops: 8,
                platforms_per_pop: 2,
                clients_per_pop: 1,
                seed: 42,
            },
            12,
            400,
        )
    } else {
        (FleetParams::default(), 48, 2_000)
    };
    let topo = generate_fleet(&params);
    let nodes = topo.nodes.len();

    let mut r = Report::new(
        "scenarios",
        "Fleet scenarios: failover, flash crowds, consolidation, CDN tiering",
    );
    r.line(&format!(
        "generated topology: {nodes} nodes, {} platforms (seed {})",
        topo.platforms().len(),
        params.seed
    ));
    r.blank();
    r.line(&format!(
        "{:>12} {:>8} {:>8} {:>16} {:>16} {:>11}",
        "scenario", "tenants", "rehomed", "rehome p50 (ms)", "rehome p99 (ms)", "link drops"
    ));
    let mut snap = ScenarioSnapshot::new("scenarios");

    // -- kill-pop: regional failover under live traffic -------------------
    {
        let mut fleet = Fleet::new(&topo);
        let mut ctl = Controller::new(topo.clone());
        let tenants = seed_tenants(&mut fleet, &mut ctl, &topo, tenants_n, 0, true);
        let affected: Vec<Ipv4Addr> = tenants
            .iter()
            .copied()
            .filter(|&a| topo.pop_of(fleet.location(a).unwrap()) == Some(0))
            .collect();
        assert!(!affected.is_empty(), "the doomed PoP hosts tenants");
        let run = FleetDriver::new(fleet)
            .until(3 * SEC)
            .traffic(matrix(&topo, &tenants, pps))
            .hooks(ControllerHooks::new(&ctl))
            .events(Scenario::new("kill-pop").at(SEC, ScenarioEvent::KillPop { pop: 0 }))
            .run();
        assert_eq!(
            run.rehomes.len(),
            affected.len(),
            "every affected tenant gets a failover record"
        );
        assert!(
            run.rehomes.iter().all(|rec| rec.to.is_some()),
            "every affected tenant re-homes"
        );
        for a in &affected {
            let loc = run.fleet.location(*a).expect("tenant still registered");
            assert!(run.fleet.is_alive(loc), "re-homed off the dead PoP");
        }
        let mut downtimes: Vec<u64> = run.rehomes.iter().map(|rec| rec.downtime_ns).collect();
        downtimes.sort_unstable();
        let (p50, p99) = (percentile(&downtimes, 0.50), percentile(&downtimes, 0.99));
        let mut decisions: Vec<u64> = run.rehomes.iter().map(|rec| rec.decision_ns).collect();
        decisions.sort_unstable();
        r.line(&format!(
            "{:>12} {:>8} {:>8} {:>16.1} {:>16.1} {:>11}",
            "kill-pop",
            tenants.len(),
            run.rehomes.len(),
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
            run.stats.link_drops
        ));
        r.line(&format!(
            "{:>12} ranked-placement decision p50 {:.1} us, p99 {:.1} us; \
             reroutes {}, dead drops {}",
            "",
            percentile(&decisions, 0.50) as f64 / 1e3,
            percentile(&decisions, 0.99) as f64 / 1e3,
            run.stats.reroutes,
            run.stats.dead_drops
        ));
        snap.row(
            "kill-pop",
            tenants.len() as u64,
            run.rehomes.iter().filter(|rec| rec.to.is_some()).count() as u64,
            p50 as f64,
            p99 as f64,
            run.stats.link_drops,
        );
    }

    // -- flash-crowd: one PoP surges 8x, bandwidth is priced --------------
    {
        let mut fleet = Fleet::new(&topo);
        let mut ctl = Controller::new(topo.clone());
        let tenants = seed_tenants(&mut fleet, &mut ctl, &topo, tenants_n, 1, false);
        let run = FleetDriver::new(fleet)
            .until(3 * SEC)
            .traffic(matrix(&topo, &tenants, pps))
            .events(Scenario::new("flash-crowd").at(
                SEC,
                ScenarioEvent::FlashCrowd {
                    pop: 1,
                    multiplier: 8,
                },
            ))
            .rebalance_every(SEC, 2)
            .run();
        assert!(run.traffic_injected > 0, "the matrix drives traffic");
        r.line(&format!(
            "{:>12} {:>8} {:>8} {:>16.1} {:>16.1} {:>11}",
            "flash-crowd",
            tenants.len(),
            0,
            0.0,
            0.0,
            run.stats.link_drops
        ));
        r.line(&format!(
            "{:>12} injected {} matrix packets, {} demand-aware rebalance moves",
            "",
            run.traffic_injected,
            run.rebalance_moves.len()
        ));
        snap.row(
            "flash-crowd",
            tenants.len() as u64,
            0,
            0.0,
            0.0,
            run.stats.link_drops,
        );
    }

    // -- consolidate: plan_fleet's moves executed on the data plane -------
    {
        let mut fleet = Fleet::new(&topo);
        let mut ctl = Controller::new(topo.clone());
        let tenants = seed_tenants(&mut fleet, &mut ctl, &topo, tenants_n, 2, false);
        let planned = ControllerHooks::new(&ctl).plan_consolidation(&fleet).len();
        let run = FleetDriver::new(fleet)
            .until(120 * SEC)
            .hooks(ControllerHooks::new(&ctl))
            .events(Scenario::new("consolidate").at(SEC, ScenarioEvent::ExecuteConsolidation))
            .run();
        assert!(
            !run.consolidation_moves.is_empty(),
            "consolidation executes moves, not just plans them"
        );
        assert_eq!(
            run.stats.migrations_completed,
            run.consolidation_moves.len() as u64,
            "every started consolidation move completes"
        );
        r.line(&format!(
            "{:>12} {:>8} {:>8} {:>16.1} {:>16.1} {:>11}",
            "consolidate",
            tenants.len(),
            0,
            0.0,
            0.0,
            run.stats.link_drops
        ));
        r.line(&format!(
            "{:>12} planned {planned} moves, executed {} live migrations",
            "",
            run.consolidation_moves.len()
        ));
        snap.row(
            "consolidate",
            tenants.len() as u64,
            0,
            0.0,
            0.0,
            run.stats.link_drops,
        );
    }

    // -- cdn-tier: edge replicas absorb edge-ingress traffic --------------
    {
        let mut fleet = Fleet::new(&topo);
        let platforms = fleet.platforms();
        let origin = Ipv4Addr::new(203, 0, 113, 80);
        fleet
            .register(
                platforms[0],
                ClientEntry {
                    addr: origin,
                    config: filter_config(),
                    stateful: false,
                },
            )
            .unwrap();
        let edges: Vec<NodeId> = platforms.iter().copied().skip(1).take(4).collect();
        let mut driver =
            FleetDriver::new(fleet)
                .until(3 * SEC)
                .events(Scenario::new("cdn-tier").at(
                    SEC,
                    ScenarioEvent::CdnTier {
                        origin,
                        edges: edges.clone(),
                    },
                ));
        // The same edge-ingress flow before and after tiering: the
        // pre-tier packets cross the fabric to the origin, the post-tier
        // packets are served by the local replica.
        for (i, &edge) in edges.iter().enumerate() {
            let mk = |seq: u16| {
                PacketBuilder::udp()
                    .src(Ipv4Addr::new(8, 8, 8, 8), seq)
                    .dst(origin, 1500)
                    .build()
            };
            driver = driver
                .inject_at(SEC / 2, edge, mk(1000 + i as u16))
                .inject_at(2 * SEC, edge, mk(2000 + i as u16));
        }
        let run = driver.run();
        assert_eq!(run.cdn_edges, edges.len(), "every edge holds a replica");
        assert_eq!(
            run.stats.fabric_forwards,
            edges.len() as u64,
            "only the pre-tier packets crossed the fabric"
        );
        r.line(&format!(
            "{:>12} {:>8} {:>8} {:>16.1} {:>16.1} {:>11}",
            "cdn-tier", 1, 0, 0.0, 0.0, run.stats.link_drops
        ));
        r.line(&format!(
            "{:>12} {} edge replicas, fabric crossings {} -> 0 after tiering",
            "", run.cdn_edges, run.stats.fabric_forwards
        ));
        snap.row("cdn-tier", 1, 0, 0.0, 0.0, run.stats.link_drops);
    }

    r.finish();
    snap.write();
}
