//! The verification verdict cache.
//!
//! Symbolic verification dominates the controller's per-request cost
//! (Figure 10 splits request latency into model compilation and checking).
//! Identical requests are common — stock modules, re-deployments, fleets
//! of clients asking for the same processing — so [`crate::Controller::deploy`]
//! memoizes the *verdict* of each canonically-equal request: accept on a
//! given platform (with or without a sandbox), or reject with the original
//! typed error.
//!
//! # Key derivation
//!
//! The key captures everything the verdict depends on:
//!
//! * the **epoch** — a counter bumped whenever operator policy, the
//!   hardening level, or the installed topology changes in a way that can
//!   alter verdicts (`add_operator_policy`, an effective `set_hardening`,
//!   `kill`, or an explicit `invalidate_verdicts`);
//! * whether the static-analysis **fast path** is enabled — fast-path and
//!   symbolic verdicts always agree, but the reports they attach to a
//!   rejection differ in detail (the analyzer carries no symbolic egress
//!   flows), so verdicts never replay across a toggle;
//! * whether **compositional summaries** are enabled — same reasoning:
//!   verdicts agree with the whole-graph oracle, report details (egress
//!   flow ordering) may not;
//! * the tenant's **requester class** and sorted **registered addresses**
//!   (both drive the security rules);
//! * the **hardening policy** bits;
//! * the **module name** (requirements reference it in way-points);
//! * the **configuration** in canonical form — for Click configurations,
//!   [`innet_click::ClickConfig::canonical_text`] *before* `$SELF`
//!   binding, so the key does not depend on the address the controller
//!   will pick; for stock modules, the kind;
//! * the **requirement set**, one canonical rendering per requirement.
//!
//! Every variable-length field is length-prefixed, making the encoding
//! injective: no two distinct component tuples serialize to the same key.
//! The map is keyed by the full key string rather than a 64-bit digest so
//! a crafted hash collision cannot smuggle an unverified configuration in
//! behind a cached accept.
//!
//! # Soundness across commits
//!
//! A cached accept is reused under the same argument `deploy_batch`
//! already relies on for snapshot verification: addresses within one
//! platform pool are interchangeable, and committing more modules never
//! makes a previously verified placement unsound — except by exhausting
//! platform capacity, which the hit path re-checks with
//! [`crate::Controller::platform_has_room`] before committing (falling
//! back to full verification when the platform filled up). Anything else
//! that can flip a verdict — policy, hardening, module removal — bumps
//! the epoch, which discards every entry.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::controller::{ClientAccount, DeployError};
use crate::hardening::HardeningPolicy;
use crate::request::{ClientRequest, ModuleConfig};

/// The outcome memoized for one canonical request.
#[derive(Debug, Clone)]
pub(crate) enum CachedOutcome {
    /// The request verified end-to-end and was placed on `platform`.
    Accept {
        /// Name of the platform the verified placement chose.
        platform: String,
        /// Whether the sandbox wrapper was required.
        sandboxed: bool,
    },
    /// The request was refused with this error.
    Reject(DeployError),
}

/// One memoized verdict plus the checking cost the original evaluation
/// paid, credited to `check_ns_saved` accounting on every hit.
#[derive(Debug, Clone)]
pub(crate) struct CachedVerdict {
    /// The decision.
    pub outcome: CachedOutcome,
    /// Nanoseconds the original (miss) evaluation spent checking.
    pub check_ns: u64,
}

/// The cache proper: an epoch counter plus the verdict map. Shared across
/// `deploy_batch` verification shards behind `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub(crate) struct VerdictCache {
    epoch: u64,
    entries: HashMap<String, CachedVerdict>,
}

impl VerdictCache {
    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Looks up a verdict by its full canonical key.
    pub fn get(&self, key: &str) -> Option<CachedVerdict> {
        self.entries.get(key).cloned()
    }

    /// Inserts a verdict computed under `key_epoch`. Dropped silently if
    /// the epoch moved on while the verdict was being computed — a stale
    /// verdict must never land in a fresh epoch.
    pub fn insert(&mut self, key_epoch: u64, key: String, verdict: CachedVerdict) {
        if key_epoch == self.epoch {
            self.entries.insert(key, verdict);
        }
    }

    /// Starts a new epoch, discarding every entry; returns how many
    /// verdicts were invalidated.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        let discarded = self.entries.len() as u64;
        self.entries.clear();
        discarded
    }
}

/// Appends a length-prefixed field, keeping the overall encoding
/// injective even when field values contain separator characters.
fn push_field(key: &mut String, tag: &str, value: &str) {
    let _ = write!(key, "{tag}[{}]={value};", value.len());
}

/// Builds the canonical cache key for one request. `epoch` must be read
/// from the same cache the key will be used against. Like the analyzer
/// fast-path flag, the compositional-summaries toggle joins the key:
/// verdicts agree across the toggle, but the attached reports may differ
/// in detail (flow ordering), so they never replay across it.
pub(crate) fn verdict_key(
    epoch: u64,
    request: &ClientRequest,
    account: &ClientAccount,
    hardening: HardeningPolicy,
    analysis: bool,
    summaries: bool,
) -> String {
    let mut key = String::with_capacity(256);
    let _ = write!(
        key,
        "epoch={epoch};analysis={analysis};summaries={summaries};class={:?};",
        account.class
    );
    let mut registered = account.registered.clone();
    registered.sort_unstable();
    let _ = write!(key, "registered=");
    for addr in &registered {
        let _ = write!(key, "{addr},");
    }
    let _ = write!(
        key,
        ";hardening={},{};",
        hardening.ingress_filtering, hardening.ban_udp_reflection
    );
    push_field(&mut key, "module", &request.module_name);
    match &request.config {
        ModuleConfig::Click(cfg) => push_field(&mut key, "click", &cfg.canonical_text()),
        ModuleConfig::Stock(kind) => push_field(&mut key, "stock", &format!("{kind:?}")),
    }
    for req in &request.requirements {
        push_field(&mut key, "require", &format!("{req:?}"));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_symnet::RequesterClass;

    fn account() -> ClientAccount {
        ClientAccount {
            class: RequesterClass::Client,
            registered: vec!["172.16.15.133".parse().unwrap()],
        }
    }

    fn request(text: &str) -> ClientRequest {
        ClientRequest::parse(text).unwrap()
    }

    const REQ: &str = "module m:\nFromNetfront() -> IPFilter(allow udp) -> ToNetfront();\n\
                       reach from internet udp -> client";

    #[test]
    fn identical_requests_share_a_key() {
        let k1 = verdict_key(
            0,
            &request(REQ),
            &account(),
            HardeningPolicy::default(),
            true,
            true,
        );
        let k2 = verdict_key(
            0,
            &request(REQ),
            &account(),
            HardeningPolicy::default(),
            true,
            true,
        );
        assert_eq!(k1, k2);
    }

    #[test]
    fn every_component_separates_keys() {
        let base = verdict_key(
            0,
            &request(REQ),
            &account(),
            HardeningPolicy::default(),
            true,
            true,
        );
        // Epoch.
        assert_ne!(
            base,
            verdict_key(
                1,
                &request(REQ),
                &account(),
                HardeningPolicy::default(),
                true,
                true
            )
        );
        // Configuration.
        let other = request(
            "module m:\nFromNetfront() -> IPFilter(allow tcp) -> ToNetfront();\n\
             reach from internet udp -> client",
        );
        assert_ne!(
            base,
            verdict_key(
                0,
                &other,
                &account(),
                HardeningPolicy::default(),
                true,
                true
            )
        );
        // Requirements.
        let mut fewer = request(REQ);
        fewer.requirements.clear();
        assert_ne!(
            base,
            verdict_key(
                0,
                &fewer,
                &account(),
                HardeningPolicy::default(),
                true,
                true
            )
        );
        // Class.
        let third_party = ClientAccount {
            class: RequesterClass::ThirdParty,
            ..account()
        };
        assert_ne!(
            base,
            verdict_key(
                0,
                &request(REQ),
                &third_party,
                HardeningPolicy::default(),
                true,
                true
            )
        );
        // Registered addresses.
        let more_addrs = ClientAccount {
            registered: vec![
                "172.16.15.133".parse().unwrap(),
                "198.51.100.1".parse().unwrap(),
            ],
            ..account()
        };
        assert_ne!(
            base,
            verdict_key(
                0,
                &request(REQ),
                &more_addrs,
                HardeningPolicy::default(),
                true,
                true
            )
        );
        // Hardening.
        let hardened = HardeningPolicy {
            ingress_filtering: true,
            ban_udp_reflection: true,
        };
        assert_ne!(
            base,
            verdict_key(0, &request(REQ), &account(), hardened, true, true)
        );
        // Analyzer fast-path toggle.
        assert_ne!(
            base,
            verdict_key(
                0,
                &request(REQ),
                &account(),
                HardeningPolicy::default(),
                false,
                true
            )
        );
        // Compositional-summaries toggle.
        assert_ne!(
            base,
            verdict_key(
                0,
                &request(REQ),
                &account(),
                HardeningPolicy::default(),
                true,
                false
            )
        );
    }

    #[test]
    fn registered_address_order_is_irrelevant() {
        let a = ClientAccount {
            class: RequesterClass::Client,
            registered: vec!["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
        };
        let b = ClientAccount {
            class: RequesterClass::Client,
            registered: vec!["10.0.0.2".parse().unwrap(), "10.0.0.1".parse().unwrap()],
        };
        assert_eq!(
            verdict_key(0, &request(REQ), &a, HardeningPolicy::default(), true, true),
            verdict_key(0, &request(REQ), &b, HardeningPolicy::default(), true, true)
        );
    }

    #[test]
    fn bump_discards_and_counts() {
        let mut cache = VerdictCache::default();
        cache.insert(
            0,
            "k".to_string(),
            CachedVerdict {
                outcome: CachedOutcome::Accept {
                    platform: "p".into(),
                    sandboxed: false,
                },
                check_ns: 1,
            },
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bump_epoch(), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.epoch(), 1);
        // Stale inserts (computed under epoch 0) are refused.
        cache.insert(
            0,
            "k".to_string(),
            CachedVerdict {
                outcome: CachedOutcome::Reject(DeployError::NoSuchModule(7)),
                check_ns: 1,
            },
        );
        assert_eq!(cache.len(), 0);
    }
}
