//! Topology- and capacity-aware placement scoring.
//!
//! The paper's controller "iterates over the platforms" (§4.5); on the
//! three-platform Figure 3 topology any order works, but on a generated
//! fleet topology (`innet_topology::generate_fleet`) the first platform
//! in declaration order is an arbitrary choice among hundreds. The
//! placement stage therefore ranks candidates before the verification
//! loop runs:
//!
//! 1. **client latency** — minimum-latency path from the operator's
//!    client edge to the platform (Dijkstra over the capacitated links),
//! 2. **residual capacity** — occupied fraction of the platform's module
//!    slots, so load spreads instead of piling onto one PoP,
//! 3. **link headroom** — the path's bottleneck bandwidth, as a
//!    tie-breaker between equally close, equally loaded platforms.
//!
//! Scores are pure integers over path attributes, so ranking is
//! deterministic across runs and platforms; ties break on the smaller
//! node id, which on single-PoP topologies reproduces the paper's
//! declaration-order search exactly.

use std::collections::HashMap;

use innet_topology::{NodeId, NodeKind, PathAttrs, Topology};

/// Why a platform was rejected during the placement search, as a bounded
/// label set for `innet_ctl_placement_reject_total{reason=…}`. Free-form
/// reason strings stay in [`crate::DeployError::NoFeasiblePlacement`] for
/// humans; this enum is the metric-cardinality-safe classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The platform's module slots are exhausted.
    PlatformFull,
    /// The platform could not allocate an address.
    NoAddressPool,
    /// Installing there would break an operator policy rule.
    PolicyViolation,
    /// A client `reach` requirement fails with the module there.
    RequirementUnsatisfied,
    /// The named platform does not exist (cache replay after a topology
    /// change).
    UnknownPlatform,
    /// The named node is not a platform.
    NotAPlatform,
    /// An unrecognized reason string.
    Other,
}

impl RejectReason {
    /// The metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::PlatformFull => "platform_full",
            RejectReason::NoAddressPool => "no_address_pool",
            RejectReason::PolicyViolation => "policy_violation",
            RejectReason::RequirementUnsatisfied => "requirement_unsatisfied",
            RejectReason::UnknownPlatform => "unknown_platform",
            RejectReason::NotAPlatform => "not_a_platform",
            RejectReason::Other => "other",
        }
    }

    /// Classifies one per-platform reason string from
    /// [`crate::DeployError::NoFeasiblePlacement`].
    pub fn classify(reason: &str) -> RejectReason {
        if reason == "platform full" {
            RejectReason::PlatformFull
        } else if reason == "no address pool" {
            RejectReason::NoAddressPool
        } else if reason.starts_with("operator policy violated") {
            RejectReason::PolicyViolation
        } else if reason.starts_with("client requirement unsatisfied") {
            RejectReason::RequirementUnsatisfied
        } else if reason == "unknown platform" {
            RejectReason::UnknownPlatform
        } else if reason == "not a platform" {
            RejectReason::NotAPlatform
        } else {
            RejectReason::Other
        }
    }

    /// Whether the reason is a property of current occupancy rather than
    /// of the request. Capacity-class failures must not be memoized in
    /// the verdict cache: occupancy changes on every commit and `kill`
    /// without an epoch bump, so a cached "platform full" would keep
    /// replaying after space frees up.
    pub fn is_capacity(self) -> bool {
        matches!(
            self,
            RejectReason::PlatformFull | RejectReason::NoAddressPool
        )
    }
}

/// Latency past which a platform is considered unreachable from the
/// client vantage (no path in the link graph). Ten seconds one-way —
/// strictly worse than any real path, so unreachable platforms sort
/// last but are still tried (declaration-order fallback for topologies
/// built without link attributes).
const UNREACHABLE_LATENCY_US: u64 = 10_000_000;

/// Precomputed placement-scoring context: minimum-latency paths from the
/// operator's client edge to every node. Built once per topology (it is
/// immutable after construction) and shared across `deploy_batch`
/// verification shards behind an `Arc`.
#[derive(Debug, Default)]
pub struct PlacementContext {
    /// `client_paths[n]` is the best path from the vantage to node `n`.
    client_paths: Vec<Option<PathAttrs>>,
}

impl PlacementContext {
    /// Builds the context for `topo`. The client vantage is the first
    /// `ClientSubnet` node (the operator's customers — the traffic most
    /// placements serve), falling back to the first `Internet` node, then
    /// to node 0.
    pub fn new(topo: &Topology) -> PlacementContext {
        if topo.nodes.is_empty() {
            return PlacementContext {
                client_paths: Vec::new(),
            };
        }
        let vantage = topo
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::ClientSubnet(_)))
            .or_else(|| {
                topo.nodes
                    .iter()
                    .position(|n| matches!(n.kind, NodeKind::Internet))
            })
            .unwrap_or(0);
        PlacementContext {
            client_paths: topo.paths_from(vantage),
        }
    }

    /// Scores one candidate (lower is better): client-path latency in
    /// microseconds dominates, the occupied slot fraction (per-mille)
    /// spreads load among equally close platforms, and a bottleneck
    /// bandwidth penalty breaks remaining ties toward fatter paths.
    pub fn score(&self, platform: NodeId, used: usize, capacity: usize) -> u64 {
        let (latency_us, bandwidth_gbps) =
            match self.client_paths.get(platform).and_then(|p| p.as_ref()) {
                Some(p) => (p.latency_ns / 1_000, p.bandwidth_bps / 1_000_000_000),
                None => (UNREACHABLE_LATENCY_US, 0),
            };
        let occupancy_permille = if capacity == 0 {
            1_000
        } else {
            (used.min(capacity) as u64).saturating_mul(1_000) / capacity as u64
        };
        latency_us
            .saturating_mul(16)
            .saturating_add(occupancy_permille.saturating_mul(4))
            .saturating_add(1_000 / (1 + bandwidth_gbps))
    }

    /// The topology's platforms in placement-preference order: ascending
    /// [`PlacementContext::score`] under the given per-platform module
    /// occupancy, ties broken by ascending node id.
    pub fn rank(&self, topo: &Topology, occupancy: &HashMap<NodeId, usize>) -> Vec<NodeId> {
        let mut ranked: Vec<(u64, NodeId)> = topo
            .platforms()
            .into_iter()
            .map(|p| {
                let capacity = match &topo.node(p).kind {
                    NodeKind::Platform(spec) => spec.capacity,
                    _ => 0,
                };
                let used = occupancy.get(&p).copied().unwrap_or(0);
                (self.score(p, used, capacity), p)
            })
            .collect();
        ranked.sort_unstable();
        ranked.into_iter().map(|(_, p)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_topology::{generate_fleet, FleetParams, PlatformSpec};

    #[test]
    fn classify_round_trips_the_search_reason_strings() {
        assert_eq!(
            RejectReason::classify("platform full"),
            RejectReason::PlatformFull
        );
        assert_eq!(
            RejectReason::classify("no address pool"),
            RejectReason::NoAddressPool
        );
        assert_eq!(
            RejectReason::classify("operator policy violated: reach from internet udp -> client"),
            RejectReason::PolicyViolation
        );
        assert_eq!(
            RejectReason::classify(
                "client requirement unsatisfied: reach from internet udp -> client"
            ),
            RejectReason::RequirementUnsatisfied
        );
        assert_eq!(
            RejectReason::classify("unknown platform"),
            RejectReason::UnknownPlatform
        );
        assert_eq!(
            RejectReason::classify("not a platform"),
            RejectReason::NotAPlatform
        );
        assert_eq!(RejectReason::classify("gremlins"), RejectReason::Other);
        assert!(RejectReason::PlatformFull.is_capacity());
        assert!(RejectReason::NoAddressPool.is_capacity());
        assert!(!RejectReason::PolicyViolation.is_capacity());
    }

    #[test]
    fn figure3_ranks_the_client_nearest_platform_first() {
        let topo = Topology::figure3();
        let ctx = PlacementContext::new(&topo);
        let ranked = ctx.rank(&topo, &HashMap::new());
        assert_eq!(ranked.len(), 3);
        // platform3 hangs directly off the border router the clients
        // attach to; platforms 1 and 2 sit behind extra middlebox hops.
        assert_eq!(topo.node(ranked[0]).name, "platform3");
    }

    #[test]
    fn occupancy_spreads_load_between_equal_platforms() {
        let mut topo = Topology::new();
        let clients = topo
            .add(
                "clients",
                NodeKind::ClientSubnet("172.16.0.0/16".parse().unwrap()),
            )
            .unwrap();
        let a = topo
            .add("pa", NodeKind::Platform(PlatformSpec::default()))
            .unwrap();
        let b = topo
            .add("pb", NodeKind::Platform(PlatformSpec::default()))
            .unwrap();
        topo.link_bidir(clients, 0, a, 0);
        topo.link_bidir(clients, 1, b, 0);
        let ctx = PlacementContext::new(&topo);

        // Empty: tie broken toward the smaller node id.
        assert_eq!(ctx.rank(&topo, &HashMap::new())[0], a);
        // Fill a substantially: b now ranks first.
        let mut occ = HashMap::new();
        occ.insert(a, 500);
        assert_eq!(ctx.rank(&topo, &occ)[0], b);
    }

    #[test]
    fn fleet_ranking_is_deterministic_and_total() {
        let topo = generate_fleet(&FleetParams::default());
        let ctx = PlacementContext::new(&topo);
        let r1 = ctx.rank(&topo, &HashMap::new());
        let r2 = ctx.rank(&topo, &HashMap::new());
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), topo.platforms().len());
    }
}
