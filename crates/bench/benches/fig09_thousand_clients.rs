//! Figure 9: throughput with up to 1,000 clients at 8 Mb/s each, with
//! 50/100/200 client configurations per VM.

use innet::experiments::fig09_thousand::{thousand_clients, ScaleParams};
use innet_bench::Report;

fn main() {
    let steps: Vec<usize> = (100..=1000).step_by(100).collect();
    let mut r = Report::new(
        "fig09_thousand_clients",
        "Figure 9: cumulative throughput (Gbit/s) vs clients, by VM packing",
    );
    r.line(&format!(
        "{:>8} {:>14} {:>14} {:>14}",
        "clients", "50/VM", "100/VM", "200/VM"
    ));
    let sweeps: Vec<Vec<_>> = [50usize, 100, 200]
        .iter()
        .map(|&per_vm| {
            thousand_clients(
                &ScaleParams {
                    per_vm,
                    ..ScaleParams::default()
                },
                &steps,
            )
        })
        .collect();
    for (i, &clients) in steps.iter().enumerate() {
        r.line(&format!(
            "{:>8} {:>14.2} {:>14.2} {:>14.2}",
            clients,
            sweeps[0][i].achieved_gbps,
            sweeps[1][i].achieved_gbps,
            sweeps[2][i].achieved_gbps
        ));
    }
    r.blank();
    r.line("paper: linear growth to 8 Gbit/s at 1,000 clients for all packings");
    r.finish();
}
