//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` — nothing
//! serializes through serde at runtime (there is no serde_json or
//! bincode in the tree), so the derives expand to nothing. If a future
//! PR starts serializing, replace these with real implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; the stub `serde::Serialize` trait has no items.
/// Registers the `serde` helper attribute so standard field annotations
/// (`#[serde(skip)]`, …) compile.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub `serde::Deserialize` trait has no items.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
