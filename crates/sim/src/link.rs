//! Link arithmetic: serialization, propagation, loss, and rate caps.

use rand::Rng;

use crate::des::{SimTime, SECOND};

/// A point-to-point link with rate, one-way latency, and random loss.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Capacity in bits per second.
    pub rate_bps: f64,
    /// One-way propagation latency.
    pub latency: SimTime,
    /// Independent per-packet loss probability (0..1).
    pub loss: f64,
    /// Earliest time the transmitter is free (FIFO serialization).
    next_free: SimTime,
}

impl Link {
    /// Creates a link.
    pub fn new(rate_bps: f64, latency: SimTime, loss: f64) -> Link {
        Link {
            rate_bps,
            latency,
            loss,
            next_free: 0,
        }
    }

    /// Serialization delay of `bytes` at the link rate.
    pub fn serialize_ns(&self, bytes: usize) -> SimTime {
        (bytes as f64 * 8.0 / self.rate_bps * SECOND as f64) as SimTime
    }

    /// Transmits `bytes` starting no earlier than `now`: returns
    /// `Some(arrival_time)` or `None` when the packet is lost.
    pub fn transmit(&mut self, now: SimTime, bytes: usize, rng: &mut impl Rng) -> Option<SimTime> {
        let start = now.max(self.next_free);
        let tx_done = start + self.serialize_ns(bytes);
        self.next_free = tx_done;
        if self.loss > 0.0 && rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            return None;
        }
        Some(tx_done + self.latency)
    }

    /// Time to move `bytes` over the link at full rate plus one latency
    /// (a fluid approximation for large transfers).
    pub fn bulk_transfer_ns(&self, bytes: u64) -> SimTime {
        self.latency + (bytes as f64 * 8.0 / self.rate_bps * SECOND as f64) as SimTime
    }

    /// Earliest time the transmitter is free again: the instant the FIFO
    /// serialization queue drains. `busy_until() - now` is the queueing
    /// delay a packet offered at `now` would see — the quantity a bounded
    /// fabric queue compares against its cap before accepting.
    pub fn busy_until(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serialization_delay() {
        let l = Link::new(100e6, 0, 0.0);
        // 1250 bytes at 100 Mb/s = 100 µs.
        assert_eq!(l.serialize_ns(1250), 100_000);
    }

    #[test]
    fn fifo_backpressure() {
        let mut l = Link::new(8e6, 1_000_000, 0.0); // 8 Mb/s, 1 ms.
        let mut rng = StdRng::seed_from_u64(1);
        // Two 1000-byte packets sent at t=0: 1 ms serialization each.
        let a = l.transmit(0, 1000, &mut rng).unwrap();
        let b = l.transmit(0, 1000, &mut rng).unwrap();
        assert_eq!(a, 2_000_000); // 1 ms tx + 1 ms latency.
        assert_eq!(b, 3_000_000); // Queued behind the first.
    }

    #[test]
    fn loss_rate_statistical() {
        let mut l = Link::new(1e9, 0, 0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let lost = (0..10_000)
            .filter(|_| l.transmit(0, 100, &mut rng).is_none())
            .count();
        assert!((2_700..=3_300).contains(&lost), "lost {lost}");
    }

    #[test]
    fn bulk_transfer() {
        let l = Link::new(25e6, 5_000_000, 0.0);
        // 50 MB at 25 Mb/s = 16 s.
        let t = l.bulk_transfer_ns(50 * 1_000_000);
        assert!((t as f64 / SECOND as f64 - 16.0).abs() < 0.1);
    }
}
