//! # innet-click
//!
//! A Click-style modular packet processor: the restricted programming model
//! In-Net offers its tenants.
//!
//! The paper (§2, §4.1) argues that in-network processing should not be
//! expressed as arbitrary x86 VMs but as graphs of small, well-known packet
//! processing *elements* — the model of the Click modular router. This crate
//! reproduces that substrate:
//!
//! * [`Element`] — the unit of processing, with numbered input and output
//!   ports, push semantics, and a virtual-time `tick` for timed elements.
//! * [`elements`] — the element library: classifiers, filters, rewriters,
//!   NATs, stateful firewalls, tunnels, shapers, the batcher
//!   (`TimedUnqueue`), and the paper's `ChangeEnforcer` sandbox element.
//! * [`ClickConfig`] — the Click configuration *language* (declarations and
//!   `a -> b` connections) with a parser and a programmatic builder.
//! * [`Router`] — the runtime that instantiates a configuration and drives
//!   packets through the element graph.
//!
//! ## Example
//!
//! The paper's Figure 4 "batcher" module, parsed and executed:
//!
//! ```
//! use innet_click::{ClickConfig, Router, Registry};
//! use innet_packet::PacketBuilder;
//! use std::net::Ipv4Addr;
//!
//! let cfg = ClickConfig::parse(r#"
//!     FromNetfront()
//!       -> IPFilter(allow udp dst port 1500)
//!       -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
//!       -> TimedUnqueue(120, 100)
//!       -> dst :: ToNetfront();
//! "#).unwrap();
//!
//! let mut router = Router::from_config(&cfg, &Registry::standard()).unwrap();
//! let pkt = PacketBuilder::udp()
//!     .src(Ipv4Addr::new(8, 8, 8, 8), 999)
//!     .dst(Ipv4Addr::new(5, 5, 5, 5), 1500)
//!     .build();
//! router.deliver(0, pkt, 0);
//! // Batched: nothing emitted until the TimedUnqueue interval elapses.
//! assert!(router.take_tx().is_empty());
//! let tx = router.tick(120_000_000_000);
//! assert_eq!(tx.len(), 1);
//! assert_eq!(tx[0].1.ipv4().unwrap().dst(), Ipv4Addr::new(172, 16, 15, 133));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod canonical;
pub mod compile;
mod config;
mod element;
pub mod elements;
mod graph;
mod netfront;
mod registry;
pub mod summary;

pub use args::ConfigArgs;
pub use canonical::fnv1a_64;
pub use compile::{ClassifyProgram, CompiledRouter, FilterProgram};
pub use config::{ClickConfig, ConfigError, Connection, ElementDecl, PortRef};
pub use element::{Context, Element, ElementError, PortCount, Sink, VecSink};
pub use graph::{BatchResult, Router, RouterError, RouterStats};
pub use netfront::NetfrontRing;
pub use registry::Registry;
pub use summary::{
    AbsField, Constraint, ElementSummary, FieldWrite, FlowSummary, LayerOp, RtOrigin, Shardability,
    SummaryCtor, SummaryKind, ABS_FIELDS,
};
