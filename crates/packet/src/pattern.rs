//! A tcpdump-subset flow-pattern language.
//!
//! The same syntax appears in three places in In-Net, so the AST and parser
//! live here at the bottom of the crate stack:
//!
//! * Click's `IPClassifier`/`IPFilter` rules (`innet-click`),
//! * the requirements API's flow specifications (`innet-policy`), and
//! * symbolic evaluation of both (`innet-symnet`).
//!
//! ## Grammar
//!
//! ```text
//! expr    := or
//! or      := and (("or" | "||") and)*
//! and     := unary (("and" | "&&")? unary)*      -- juxtaposition = and
//! unary   := ("not" | "!") unary | "(" expr ")" | atom
//! atom    := "tcp" | "udp" | "icmp" | "sctp"
//!          | "ip" "proto" NUM
//!          | DIR? ("host" ADDR | "net" CIDR | "port" NUM
//!                  | "portrange" NUM "-" NUM | ADDR)
//!          | "syn" | "true" | "any" | "all" | "-"
//! DIR     := "src" | "dst"
//! ```
//!
//! A bare `ADDR`/`CIDR` after `src`/`dst` is accepted as shorthand for
//! `src host`/`dst host` (the paper writes `dst 172.16.15.133`).

use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{ip::IpProto, Cidr, Packet};

/// Which endpoint a predicate constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Source fields.
    Src,
    /// Destination fields.
    Dst,
    /// Either source or destination (tcpdump's default).
    Either,
}

/// A single field predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Atom {
    /// Transport protocol equals the given protocol.
    Proto(IpProto),
    /// Address (src/dst/either) within a prefix.
    Net(Dir, Cidr),
    /// Port (src/dst/either) equals a value.
    Port(Dir, u16),
    /// Port (src/dst/either) within an inclusive range.
    PortRange(Dir, u16, u16),
    /// TCP SYN set without ACK (the "new flow" predicate).
    Syn,
    /// Matches every packet.
    True,
}

/// A boolean combination of [`Atom`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternExpr {
    /// Leaf predicate.
    Atom(Atom),
    /// Conjunction.
    And(Vec<PatternExpr>),
    /// Disjunction.
    Or(Vec<PatternExpr>),
    /// Negation.
    Not(Box<PatternExpr>),
}

impl PatternExpr {
    /// The pattern that matches everything.
    pub fn any() -> PatternExpr {
        PatternExpr::Atom(Atom::True)
    }

    /// Evaluates the pattern against a concrete packet.
    ///
    /// Non-IPv4 packets match nothing except [`Atom::True`]-only patterns.
    pub fn matches(&self, pkt: &Packet) -> bool {
        match self {
            PatternExpr::Atom(a) => a.matches(pkt),
            PatternExpr::And(xs) => xs.iter().all(|x| x.matches(pkt)),
            PatternExpr::Or(xs) => xs.iter().any(|x| x.matches(pkt)),
            PatternExpr::Not(x) => !x.matches(pkt),
        }
    }

    /// All atoms mentioned by the expression (used by symbolic evaluation
    /// and by the policy compiler to know which fields are constrained).
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            PatternExpr::Atom(a) => out.push(a),
            PatternExpr::And(xs) | PatternExpr::Or(xs) => {
                for x in xs {
                    x.collect_atoms(out);
                }
            }
            PatternExpr::Not(x) => x.collect_atoms(out),
        }
    }
}

impl Atom {
    /// Evaluates the predicate against a concrete packet.
    pub fn matches(&self, pkt: &Packet) -> bool {
        if matches!(self, Atom::True) {
            return true;
        }
        let Ok(ip) = pkt.ipv4() else { return false };
        match self {
            Atom::True => true,
            Atom::Proto(p) => ip.proto() == *p,
            Atom::Net(dir, net) => match dir {
                Dir::Src => net.contains(ip.src()),
                Dir::Dst => net.contains(ip.dst()),
                Dir::Either => net.contains(ip.src()) || net.contains(ip.dst()),
            },
            Atom::Port(dir, p) => Atom::port_pred(pkt, *dir, |x| x == *p),
            Atom::PortRange(dir, lo, hi) => {
                Atom::port_pred(pkt, *dir, |x| (*lo..=*hi).contains(&x))
            }
            Atom::Syn => pkt
                .tcp()
                .map(|t| t.flags().is_initial_syn())
                .unwrap_or(false),
        }
    }

    fn port_pred(pkt: &Packet, dir: Dir, f: impl Fn(u16) -> bool) -> bool {
        let ports = match pkt.ip_proto() {
            Ok(IpProto::Udp) => pkt.udp().ok().map(|u| (u.src_port(), u.dst_port())),
            Ok(IpProto::Tcp) => pkt.tcp().ok().map(|t| (t.src_port(), t.dst_port())),
            _ => None,
        };
        let Some((sp, dp)) = ports else { return false };
        match dir {
            Dir::Src => f(sp),
            Dir::Dst => f(dp),
            Dir::Either => f(sp) || f(dp),
        }
    }
}

/// Header fields extracted once per packet, so that rule sets can be
/// scanned without re-parsing the packet per rule (Click compiles its
/// classifiers for the same reason; see `IPClassifier`).
#[derive(Debug, Clone, Copy)]
pub struct PacketView {
    /// Transport protocol, `None` for non-IPv4 frames.
    pub proto: Option<IpProto>,
    /// IPv4 source address as an integer.
    pub src: u32,
    /// IPv4 destination address as an integer.
    pub dst: u32,
    /// Transport source port (0 when absent).
    pub src_port: u16,
    /// Transport destination port (0 when absent).
    pub dst_port: u16,
    /// Whether the packet is a bare TCP SYN.
    pub syn: bool,
}

impl PacketView {
    /// Extracts the view from a packet (one header parse).
    pub fn of(pkt: &Packet) -> PacketView {
        let Ok(ip) = pkt.ipv4() else {
            return PacketView {
                proto: None,
                src: 0,
                dst: 0,
                src_port: 0,
                dst_port: 0,
                syn: false,
            };
        };
        let proto = ip.proto();
        let (src, dst) = (u32::from(ip.src()), u32::from(ip.dst()));
        let (src_port, dst_port, syn) = match proto {
            IpProto::Udp => match pkt.udp() {
                Ok(u) => (u.src_port(), u.dst_port(), false),
                Err(_) => (0, 0, false),
            },
            IpProto::Tcp => match pkt.tcp() {
                Ok(t) => (t.src_port(), t.dst_port(), t.flags().is_initial_syn()),
                Err(_) => (0, 0, false),
            },
            _ => (0, 0, false),
        };
        PacketView {
            proto: Some(proto),
            src,
            dst,
            src_port,
            dst_port,
            syn,
        }
    }

    /// Extracts an L3-only view: like [`PacketView::of`] but without the
    /// transport-header parse, leaving the ports zero and `syn` false.
    /// Only sound for rule programs that provably never read ports or
    /// TCP flags — compiled classifiers check that property at build
    /// time and take this cheaper parse when it holds.
    pub fn of_l3(pkt: &Packet) -> PacketView {
        let Ok(ip) = pkt.ipv4() else {
            return PacketView {
                proto: None,
                src: 0,
                dst: 0,
                src_port: 0,
                dst_port: 0,
                syn: false,
            };
        };
        PacketView {
            proto: Some(ip.proto()),
            src: u32::from(ip.src()),
            dst: u32::from(ip.dst()),
            src_port: 0,
            dst_port: 0,
            syn: false,
        }
    }
}

impl PatternExpr {
    /// Evaluates the pattern against a pre-extracted [`PacketView`].
    pub fn matches_view(&self, v: &PacketView) -> bool {
        match self {
            PatternExpr::Atom(a) => a.matches_view(v),
            PatternExpr::And(xs) => xs.iter().all(|x| x.matches_view(v)),
            PatternExpr::Or(xs) => xs.iter().any(|x| x.matches_view(v)),
            PatternExpr::Not(x) => !x.matches_view(v),
        }
    }
}

impl Atom {
    /// Evaluates the predicate against a pre-extracted [`PacketView`].
    pub fn matches_view(&self, v: &PacketView) -> bool {
        if matches!(self, Atom::True) {
            return true;
        }
        let Some(proto) = v.proto else { return false };
        let has_ports = matches!(proto, IpProto::Tcp | IpProto::Udp);
        match self {
            Atom::True => true,
            Atom::Proto(p) => proto == *p,
            Atom::Net(dir, net) => match dir {
                Dir::Src => net.contains(Ipv4Addr::from(v.src)),
                Dir::Dst => net.contains(Ipv4Addr::from(v.dst)),
                Dir::Either => {
                    net.contains(Ipv4Addr::from(v.src)) || net.contains(Ipv4Addr::from(v.dst))
                }
            },
            Atom::Port(dir, p) => {
                has_ports
                    && match dir {
                        Dir::Src => v.src_port == *p,
                        Dir::Dst => v.dst_port == *p,
                        Dir::Either => v.src_port == *p || v.dst_port == *p,
                    }
            }
            Atom::PortRange(dir, lo, hi) => {
                let r = *lo..=*hi;
                has_ports
                    && match dir {
                        Dir::Src => r.contains(&v.src_port),
                        Dir::Dst => r.contains(&v.dst_port),
                        Dir::Either => r.contains(&v.src_port) || r.contains(&v.dst_port),
                    }
            }
            Atom::Syn => v.syn,
        }
    }
}

/// Error produced when parsing a pattern fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern parse error: {}", self.message)
    }
}

impl std::error::Error for PatternParseError {}

fn err(message: impl Into<String>) -> PatternParseError {
    PatternParseError {
        message: message.into(),
    }
}

struct Tokens<'a> {
    toks: Vec<&'a str>,
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str) -> Tokens<'a> {
        // Insert spaces around parens so they tokenize on whitespace.
        let toks = s
            .split_whitespace()
            .flat_map(|w| {
                let mut parts = Vec::new();
                let mut rest = w;
                while let Some(i) = rest.find(['(', ')']) {
                    if i > 0 {
                        parts.push(&rest[..i]);
                    }
                    parts.push(&rest[i..i + 1]);
                    rest = &rest[i + 1..];
                }
                if !rest.is_empty() {
                    parts.push(rest);
                }
                parts
            })
            .collect();
        Tokens { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn parse_or(t: &mut Tokens<'_>) -> Result<PatternExpr, PatternParseError> {
    let mut terms = vec![parse_and(t)?];
    while t.eat("or") || t.eat("||") {
        terms.push(parse_and(t)?);
    }
    Ok(if terms.len() == 1 {
        terms.pop().expect("len checked")
    } else {
        PatternExpr::Or(terms)
    })
}

fn parse_and(t: &mut Tokens<'_>) -> Result<PatternExpr, PatternParseError> {
    let mut terms = vec![parse_unary(t)?];
    loop {
        if t.eat("and") || t.eat("&&") {
            terms.push(parse_unary(t)?);
            continue;
        }
        // Juxtaposition: anything that can start a term continues the AND.
        match t.peek() {
            Some(")") | Some("or") | Some("||") | None => break,
            Some(_) => terms.push(parse_unary(t)?),
        }
    }
    Ok(if terms.len() == 1 {
        terms.pop().expect("len checked")
    } else {
        PatternExpr::And(terms)
    })
}

fn parse_unary(t: &mut Tokens<'_>) -> Result<PatternExpr, PatternParseError> {
    if t.eat("not") || t.eat("!") {
        return Ok(PatternExpr::Not(Box::new(parse_unary(t)?)));
    }
    if t.eat("(") {
        let inner = parse_or(t)?;
        if !t.eat(")") {
            return Err(err("expected ')'"));
        }
        return Ok(inner);
    }
    parse_atom(t).map(PatternExpr::Atom)
}

fn parse_atom(t: &mut Tokens<'_>) -> Result<Atom, PatternParseError> {
    let tok = t.next().ok_or_else(|| err("unexpected end of pattern"))?;
    match tok {
        "tcp" => Ok(Atom::Proto(IpProto::Tcp)),
        "udp" => Ok(Atom::Proto(IpProto::Udp)),
        "icmp" => Ok(Atom::Proto(IpProto::Icmp)),
        "sctp" => Ok(Atom::Proto(IpProto::Sctp)),
        "syn" => Ok(Atom::Syn),
        "true" | "any" | "all" | "-" => Ok(Atom::True),
        "ip" => {
            if !t.eat("proto") {
                return Err(err("expected 'proto' after 'ip'"));
            }
            let n = t
                .next()
                .ok_or_else(|| err("expected protocol number"))?
                .parse::<u8>()
                .map_err(|_| err("bad protocol number"))?;
            Ok(Atom::Proto(IpProto::from(n)))
        }
        "src" => parse_directed(t, Dir::Src),
        "dst" => parse_directed(t, Dir::Dst),
        "host" => {
            let a = parse_addr(t)?;
            Ok(Atom::Net(Dir::Either, Cidr::host(a)))
        }
        "net" => {
            let c = parse_cidr(t)?;
            Ok(Atom::Net(Dir::Either, c))
        }
        "port" => {
            let p = parse_port(t)?;
            Ok(Atom::Port(Dir::Either, p))
        }
        "portrange" => {
            let (lo, hi) = parse_portrange(t)?;
            Ok(Atom::PortRange(Dir::Either, lo, hi))
        }
        other => {
            // A bare address or CIDR means "host <addr>" in either direction.
            if let Ok(c) = other.parse::<Cidr>() {
                Ok(Atom::Net(Dir::Either, c))
            } else {
                Err(err(format!("unknown token '{other}'")))
            }
        }
    }
}

fn parse_directed(t: &mut Tokens<'_>, dir: Dir) -> Result<Atom, PatternParseError> {
    let tok = t
        .peek()
        .ok_or_else(|| err("expected predicate after src/dst"))?;
    match tok {
        "host" => {
            t.next();
            Ok(Atom::Net(dir, Cidr::host(parse_addr(t)?)))
        }
        "net" => {
            t.next();
            Ok(Atom::Net(dir, parse_cidr(t)?))
        }
        "port" => {
            t.next();
            Ok(Atom::Port(dir, parse_port(t)?))
        }
        "portrange" => {
            t.next();
            let (lo, hi) = parse_portrange(t)?;
            Ok(Atom::PortRange(dir, lo, hi))
        }
        other => {
            // `src 1.2.3.4` / `dst 10.0.0.0/8` shorthand.
            if let Ok(c) = other.parse::<Cidr>() {
                t.next();
                Ok(Atom::Net(dir, c))
            } else {
                Err(err(format!("unknown predicate '{other}' after src/dst")))
            }
        }
    }
}

fn parse_addr(t: &mut Tokens<'_>) -> Result<Ipv4Addr, PatternParseError> {
    t.next()
        .ok_or_else(|| err("expected address"))?
        .parse()
        .map_err(|_| err("bad address"))
}

fn parse_cidr(t: &mut Tokens<'_>) -> Result<Cidr, PatternParseError> {
    t.next()
        .ok_or_else(|| err("expected CIDR"))?
        .parse()
        .map_err(|_| err("bad CIDR"))
}

fn parse_port(t: &mut Tokens<'_>) -> Result<u16, PatternParseError> {
    t.next()
        .ok_or_else(|| err("expected port"))?
        .parse()
        .map_err(|_| err("bad port"))
}

fn parse_portrange(t: &mut Tokens<'_>) -> Result<(u16, u16), PatternParseError> {
    let tok = t.next().ok_or_else(|| err("expected port range"))?;
    let (lo, hi) = tok.split_once('-').ok_or_else(|| err("bad port range"))?;
    let lo = lo.parse().map_err(|_| err("bad port range"))?;
    let hi = hi.parse().map_err(|_| err("bad port range"))?;
    if lo > hi {
        return Err(err("port range is inverted"));
    }
    Ok((lo, hi))
}

impl FromStr for PatternExpr {
    type Err = PatternParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut t = Tokens::new(s);
        if t.peek().is_none() {
            // An empty flow specification means "any traffic".
            return Ok(PatternExpr::any());
        }
        let e = parse_or(&mut t)?;
        match t.peek() {
            None => Ok(e),
            Some(tok) => Err(err(format!("trailing token '{tok}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    fn udp_pkt(dport: u16) -> Packet {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 1), 5000)
            .dst(Ipv4Addr::new(172, 16, 15, 133), dport)
            .build()
    }

    #[test]
    fn paper_figure4_pattern() {
        let p: PatternExpr = "udp dst port 1500".parse().unwrap();
        assert!(p.matches(&udp_pkt(1500)));
        assert!(!p.matches(&udp_pkt(1501)));
    }

    #[test]
    fn bare_dst_addr_shorthand() {
        let p: PatternExpr = "dst 172.16.15.133".parse().unwrap();
        assert!(p.matches(&udp_pkt(1)));
        let q: PatternExpr = "dst 172.16.15.134".parse().unwrap();
        assert!(!q.matches(&udp_pkt(1)));
    }

    #[test]
    fn or_and_not_parens() {
        let p: PatternExpr = "(tcp or udp) and not dst port 22".parse().unwrap();
        assert!(p.matches(&udp_pkt(80)));
        assert!(!p.matches(&udp_pkt(22)));
    }

    #[test]
    fn either_direction_port() {
        let p: PatternExpr = "port 5000".parse().unwrap();
        assert!(p.matches(&udp_pkt(80)), "matches the source port");
    }

    #[test]
    fn portrange() {
        let p: PatternExpr = "dst portrange 1000-2000".parse().unwrap();
        assert!(p.matches(&udp_pkt(1500)));
        assert!(!p.matches(&udp_pkt(2001)));
    }

    #[test]
    fn net_predicates() {
        let p: PatternExpr = "src net 10.0.0.0/8".parse().unwrap();
        assert!(p.matches(&udp_pkt(1)));
        let q: PatternExpr = "dst net 10.0.0.0/8".parse().unwrap();
        assert!(!q.matches(&udp_pkt(1)));
    }

    #[test]
    fn syn_predicate() {
        use crate::TcpFlags;
        let p: PatternExpr = "tcp syn".parse().unwrap();
        let syn = PacketBuilder::tcp().flags(TcpFlags::SYN).build();
        let synack = PacketBuilder::tcp()
            .flags(TcpFlags::SYN | TcpFlags::ACK)
            .build();
        assert!(p.matches(&syn));
        assert!(!p.matches(&synack));
    }

    #[test]
    fn ip_proto_number() {
        let p: PatternExpr = "ip proto 132".parse().unwrap();
        let sctp = PacketBuilder::raw(IpProto::Sctp).build();
        assert!(p.matches(&sctp));
    }

    #[test]
    fn empty_means_any() {
        let p: PatternExpr = "".parse().unwrap();
        assert!(p.matches(&udp_pkt(1)));
    }

    #[test]
    fn catch_all_dash() {
        let p: PatternExpr = "-".parse().unwrap();
        assert!(p.matches(&udp_pkt(1)));
    }

    #[test]
    fn errors() {
        assert!("udp dst port banana".parse::<PatternExpr>().is_err());
        assert!("( udp".parse::<PatternExpr>().is_err());
        assert!("frobnicate".parse::<PatternExpr>().is_err());
        assert!("dst portrange 9-2".parse::<PatternExpr>().is_err());
    }

    #[test]
    fn view_agrees_with_direct_matching() {
        use crate::TcpFlags;
        let exprs = [
            "udp dst port 1500",
            "tcp syn",
            "port 5000",
            "dst net 172.16.0.0/16",
            "(tcp or udp) and not dst port 22",
            "host 10.0.0.1",
            "dst portrange 1000-2000",
        ];
        let pkts = [
            PacketBuilder::udp()
                .src(Ipv4Addr::new(10, 0, 0, 1), 5000)
                .dst(Ipv4Addr::new(172, 16, 15, 133), 1500)
                .build(),
            PacketBuilder::tcp().flags(TcpFlags::SYN).build(),
            PacketBuilder::tcp()
                .flags(TcpFlags::ACK)
                .dst(Ipv4Addr::new(9, 9, 9, 9), 22)
                .build(),
            PacketBuilder::raw(IpProto::Sctp).build(),
            Packet::from_bytes(vec![0u8; 14]),
        ];
        for e in exprs {
            let p: PatternExpr = e.parse().unwrap();
            for pkt in &pkts {
                let view = PacketView::of(pkt);
                assert_eq!(
                    p.matches(pkt),
                    p.matches_view(&view),
                    "{e} diverges on {pkt:?}"
                );
            }
        }
    }

    #[test]
    fn non_ip_matches_only_true() {
        let raw = Packet::from_bytes(vec![0u8; 14]);
        assert!(PatternExpr::any().matches(&raw));
        let p: PatternExpr = "udp".parse().unwrap();
        assert!(!p.matches(&raw));
    }
}
