//! Client processing requests (paper §4.1, Figure 4).

use innet_click::ClickConfig;
use innet_policy::Requirement;
use serde::{Deserialize, Serialize};

/// A pre-defined stock processing module offered by the controller
/// (paper §4.1: "a reverse-HTTP proxy appliance, an explicit proxy …, a
/// DNS server that uses geolocation …, and an arbitrary x86 VM").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StockModule {
    /// Reverse HTTP proxy (squid-style).
    ReverseHttpProxy,
    /// Explicit forward proxy.
    ExplicitProxy,
    /// Geolocation DNS server.
    GeoDns,
    /// An arbitrary x86 virtual machine (opaque; always sandboxed for
    /// tenants).
    X86Vm,
}

impl StockModule {
    /// Parses a stock-module keyword.
    pub fn parse(s: &str) -> Option<StockModule> {
        match s.trim() {
            "reverse-http-proxy" | "reverse-proxy" => Some(StockModule::ReverseHttpProxy),
            "explicit-proxy" => Some(StockModule::ExplicitProxy),
            "geo-dns" | "dns" => Some(StockModule::GeoDns),
            "x86-vm" | "x86" => Some(StockModule::X86Vm),
            _ => None,
        }
    }
}

/// The processing a client asks to instantiate.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleConfig {
    /// A Click configuration of well-known elements.
    Click(ClickConfig),
    /// A stock module.
    Stock(StockModule),
}

/// A full client request: one processing module plus the requirements
/// that must hold after installation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRequest {
    /// Module name (used in `module:element:port` way-points).
    pub module_name: String,
    /// The processing to instantiate.
    pub config: ModuleConfig,
    /// The client's requirements.
    pub requirements: Vec<Requirement>,
}

/// Error produced when a request fails to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestParseError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for RequestParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request parse error: {}", self.message)
    }
}

impl std::error::Error for RequestParseError {}

impl ClientRequest {
    /// Builds a request programmatically.
    #[deprecated(
        since = "0.1.0",
        note = "use ClientRequest::click or ClientRequest::stock with .require()/.requires_str()"
    )]
    pub fn new(
        module_name: impl Into<String>,
        config: ModuleConfig,
        requirements: Vec<Requirement>,
    ) -> ClientRequest {
        ClientRequest {
            module_name: module_name.into(),
            config,
            requirements,
        }
    }

    /// A request for a Click configuration, with no requirements yet.
    /// Chain [`ClientRequest::require`] or [`ClientRequest::requires_str`]
    /// to add them:
    ///
    /// ```
    /// use innet_controller::ClientRequest;
    /// use innet_click::ClickConfig;
    ///
    /// let cfg = ClickConfig::parse("FromNetfront() -> Discard();").unwrap();
    /// let req = ClientRequest::click("drop", cfg)
    ///     .requires_str("reach from internet udp -> client")
    ///     .unwrap();
    /// assert_eq!(req.module_name, "drop");
    /// assert_eq!(req.requirements.len(), 1);
    /// ```
    pub fn click(module_name: impl Into<String>, config: ClickConfig) -> ClientRequest {
        ClientRequest {
            module_name: module_name.into(),
            config: ModuleConfig::Click(config),
            requirements: Vec::new(),
        }
    }

    /// A request for a stock module, with no requirements yet.
    pub fn stock(module_name: impl Into<String>, module: StockModule) -> ClientRequest {
        ClientRequest {
            module_name: module_name.into(),
            config: ModuleConfig::Stock(module),
            requirements: Vec::new(),
        }
    }

    /// Adds one already-built requirement (chainable).
    pub fn require(mut self, requirement: Requirement) -> ClientRequest {
        self.requirements.push(requirement);
        self
    }

    /// Parses and adds one `reach …` requirement line (chainable; fails
    /// with the same errors [`ClientRequest::parse`] would report).
    pub fn requires_str(mut self, reach: &str) -> Result<ClientRequest, RequestParseError> {
        let req = Requirement::parse(reach).map_err(|e| RequestParseError {
            message: e.to_string(),
        })?;
        self.requirements.push(req);
        Ok(self)
    }

    /// Parses the textual request format modeled on the paper's Figure 4:
    ///
    /// ```text
    /// module <name>:            -- or:  stock <name>: <kind>
    /// <Click configuration ...>
    ///
    /// reach from <node> ... [const fields]
    /// reach from ...
    /// ```
    ///
    /// Lines starting with `reach` begin a requirement; subsequent
    /// indented/continuation lines (`-> …`, `const …`) extend it.
    pub fn parse(text: &str) -> Result<ClientRequest, RequestParseError> {
        let err = |m: &str| RequestParseError {
            message: m.to_string(),
        };
        let mut module_name = String::from("module");
        let mut stock: Option<StockModule> = None;
        let mut config_lines: Vec<&str> = Vec::new();
        let mut reach_blocks: Vec<String> = Vec::new();

        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            if let Some(rest) = line.strip_prefix("module ") {
                module_name = rest.trim_end_matches(':').trim().to_string();
                continue;
            }
            if let Some(rest) = line.strip_prefix("stock ") {
                let mut parts = rest.splitn(2, ':');
                let name = parts.next().unwrap_or("stock").trim();
                let kind_s = parts.next().unwrap_or(name).trim();
                module_name = name.to_string();
                stock = Some(
                    StockModule::parse(kind_s)
                        .ok_or_else(|| err(&format!("unknown stock module '{kind_s}'")))?,
                );
                continue;
            }
            if line.starts_with("reach") {
                reach_blocks.push(line.to_string());
            } else if let Some(last) = reach_blocks.last_mut() {
                // Continuation of the current requirement.
                last.push(' ');
                last.push_str(line);
            } else {
                config_lines.push(raw);
            }
        }

        let config = match stock {
            Some(kind) => {
                if !config_lines.is_empty() {
                    return Err(err("a stock request cannot also carry a configuration"));
                }
                ModuleConfig::Stock(kind)
            }
            None => {
                let text = config_lines.join("\n");
                if text.trim().is_empty() {
                    return Err(err("request carries no configuration"));
                }
                ModuleConfig::Click(
                    ClickConfig::parse(&text)
                        .map_err(|e| err(&format!("bad configuration: {e}")))?,
                )
            }
        };

        let requirements = reach_blocks
            .iter()
            .map(|b| Requirement::parse(b).map_err(|e| err(&e.to_string())))
            .collect::<Result<Vec<_>, _>>()?;

        Ok(ClientRequest {
            module_name,
            config,
            requirements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_policy::NodeRef;

    const FIG4: &str = r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
    "#;

    #[test]
    fn parse_figure4() {
        let r = ClientRequest::parse(FIG4).unwrap();
        assert_eq!(r.module_name, "batcher");
        let ModuleConfig::Click(cfg) = &r.config else {
            panic!("expected a Click configuration");
        };
        assert_eq!(cfg.elements.len(), 5);
        assert_eq!(r.requirements.len(), 1);
        assert_eq!(r.requirements[0].from, NodeRef::Internet);
        assert_eq!(r.requirements[0].hops[1].const_fields.len(), 3);
    }

    #[test]
    fn parse_stock() {
        let r = ClientRequest::parse(
            "stock cache: reverse-http-proxy\n\nreach from internet tcp -> client",
        )
        .unwrap();
        assert_eq!(r.module_name, "cache");
        assert_eq!(r.config, ModuleConfig::Stock(StockModule::ReverseHttpProxy));
        assert_eq!(r.requirements.len(), 1);
    }

    #[test]
    fn multiple_requirements() {
        let r = ClientRequest::parse(
            "module m:\nFromNetfront() -> Discard();\n\
             reach from internet udp -> client\n\
             reach from client -> internet",
        )
        .unwrap();
        assert_eq!(r.requirements.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(ClientRequest::parse("").is_err());
        assert!(ClientRequest::parse("stock x: frobnicator").is_err());
        assert!(ClientRequest::parse("module m:\nNotAClass(").is_err());
        assert!(
            ClientRequest::parse("stock x: x86-vm\nFromNetfront() -> Discard();").is_err(),
            "stock + config is contradictory"
        );
    }

    #[test]
    fn builder_matches_parser() {
        // The chained builder and the textual parser produce the same
        // request value.
        let parsed = ClientRequest::parse(
            "module m:\nFromNetfront() -> Discard();\n\
             reach from internet udp -> client",
        )
        .unwrap();
        let cfg = ClickConfig::parse("FromNetfront() -> Discard();").unwrap();
        let built = ClientRequest::click("m", cfg)
            .requires_str("reach from internet udp -> client")
            .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn builder_stock_and_require() {
        let req = Requirement::parse("reach from internet tcp -> client").unwrap();
        let r = ClientRequest::stock("cache", StockModule::ReverseHttpProxy).require(req);
        assert_eq!(r.module_name, "cache");
        assert_eq!(r.config, ModuleConfig::Stock(StockModule::ReverseHttpProxy));
        assert_eq!(r.requirements.len(), 1);
        // A malformed reach line surfaces the parse error.
        assert!(ClientRequest::stock("c", StockModule::GeoDns)
            .requires_str("reach nonsense here")
            .is_err());
    }

    #[test]
    fn stock_keywords() {
        assert_eq!(
            StockModule::parse("reverse-proxy"),
            Some(StockModule::ReverseHttpProxy)
        );
        assert_eq!(StockModule::parse("geo-dns"), Some(StockModule::GeoDns));
        assert_eq!(StockModule::parse("x86"), Some(StockModule::X86Vm));
        assert_eq!(
            StockModule::parse("explicit-proxy"),
            Some(StockModule::ExplicitProxy)
        );
        assert_eq!(StockModule::parse("nope"), None);
    }
}
