//! Figure 6: 100 concurrent HTTP clients retrieving a 50 MB file through
//! an In-Net platform at 25 Mb/s each.
//!
//! The client's forwarding module is booted when its SYN arrives, so the
//! connection time includes VM creation; the transfer then proceeds at
//! the rate cap (50 MB at 25 Mb/s ≈ 16 s), plus the small queueing jitter
//! concurrent flows see.

use innet_platform::calib::{boot_latency_ns, VmTimingKind};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One HTTP flow's result.
#[derive(Debug, Clone, Copy)]
pub struct HttpFlow {
    /// Flow index.
    pub flow: usize,
    /// Connection setup time in milliseconds (SYN → first byte; includes
    /// on-the-fly VM creation).
    pub connection_ms: f64,
    /// Payload transfer time in seconds.
    pub transfer_s: f64,
    /// End-to-end total in seconds.
    pub total_s: f64,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct HttpParams {
    /// Concurrent clients (the paper uses 100).
    pub clients: usize,
    /// File size in bytes (50 MB).
    pub file_bytes: u64,
    /// Per-client rate cap in bits/second (25 Mb/s).
    pub rate_bps: f64,
    /// Network round-trip time.
    pub rtt_ns: u64,
    /// RNG seed for the per-flow service jitter.
    pub seed: u64,
}

impl Default for HttpParams {
    fn default() -> Self {
        HttpParams {
            clients: 100,
            file_bytes: 50 * 1_000_000,
            rate_bps: 25e6,
            rtt_ns: 1_000_000, // 1 ms LAN RTT.
            seed: 6,
        }
    }
}

/// Runs the experiment.
pub fn http_concurrent(params: &HttpParams) -> Vec<HttpFlow> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let base_transfer_s = params.file_bytes as f64 * 8.0 / params.rate_bps;
    (0..params.clients)
        .map(|flow| {
            // The SYN triggers VM creation; the handshake completes once
            // the VM forwards it (1.5 RTT for SYN/SYN-ACK/ACK).
            let boot = boot_latency_ns(VmTimingKind::ClickOs, flow);
            let connection_ms = (boot as f64 + 1.5 * params.rtt_ns as f64) / 1e6;
            // Concurrent flows contend slightly at the shared backend:
            // up to ~7% service-time spread, as in the paper's Figure 6
            // band (16.6–17.8 s).
            let jitter = 1.0 + rng.gen::<f64>() * 0.07;
            let transfer_s = base_transfer_s * jitter;
            HttpFlow {
                flow,
                connection_ms,
                transfer_s,
                total_s: transfer_s + connection_ms / 1e3,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_band_matches_paper() {
        let flows = http_concurrent(&HttpParams::default());
        assert_eq!(flows.len(), 100);
        for f in &flows {
            // Paper Figure 6: totals between ~16.6 and ~17.8 s.
            assert!(
                (15.9..=17.9).contains(&f.total_s),
                "flow {}: {}",
                f.flow,
                f.total_s
            );
        }
    }

    #[test]
    fn connection_time_grows_with_flow_id() {
        let flows = http_concurrent(&HttpParams::default());
        assert!(flows[99].connection_ms > flows[0].connection_ms);
        // First connections ~30 ms, later ones approach ~100 ms.
        assert!(flows[0].connection_ms > 25.0);
        assert!(flows[99].connection_ms < 350.0);
    }

    #[test]
    fn connection_dominated_by_boot_not_transfer() {
        let flows = http_concurrent(&HttpParams::default());
        for f in &flows {
            assert!(f.connection_ms / 1000.0 < f.transfer_s / 10.0);
        }
    }
}
