//! Operator hardening knobs from the paper's §7 security discussion.
//!
//! Two caveats temper In-Net's default-off guarantee:
//!
//! * **Amplification via forged implicit authorization** — an attacker
//!   sends small requests with the victim's spoofed source address; a
//!   UDP responder module then "replies" to the victim with larger
//!   packets (the classic DNS amplification pattern). The paper's
//!   mitigations: *ingress filtering* on the Internet and client links
//!   (limits who can be spoofed), and, for full eradication, *banning
//!   connectionless traffic* — "amplification attacks are not possible
//!   with TCP because the attacker cannot complete the three-way
//!   handshake. In fact, operators must choose between flexibility of
//!   client processing and security."
//! * **Time-unbounded authorization** — handled by the `ChangeEnforcer`'s
//!   idle timeouts (`innet-click`), not here.

use innet_packet::IpProto;
use innet_symnet::{Field, RequesterClass, SecurityReport, SymPacket, Verdict};

use crate::netmodel::InstalledModule;

/// The operator's §7 hardening configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardeningPolicy {
    /// Drop Internet ingress traffic whose source claims an
    /// operator-internal prefix (platform pools or client subnets).
    /// Limits spoofing-driven implicit authorization to "clients can only
    /// attack other clients, Internet users other Internet users".
    pub ingress_filtering: bool,
    /// Ban connectionless (UDP) traffic for third-party modules that rely
    /// on *implicit* authorization: reflection to a spoofable source is
    /// the amplification vector. Explicitly white-listed destinations are
    /// unaffected.
    pub ban_udp_reflection: bool,
}

/// Re-evaluates a security report under the hardening policy: flows that
/// were accepted through implicit authorization but could be UDP
/// reflections get demoted.
///
/// Returns the (possibly downgraded) verdict plus the offending flow
/// descriptions.
pub fn apply_udp_reflection_ban(
    class: RequesterClass,
    egress_flows: &[SymPacket],
    base: &SecurityReport,
) -> (Verdict, Vec<String>) {
    if class != RequesterClass::ThirdParty || base.verdict == Verdict::Reject {
        return (base.verdict, Vec::new());
    }
    let mut offenders = Vec::new();
    for flow in egress_flows {
        // A reflection: the destination is bound to the ingress source
        // (implicit authorization) and the flow can be UDP.
        let reflective = flow.provably_same(flow.get(Field::IpDst), flow.ingress.get(Field::IpSrc));
        let can_be_udp = flow
            .possible(Field::Proto)
            .contains(IpProto::Udp.number() as u64);
        if reflective && can_be_udp {
            offenders.push(format!(
                "UDP reflection flow (amplification vector): {}",
                flow.render_fields()
            ));
        }
    }
    if offenders.is_empty() {
        (base.verdict, offenders)
    } else {
        (Verdict::Reject, offenders)
    }
}

/// The internal prefixes ingress filtering protects, derived from the
/// installed world (platform pools come from the topology; module
/// addresses are inside them).
pub fn internal_prefixes(
    topo: &innet_topology::Topology,
    _modules: &[InstalledModule],
) -> Vec<innet_packet::Cidr> {
    use innet_topology::NodeKind;
    let mut out = Vec::new();
    for n in &topo.nodes {
        match &n.kind {
            NodeKind::Platform(spec) => out.push(spec.addr_pool),
            NodeKind::ClientSubnet(c) => out.push(*c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_click::{ClickConfig, Registry};
    use innet_symnet::{check_module, SecurityContext};
    use std::net::Ipv4Addr;

    fn report(cfg: &ClickConfig, class: RequesterClass) -> SecurityReport {
        check_module(
            cfg,
            &SecurityContext {
                assigned_addr: Ipv4Addr::new(203, 0, 113, 10),
                registered: vec![Ipv4Addr::new(198, 51, 100, 1)],
                class,
            },
            &Registry::standard(),
        )
        .unwrap()
    }

    #[test]
    fn dns_responder_rejected_under_udp_ban() {
        // A UDP responder (the stock DNS server) is Safe by default —
        // implicit authorization — but is exactly the amplification
        // vector the §7 ban removes.
        let cfg =
            ClickConfig::parse("FromNetfront() -> StockDNSServer(203.0.113.10) -> ToNetfront();")
                .unwrap();
        let base = report(&cfg, RequesterClass::ThirdParty);
        assert_eq!(base.verdict, Verdict::Safe);
        let (hardened, offenders) =
            apply_udp_reflection_ban(RequesterClass::ThirdParty, &base.egress_flows, &base);
        assert_eq!(hardened, Verdict::Reject);
        assert!(!offenders.is_empty());
    }

    #[test]
    fn tcp_responder_unaffected() {
        // The reverse HTTP proxy reflects too, but over TCP: the
        // three-way handshake defeats spoofed authorization, so the ban
        // leaves it alone.
        let cfg = ClickConfig::parse(
            "FromNetfront() -> StockReverseProxy(203.0.113.10) -> ToNetfront();",
        )
        .unwrap();
        let base = report(&cfg, RequesterClass::ThirdParty);
        assert_eq!(base.verdict, Verdict::Safe);
        let (hardened, offenders) =
            apply_udp_reflection_ban(RequesterClass::ThirdParty, &base.egress_flows, &base);
        assert_eq!(hardened, Verdict::Safe);
        assert!(offenders.is_empty());
    }

    #[test]
    fn whitelist_delivery_unaffected() {
        // Delivery to a registered (explicitly authorized) address is not
        // a reflection, UDP or not.
        let cfg = ClickConfig::parse(
            "FromNetfront() -> IPFilter(allow udp) \
             -> IPRewriter(pattern - - 198.51.100.1 - 0 0) -> ToNetfront();",
        )
        .unwrap();
        let base = report(&cfg, RequesterClass::ThirdParty);
        assert_eq!(base.verdict, Verdict::Safe);
        let (hardened, _) =
            apply_udp_reflection_ban(RequesterClass::ThirdParty, &base.egress_flows, &base);
        assert_eq!(hardened, Verdict::Safe);
    }

    #[test]
    fn clients_exempt_from_the_ban() {
        let cfg =
            ClickConfig::parse("FromNetfront() -> StockDNSServer(203.0.113.10) -> ToNetfront();")
                .unwrap();
        let base = report(&cfg, RequesterClass::Client);
        let (hardened, _) =
            apply_udp_reflection_ban(RequesterClass::Client, &base.egress_flows, &base);
        assert_eq!(hardened, base.verdict);
    }

    #[test]
    fn internal_prefixes_cover_pools_and_clients() {
        let topo = innet_topology::Topology::figure3();
        let prefixes = internal_prefixes(&topo, &[]);
        assert_eq!(prefixes.len(), 4, "3 platform pools + 1 client subnet");
        assert!(prefixes
            .iter()
            .any(|c| c.contains(Ipv4Addr::new(172, 16, 15, 133))));
    }
}
