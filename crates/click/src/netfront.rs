//! A netfront-style packet ring.
//!
//! ClickOS VMs receive and send packets through Xen netfront/netback shared
//! rings; each packet crosses the ring with a copy and a checksum pass. Our
//! `FromNetfront`/`ToNetfront` elements reproduce that per-packet I/O cost by
//! moving every packet through this ring: one copy into a fixed slot plus a
//! 16-bit folding checksum over the copied bytes.
//!
//! This cost floor matters for fidelity: the paper's Figure 8 shows
//! throughput staying flat while tenant configurations are added to a VM
//! *because* per-packet I/O dominates the linear classifier scan at first.
//! Without a realistic I/O cost, adding tenants would immediately show up as
//! a throughput droop.

use innet_packet::{internet_checksum, Packet};

/// Size in bytes of one ring slot (one MTU-sized frame plus slack).
pub const SLOT_SIZE: usize = 2048;

/// Default number of slots.
///
/// Xen's netfront ring has 256 entries, but the hot working set is the
/// handful of in-flight slots; we default to 64 so that many-VM hosts
/// (Figure 12 runs 100 rings on one core) keep their rings cache-resident
/// the way a NIC-bound testbed effectively does.
pub const DEFAULT_SLOTS: usize = 64;

/// A fixed-size packet ring emulating the netfront/netback data path.
#[derive(Debug)]
pub struct NetfrontRing {
    slots: Vec<u8>,
    n_slots: usize,
    head: usize,
    /// Packets moved through the ring since creation.
    pub packets: u64,
    /// Bytes moved through the ring since creation.
    pub bytes: u64,
    /// Running XOR of slot checksums; read by benchmarks so the checksum
    /// work cannot be optimized away.
    pub csum_acc: u16,
}

impl Default for NetfrontRing {
    fn default() -> Self {
        NetfrontRing::new(DEFAULT_SLOTS)
    }
}

impl NetfrontRing {
    /// Creates a ring with `n_slots` slots.
    pub fn new(n_slots: usize) -> NetfrontRing {
        let n_slots = n_slots.max(1);
        NetfrontRing {
            slots: vec![0; n_slots * SLOT_SIZE],
            n_slots,
            head: 0,
            packets: 0,
            bytes: 0,
            csum_acc: 0,
        }
    }

    /// Moves a packet through the ring: copies its bytes into the next slot
    /// and checksums the copy, accounting the transfer.
    pub fn transfer(&mut self, pkt: &Packet) {
        let len = pkt.len().min(SLOT_SIZE);
        let base = self.head * SLOT_SIZE;
        self.slots[base..base + len].copy_from_slice(&pkt.bytes()[..len]);
        self.csum_acc ^= internet_checksum(&self.slots[base..base + len]);
        self.head = (self.head + 1) % self.n_slots;
        self.packets += 1;
        self.bytes += len as u64;
    }

    /// Moves a whole batch through the ring in one call.
    ///
    /// This is the batched netfront drain: the per-packet copy and
    /// checksum are unavoidable (they are the cost being modelled), but
    /// one call covers the whole batch so the driver pays the ring's
    /// bookkeeping and call overhead once per batch rather than once per
    /// packet. Accounting and checksum accumulation are identical to
    /// calling [`NetfrontRing::transfer`] per packet.
    pub fn transfer_batch(&mut self, pkts: &[Packet]) {
        for pkt in pkts {
            self.transfer(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_packet::PacketBuilder;

    #[test]
    fn accounts_transfers() {
        let mut ring = NetfrontRing::new(4);
        let pkt = PacketBuilder::udp().pad_to(100).build();
        for _ in 0..10 {
            ring.transfer(&pkt);
        }
        assert_eq!(ring.packets, 10);
        assert_eq!(ring.bytes, 1000);
    }

    #[test]
    fn batch_transfer_matches_per_packet() {
        let pkts: Vec<Packet> = (0..7)
            .map(|i| PacketBuilder::udp().pad_to(100 + i as usize).build())
            .collect();
        let mut one = NetfrontRing::new(4);
        let mut batched = NetfrontRing::new(4);
        for p in &pkts {
            one.transfer(p);
        }
        batched.transfer_batch(&pkts);
        assert_eq!(one.packets, batched.packets);
        assert_eq!(one.bytes, batched.bytes);
        assert_eq!(one.csum_acc, batched.csum_acc);
        assert_eq!(one.head, batched.head);
    }

    #[test]
    fn wraps_around() {
        let mut ring = NetfrontRing::new(2);
        let pkt = PacketBuilder::udp().pad_to(64).build();
        for _ in 0..5 {
            ring.transfer(&pkt);
        }
        assert_eq!(ring.head, 1);
    }

    #[test]
    fn oversized_packets_truncated_into_slot() {
        let mut ring = NetfrontRing::new(1);
        let pkt = PacketBuilder::udp().pad_to(SLOT_SIZE + 500).build();
        ring.transfer(&pkt);
        assert_eq!(ring.bytes, SLOT_SIZE as u64);
    }
}
