//! Measurement elements: `Counter` and the per-flow `FlowMeter`.

use std::any::Any;
use std::collections::HashMap;

use innet_packet::{FlowTuple, Packet};

use crate::element::{Context, Element, PortCount, Sink};

/// `Counter()` — counts packets and bytes, passing everything through.
#[derive(Debug, Default)]
pub struct Counter {
    packets: u64,
    bytes: u64,
    first_ns: Option<u64>,
    last_ns: u64,
}

impl Counter {
    /// Creates a counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Packets seen.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Bytes seen.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Observed average rate in bits/second over the measurement window,
    /// or `None` before two packets have been seen.
    pub fn bit_rate(&self) -> Option<f64> {
        let first = self.first_ns?;
        let span = self.last_ns.checked_sub(first)?;
        if span == 0 {
            return None;
        }
        Some(self.bytes as f64 * 8.0 / (span as f64 / 1e9))
    }
}

impl Element for Counter {
    fn class_name(&self) -> &'static str {
        "Counter"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        self.packets += 1;
        self.bytes += pkt.len() as u64;
        self.first_ns.get_or_insert(ctx.now_ns);
        self.last_ns = ctx.now_ns;
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Per-flow statistics kept by [`FlowMeter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets in this flow (both directions).
    pub packets: u64,
    /// Bytes in this flow (both directions).
    pub bytes: u64,
    /// Virtual time of the first packet.
    pub first_ns: u64,
    /// Virtual time of the most recent packet.
    pub last_ns: u64,
}

/// `FlowMeter()` — accounts packets and bytes per connection
/// (direction-insensitive 5-tuple), passing traffic through unchanged.
///
/// One of the middleboxes in the paper's Table 1 and Figure 12 throughput
/// sweep.
#[derive(Debug, Default)]
pub struct FlowMeter {
    flows: HashMap<FlowTuple, FlowStats>,
    non_ip: u64,
}

impl FlowMeter {
    /// Creates a flow meter.
    pub fn new() -> FlowMeter {
        FlowMeter::default()
    }

    /// Number of distinct connections observed.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Statistics for one connection, if observed.
    pub fn stats(&self, key: &FlowTuple) -> Option<&FlowStats> {
        self.flows.get(key)
    }

    /// Iterates over all (connection, statistics) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowTuple, &FlowStats)> {
        self.flows.iter()
    }
}

impl Element for FlowMeter {
    fn class_name(&self) -> &'static str {
        "FlowMeter"
    }

    fn ports(&self) -> PortCount {
        PortCount::ONE_ONE
    }

    fn push(&mut self, _port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        match innet_packet::FlowKey::of(&pkt) {
            Ok(key) => {
                let e = self.flows.entry(key.canonical()).or_insert(FlowStats {
                    first_ns: ctx.now_ns,
                    ..FlowStats::default()
                });
                e.packets += 1;
                e.bytes += pkt.len() as u64;
                e.last_ns = ctx.now_ns;
            }
            Err(_) => self.non_ip += 1,
        }
        out.push(0, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    #[test]
    fn counter_accumulates_and_rates() {
        let mut c = Counter::new();
        let mut s = VecSink::new();
        let pkt = PacketBuilder::udp().pad_to(100).build();
        c.push(0, pkt.clone(), &Context::at(0), &mut s);
        assert!(c.bit_rate().is_none(), "one packet has no rate yet");
        c.push(0, pkt, &Context::at(1_000_000_000), &mut s);
        assert_eq!(c.packets(), 2);
        assert_eq!(c.bytes(), 200);
        // 200 bytes over 1 s = 1600 bit/s.
        assert!((c.bit_rate().unwrap() - 1600.0).abs() < 1e-6);
    }

    #[test]
    fn flow_meter_merges_directions() {
        let mut m = FlowMeter::new();
        let mut s = VecSink::new();
        let fwd = PacketBuilder::tcp()
            .src(Ipv4Addr::new(1, 1, 1, 1), 100)
            .dst(Ipv4Addr::new(2, 2, 2, 2), 200)
            .build();
        let rev = PacketBuilder::tcp()
            .src(Ipv4Addr::new(2, 2, 2, 2), 200)
            .dst(Ipv4Addr::new(1, 1, 1, 1), 100)
            .build();
        let key = FlowKey::of(&fwd).unwrap().canonical();
        m.push(0, fwd, &Context::at(0), &mut s);
        m.push(0, rev, &Context::at(5), &mut s);
        assert_eq!(m.flow_count(), 1);
        let st = m.stats(&key).unwrap();
        assert_eq!(st.packets, 2);
        assert_eq!(st.last_ns, 5);
    }

    #[test]
    fn flow_meter_separates_flows() {
        let mut m = FlowMeter::new();
        let mut s = VecSink::new();
        for port in 0..10u16 {
            let p = PacketBuilder::udp()
                .src(Ipv4Addr::new(1, 1, 1, 1), 1000 + port)
                .dst(Ipv4Addr::new(2, 2, 2, 2), 53)
                .build();
            m.push(0, p, &Context::at(0), &mut s);
        }
        assert_eq!(m.flow_count(), 10);
        assert_eq!(s.pushed.len(), 10, "passthrough preserved");
    }
}
