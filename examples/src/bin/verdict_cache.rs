//! The verification verdict cache: identical requests pay for symbolic
//! verification once; policy changes discard every memoized verdict.
//!
//! Run with: `cargo run -p innet-examples --bin verdict_cache`

use innet::prelude::*;
use std::time::Instant;

const FIG4: &str = r#"
    module batcher:
    FromNetfront()
      -> IPFilter(allow udp dst port 1500)
      -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
      -> TimedUnqueue(120, 100)
      -> dst :: ToNetfront();

    reach from internet udp
      -> batcher:dst:0 dst 172.16.15.133
      -> client dst port 1500
      const proto && dst port && payload
"#;

fn main() {
    let mut ctl = Controller::new(Topology::figure3());
    ctl.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );

    // First deploy: full verification (a cache miss).
    let t = Instant::now();
    let first = ctl
        .deploy("mobile-7", ClientRequest::parse(FIG4).unwrap())
        .expect("deployable");
    let miss = t.elapsed();
    println!(
        "miss: verified and placed '{}' on {} in {:.2} ms",
        first.module_name,
        first.platform,
        miss.as_secs_f64() * 1e3
    );

    // A fleet of 49 identical requests: every one replays the verdict.
    let t = Instant::now();
    for _ in 0..49 {
        ctl.deploy("mobile-7", ClientRequest::parse(FIG4).unwrap())
            .expect("deployable");
    }
    let hits = t.elapsed();
    let s = ctl.stats();
    println!(
        "hits: deployed 49 more in {:.2} ms total ({:.1} µs each)",
        hits.as_secs_f64() * 1e3,
        hits.as_secs_f64() * 1e6 / 49.0
    );
    println!(
        "stats: {} hits / {} misses, {:.2} ms of checking saved",
        s.cache_hits,
        s.cache_misses,
        s.check_ns_saved as f64 / 1e6
    );

    // An operator policy change invalidates every cached verdict: the
    // next deploy re-verifies under the new rules (and here, the new
    // rule does not hold, so the request is now refused).
    ctl.add_operator_policy(
        Requirement::parse("reach from internet tcp src port 80 -> HTTPOptimizer -> client")
            .unwrap(),
    );
    println!(
        "policy change: {} cached verdicts invalidated",
        ctl.stats().cache_invalidations
    );
    match ctl.deploy("mobile-7", ClientRequest::parse(FIG4).unwrap()) {
        Ok(_) => println!("re-verified: still deployable"),
        Err(e) => println!("re-verified under the new policy: {e}"),
    }
}
