//! Lowering a verified configuration into a flat compiled data plane.
//!
//! [`Router`] interprets the element graph: every hop is a virtual call
//! through `Box<dyn Element>`, every edge a `HashMap` probe, and every
//! classifier a linear rule scan per packet. [`CompiledRouter`] compiles
//! the same [`ClickConfig`] once, ahead of time, into a flat stage array:
//!
//! * **Decision-tree dispatch.** `IPClassifier`/`IPFilter` rule lists are
//!   specialized per protocol branch (non-IP / TCP / UDP / ICMP / other-IP)
//!   — atoms that are decidable within a branch fold away, and runs of
//!   `dst host A/32` rules become one exact-match table probe instead of a
//!   linear scan (generalizing the interpreter's one-rule `DstHost` fast
//!   path). `Classifier` byte patterns and `StaticIPLookup` route tables
//!   compile to flat programs.
//! * **Fusion.** Adjacent single-input/single-output header-touching
//!   elements (`IPFilter`, `CheckIPHeader`, `DecIPTTL`, `Counter`) fuse
//!   into one stage that runs their micro-ops back to back over a single
//!   parsed header view, eliminating the per-hop queue round-trip.
//! * **Flat edges.** The `(element, port) -> (element, port)` HashMap
//!   becomes an offset-indexed array, so forwarding a packet is two array
//!   loads.
//!
//! Semantics are bit-for-bit those of the interpreter: identical packet
//! bytes, identical emission order (the inline fast path only engages when
//! it is provably FIFO-equivalent — see `run_from`), identical
//! [`RouterStats`] accounting, and the same netfront ring cost at entry
//! and exit (that cost is the paper's Figure 8 fidelity floor, not
//! overhead to optimize away). The interpreted `Router` remains the
//! differential oracle; see DESIGN.md §13.
//!
//! [`Router`]: crate::graph::Router

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use innet_packet::{
    pattern::{Atom, Dir, PacketView, PatternExpr},
    Cidr, IpProto, Packet,
};

use crate::{
    config::ClickConfig,
    element::{Context, Element, Sink},
    elements::{
        BytePattern, CheckIPHeader, Classifier, Counter, DecIPTTL, FilterAction, FromNetfront,
        IPClassifier, IPFilter, StaticIPLookup, ToNetfront,
    },
    graph::{BatchResult, RouterError, RouterStats},
    netfront::NetfrontRing,
    registry::Registry,
};

/// Hop bound identical to the interpreter's: a compiled plan must detect
/// forwarding loops at exactly the same point.
const MAX_HOPS: usize = 100_000;

/// The packet currently being worked on: (stage index, input port, the
/// packet, and its cached header view with a "parsed L4 too" flag).
type InFlight = (u32, u32, Packet, Option<(PacketView, bool)>);

// ---------------------------------------------------------------------------
// Classifier compilation: per-protocol-branch specialization.
// ---------------------------------------------------------------------------

/// The protocol branch a packet's [`PacketView`] falls into. Every view
/// lands in exactly one branch, so rules can be specialized per branch
/// ahead of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Branch {
    /// `view.proto == None` (non-IPv4 frames).
    NonIp,
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// ICMP.
    Icmp,
    /// IPv4 with any other protocol.
    OtherIp,
}

const BRANCHES: [Branch; 5] = [
    Branch::NonIp,
    Branch::Tcp,
    Branch::Udp,
    Branch::Icmp,
    Branch::OtherIp,
];

/// Result of specializing an expression to one branch: either decided at
/// compile time, or a (usually smaller) residual expression.
enum Spec {
    Known(bool),
    Expr(PatternExpr),
}

/// Specializes `expr` for views in branch `b`, using exactly the truth
/// table of [`Atom::matches_view`]: every non-`True` atom is false when
/// `proto` is `None`; `proto tcp/udp/icmp` is decidable in a known-proto
/// branch; port atoms are false outside TCP/UDP (no ports to compare).
/// Address (`Net`) and `Syn` atoms stay residual — they depend on packet
/// fields the branch does not determine.
fn specialize(expr: &PatternExpr, b: Branch) -> Spec {
    match expr {
        PatternExpr::Atom(a) => specialize_atom(a, b),
        PatternExpr::And(xs) => {
            let mut kept = Vec::new();
            for x in xs {
                match specialize(x, b) {
                    Spec::Known(false) => return Spec::Known(false),
                    Spec::Known(true) => {}
                    Spec::Expr(e) => kept.push(e),
                }
            }
            match kept.len() {
                0 => Spec::Known(true),
                1 => Spec::Expr(kept.pop().expect("len checked")),
                _ => Spec::Expr(PatternExpr::And(kept)),
            }
        }
        PatternExpr::Or(xs) => {
            let mut kept = Vec::new();
            for x in xs {
                match specialize(x, b) {
                    Spec::Known(true) => return Spec::Known(true),
                    Spec::Known(false) => {}
                    Spec::Expr(e) => kept.push(e),
                }
            }
            match kept.len() {
                0 => Spec::Known(false),
                1 => Spec::Expr(kept.pop().expect("len checked")),
                _ => Spec::Expr(PatternExpr::Or(kept)),
            }
        }
        PatternExpr::Not(x) => match specialize(x, b) {
            Spec::Known(v) => Spec::Known(!v),
            Spec::Expr(e) => Spec::Expr(PatternExpr::Not(Box::new(e))),
        },
    }
}

fn specialize_atom(a: &Atom, b: Branch) -> Spec {
    if matches!(a, Atom::True) {
        return Spec::Known(true);
    }
    // `matches_view` returns false for every other atom when the view has
    // no IP protocol.
    if b == Branch::NonIp {
        return Spec::Known(false);
    }
    match a {
        Atom::Proto(p) => match b {
            Branch::Tcp => Spec::Known(*p == IpProto::Tcp),
            Branch::Udp => Spec::Known(*p == IpProto::Udp),
            Branch::Icmp => Spec::Known(*p == IpProto::Icmp),
            // The other-IP branch only rules *out* the three named
            // branches; `proto sctp` and friends stay residual.
            Branch::OtherIp => {
                if matches!(p, IpProto::Tcp | IpProto::Udp | IpProto::Icmp) {
                    Spec::Known(false)
                } else {
                    Spec::Expr(PatternExpr::Atom(a.clone()))
                }
            }
            Branch::NonIp => unreachable!("handled above"),
        },
        Atom::Port(..) | Atom::PortRange(..) => match b {
            // `matches_view` gates port compares on TCP/UDP.
            Branch::Tcp | Branch::Udp => Spec::Expr(PatternExpr::Atom(a.clone())),
            _ => Spec::Known(false),
        },
        // Address and SYN predicates depend on fields the branch does not
        // fix; keep them (evaluated against the same view the interpreter
        // uses, so residual evaluation cannot diverge).
        _ => Spec::Expr(PatternExpr::Atom(a.clone())),
    }
}

/// Exact-match table over `/32` destination hosts: open addressing with
/// Fibonacci (multiplicative) hashing into a power-of-two slot array.
/// A lookup is one multiply, a shift, and a short linear probe — the
/// per-packet budget cannot absorb a SipHash `HashMap` probe per stage,
/// and this table sits on the hot path twice (classifier dispatch and
/// the fused filter's rule match).
#[derive(Debug, Default)]
struct HostTable {
    /// `(host, rule)` slots; `rule == u32::MAX` marks an empty slot
    /// (rule indices are bounded by the config size, never `MAX`).
    slots: Vec<(u32, u32)>,
    mask: usize,
    len: usize,
}

impl HostTable {
    #[inline]
    fn slot_of(host: u32, mask: usize) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and keep the high bits,
        // which a power-of-two mask then folds into the table.
        ((host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
    }

    /// Lowest rule index recorded for `host`, or `u32::MAX` when absent
    /// (the same "no table hit" sentinel [`ClassifyProgram::classify`]
    /// uses).
    #[inline]
    fn get(&self, host: u32) -> u32 {
        if self.len == 0 {
            return u32::MAX;
        }
        let mut i = Self::slot_of(host, self.mask);
        loop {
            let (k, r) = self.slots[i];
            if r == u32::MAX {
                return u32::MAX;
            }
            if k == host {
                return r;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Records `host → rule` unless the host is already present: rules
    /// compile in ascending index order, so keeping the first insert is
    /// first-match-wins.
    fn insert_first(&mut self, host: u32, rule: u32) {
        debug_assert_ne!(rule, u32::MAX);
        // Grow at 7/8 load; linear probing stays short well below that.
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            let cap = (self.slots.len() * 2).max(16);
            let old = std::mem::replace(&mut self.slots, vec![(0, u32::MAX); cap]);
            self.mask = cap - 1;
            for (k, r) in old {
                if r != u32::MAX {
                    self.place(k, r);
                }
            }
        }
        if self.place(host, rule) {
            self.len += 1;
        }
    }

    /// Probes for `host` and writes into the first empty slot; returns
    /// whether a new entry was written (false when the host exists).
    fn place(&mut self, host: u32, rule: u32) -> bool {
        let mut i = Self::slot_of(host, self.mask);
        loop {
            let (k, r) = self.slots[i];
            if r == u32::MAX {
                self.slots[i] = (host, rule);
                return true;
            }
            if k == host {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// One branch of a compiled rule list: an exact-match table over the
/// destination address for `dst host A/32` rules, plus the ordered
/// residual rules that still need expression evaluation. First-match-wins
/// is preserved by recording each rule's original index and taking the
/// minimum across the two structures.
#[derive(Debug, Default)]
struct BranchPlan {
    /// `dst host A/32` rules: address → lowest matching rule index.
    host_table: HostTable,
    /// Residual rules `(original index, specialized expression)`,
    /// ascending by index.
    residual: Vec<(u32, PatternExpr)>,
}

/// Whether evaluating `e` can read the view's transport fields (ports or
/// TCP flags). Programs whose residuals are all L3-only run against the
/// cheaper [`PacketView::of_l3`] parse.
fn expr_reads_l4(e: &PatternExpr) -> bool {
    match e {
        PatternExpr::Atom(a) => matches!(a, Atom::Port(..) | Atom::PortRange(..) | Atom::Syn),
        PatternExpr::And(xs) | PatternExpr::Or(xs) => xs.iter().any(expr_reads_l4),
        PatternExpr::Not(x) => expr_reads_l4(x),
    }
}

/// A rule list (`IPClassifier` outputs or `IPFilter` rule numbers)
/// compiled into per-branch plans.
#[derive(Debug)]
pub struct ClassifyProgram {
    branches: [BranchPlan; 5],
    host_rules: usize,
    needs_l4: bool,
}

impl ClassifyProgram {
    /// Compiles an ordered rule list.
    pub fn build(rules: &[PatternExpr]) -> ClassifyProgram {
        let mut branches: [BranchPlan; 5] = Default::default();
        let mut host_rules = 0usize;
        for (bi, b) in BRANCHES.iter().enumerate() {
            let plan = &mut branches[bi];
            for (idx, rule) in rules.iter().enumerate() {
                match specialize(rule, *b) {
                    // Unmatched in this branch: the rule vanishes.
                    Spec::Known(false) => {}
                    // Always matches here: it is this branch's catch-all,
                    // and no later rule is reachable.
                    Spec::Known(true) => {
                        plan.residual.push((idx as u32, PatternExpr::any()));
                        break;
                    }
                    Spec::Expr(e) => {
                        if let PatternExpr::Atom(Atom::Net(Dir::Dst, net)) = &e {
                            if net.prefix_len() == 32 {
                                // Same address compiled twice keeps the
                                // earlier (winning) index.
                                plan.host_table.insert_first(net.first_u32(), idx as u32);
                                if *b == Branch::Udp {
                                    host_rules += 1;
                                }
                                continue;
                            }
                        }
                        plan.residual.push((idx as u32, e));
                    }
                }
            }
        }
        let needs_l4 = branches
            .iter()
            .any(|p| p.residual.iter().any(|(_, e)| expr_reads_l4(e)));
        ClassifyProgram {
            branches,
            host_rules,
            needs_l4,
        }
    }

    /// Whether any compiled rule can read ports or TCP flags. When false,
    /// [`classify`](Self::classify) is sound against an L3-only view
    /// ([`PacketView::of_l3`]): host tables read the destination address
    /// and branch dispatch reads the protocol, neither touches L4.
    #[inline]
    pub fn needs_l4(&self) -> bool {
        self.needs_l4
    }

    /// How many rules compiled to exact-match table entries (reported by
    /// [`CompiledRouter::describe`]).
    pub fn table_rules(&self) -> usize {
        self.host_rules
    }

    /// The index of the first matching rule for `view`, or `None` when no
    /// rule matches. Exactly first-match-wins: the residual scan stops as
    /// soon as indices pass the table hit.
    #[inline]
    pub fn classify(&self, view: &PacketView) -> Option<u32> {
        let plan = match view.proto {
            None => &self.branches[0],
            Some(IpProto::Tcp) => &self.branches[1],
            Some(IpProto::Udp) => &self.branches[2],
            Some(IpProto::Icmp) => &self.branches[3],
            Some(_) => &self.branches[4],
        };
        let table_hit = plan.host_table.get(view.dst);
        for (idx, expr) in &plan.residual {
            if *idx >= table_hit {
                break;
            }
            if expr.matches_view(view) {
                return Some(*idx);
            }
        }
        (table_hit != u32::MAX).then_some(table_hit)
    }
}

/// An `IPFilter` compiled as a [`ClassifyProgram`] plus per-rule actions.
#[derive(Debug)]
pub struct FilterProgram {
    prog: ClassifyProgram,
    actions: Vec<FilterAction>,
}

impl FilterProgram {
    /// Compiles an ordered allow/deny rule list.
    pub fn build(rules: &[(FilterAction, PatternExpr)]) -> FilterProgram {
        let exprs: Vec<PatternExpr> = rules.iter().map(|(_, e)| e.clone()).collect();
        FilterProgram {
            prog: ClassifyProgram::build(&exprs),
            actions: rules.iter().map(|(a, _)| *a).collect(),
        }
    }

    /// Whether any rule can read ports or TCP flags (see
    /// [`ClassifyProgram::needs_l4`]).
    #[inline]
    pub fn needs_l4(&self) -> bool {
        self.prog.needs_l4()
    }

    /// Whether `view` passes the filter (first matching rule is `allow`;
    /// no match is the implicit final deny).
    #[inline]
    pub fn pass(&self, view: &PacketView) -> bool {
        match self.prog.classify(view) {
            Some(i) => matches!(self.actions[i as usize], FilterAction::Allow),
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Stages and micro-ops.
// ---------------------------------------------------------------------------

/// One fused header operation. Each micro-op replicates one interpreted
/// element hop exactly (including its drop conditions) and counts as one
/// hop in [`RouterStats`].
// Boxing the large variants would put a pointer chase on every hop of
// the hot loop; the padding on the small variants is the cheaper trade.
#[allow(clippy::large_enum_variant)]
enum MicroOp {
    /// `IPFilter`: drop unless the compiled rule list allows.
    Filter(FilterProgram),
    /// `CheckIPHeader`: drop unless version 4 and checksum verify.
    CheckIp,
    /// `DecIPTTL`: decrement TTL + fix checksum; drop at TTL <= 1 or on
    /// unparseable headers.
    DecTtl,
    /// `Counter`: count packets/bytes and timestamps, always pass.
    Count {
        packets: u64,
        bytes: u64,
        first_ns: Option<u64>,
        last_ns: u64,
    },
}

impl MicroOp {
    fn name(&self) -> &'static str {
        match self {
            MicroOp::Filter(_) => "filter",
            MicroOp::CheckIp => "checkip",
            MicroOp::DecTtl => "decttl",
            MicroOp::Count { .. } => "count",
        }
    }
}

/// One stage of the compiled plan, indexed exactly like the source
/// configuration's elements so edge wiring carries over.
// Same trade as `MicroOp`: stages are matched once per hop, so variant
// padding beats the indirection a `Box` would introduce.
#[allow(clippy::large_enum_variant)]
enum Stage {
    /// `FromNetfront`: pay the netfront ring cost, stamp the ingress.
    Entry { iface: u16, ring: NetfrontRing },
    /// `ToNetfront`: pay the ring cost, transmit.
    Exit { iface: u16, ring: NetfrontRing },
    /// `IPClassifier` compiled to branch dispatch.
    Classify(ClassifyProgram),
    /// `Classifier` raw byte patterns, first match wins.
    ClassifyBytes(Vec<BytePattern>),
    /// `StaticIPLookup`: ordered longest-prefix route table.
    Route(Vec<(Cidr, usize)>),
    /// A fused chain of micro-ops; `exit_edge` is the last member's
    /// port-0 wire.
    Fused {
        ops: Vec<MicroOp>,
        exit_edge: Option<(u32, u32)>,
    },
    /// Any element without a native lowering runs as the interpreted
    /// instance behind dynamic dispatch.
    Dyn(Box<dyn Element>),
    /// A chain member consumed by a `Fused` stage; unreachable (fusion
    /// requires in-degree 1 from its chain predecessor).
    Gone,
}

/// Obs mirrors of [`RouterStats`], same series names as the interpreter so
/// dashboards aggregate both engines.
#[derive(Debug, Clone)]
struct CompiledMetrics {
    delivered: innet_obs::Counter,
    transmitted: innet_obs::Counter,
    hops: innet_obs::Counter,
    dropped_unconnected: innet_obs::Counter,
}

impl CompiledMetrics {
    fn register(reg: &innet_obs::Registry) -> CompiledMetrics {
        CompiledMetrics {
            delivered: reg.counter("innet_click_delivered_total"),
            transmitted: reg.counter("innet_click_transmitted_total"),
            hops: reg.counter("innet_click_hops_total"),
            dropped_unconnected: reg
                .labeled_counter("innet_click_drops_total", "reason")
                .with("unconnected_port"),
        }
    }
}

/// Sink handed to `Dyn` stages: buffers port pushes, routes transmissions
/// straight to the tx list (identical to the interpreter's run sink).
struct StageSink<'a> {
    emitted: &'a mut Vec<(usize, Packet)>,
    tx: &'a mut Vec<(u16, Packet)>,
}

impl Sink for StageSink<'_> {
    fn push(&mut self, port: usize, pkt: Packet) {
        self.emitted.push((port, pkt));
    }

    fn transmit(&mut self, iface: u16, pkt: Packet) {
        self.tx.push((iface, pkt));
    }
}

/// Intermediate per-element lowering decision (phase 1 of `compile`).
enum Lower {
    Entry(u16),
    Exit(u16),
    Classify(ClassifyProgram),
    Bytes(Vec<BytePattern>),
    Route(Vec<(Cidr, usize)>),
    Micro(MicroOp),
    Dyn,
}

// ---------------------------------------------------------------------------
// The compiled router.
// ---------------------------------------------------------------------------

/// A [`ClickConfig`] lowered to a flat execution plan (see the module
/// docs). Mirrors the [`Router`] API so runners can hold either engine.
///
/// [`Router`]: crate::graph::Router
pub struct CompiledRouter {
    stages: Vec<Stage>,
    names: Vec<String>,
    /// Per-stage offset into `edge_to`.
    out_base: Vec<u32>,
    /// Per-stage declared output arity.
    out_count: Vec<u32>,
    /// Flat `(stage, port) -> (stage, port)` wires; `None` = unconnected.
    edge_to: Vec<Option<(u32, u32)>>,
    rx_ifaces: HashMap<u16, u32>,
    tx: Vec<(u16, Packet)>,
    now_ns: u64,
    /// Execution counters, maintained identically to the interpreter's.
    pub stats: RouterStats,
    metrics: Option<CompiledMetrics>,
    scratch: VecDeque<(u32, u32, Packet)>,
    emitted_buf: Vec<(usize, Packet)>,
}

#[inline]
fn edge_of(
    out_base: &[u32],
    out_count: &[u32],
    edge_to: &[Option<(u32, u32)>],
    i: u32,
    port: usize,
) -> Option<(u32, u32)> {
    let i = i as usize;
    if port >= out_count[i] as usize {
        return None;
    }
    edge_to[out_base[i] as usize + port]
}

impl CompiledRouter {
    /// Lowers `cfg` into a compiled plan, validating it exactly like
    /// [`Router::from_config`] (any valid config compiles — elements
    /// without a native lowering run interpreted inside the plan).
    ///
    /// [`Router::from_config`]: crate::graph::Router::from_config
    pub fn compile(cfg: &ClickConfig, registry: &Registry) -> Result<CompiledRouter, RouterError> {
        cfg.validate()?;
        let mut elements: Vec<Box<dyn Element>> = Vec::with_capacity(cfg.elements.len());
        let mut names = Vec::with_capacity(cfg.elements.len());
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut rx_ifaces = HashMap::new();
        for decl in &cfg.elements {
            let el = registry.instantiate(&decl.class, &decl.args)?;
            if let Some(fnf) = el.as_any().downcast_ref::<FromNetfront>() {
                rx_ifaces.insert(fnf.iface(), elements.len() as u32);
            }
            index.insert(decl.name.clone(), elements.len());
            names.push(decl.name.clone());
            elements.push(el);
        }

        let mut edges: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for c in &cfg.connections {
            let from_idx = index[&c.from.element];
            let to_idx = index[&c.to.element];
            if c.from.port >= elements[from_idx].ports().outputs {
                return Err(RouterError::BadPort {
                    port: c.from.clone(),
                    input: false,
                });
            }
            if c.to.port >= elements[to_idx].ports().inputs {
                return Err(RouterError::BadPort {
                    port: c.to.clone(),
                    input: true,
                });
            }
            edges.insert((from_idx, c.from.port), (to_idx, c.to.port));
        }

        // Phase 1: decide each element's lowering (cloning rule data out
        // of the instances; un-lowerable elements stay `Dyn`).
        let mut lower: Vec<Option<Lower>> = elements
            .iter()
            .map(|el| {
                let any = el.as_any();
                Some(if let Some(f) = any.downcast_ref::<FromNetfront>() {
                    Lower::Entry(f.iface())
                } else if let Some(t) = any.downcast_ref::<ToNetfront>() {
                    Lower::Exit(t.iface())
                } else if let Some(c) = any.downcast_ref::<IPClassifier>() {
                    Lower::Classify(ClassifyProgram::build(c.rules()))
                } else if let Some(c) = any.downcast_ref::<Classifier>() {
                    Lower::Bytes(c.patterns().to_vec())
                } else if let Some(r) = any.downcast_ref::<StaticIPLookup>() {
                    Lower::Route(r.routes().to_vec())
                } else if let Some(f) = any.downcast_ref::<IPFilter>() {
                    Lower::Micro(MicroOp::Filter(FilterProgram::build(f.rules())))
                } else if any.is::<CheckIPHeader>() {
                    Lower::Micro(MicroOp::CheckIp)
                } else if any.is::<DecIPTTL>() {
                    Lower::Micro(MicroOp::DecTtl)
                } else if any.is::<Counter>() {
                    Lower::Micro(MicroOp::Count {
                        packets: 0,
                        bytes: 0,
                        first_ns: None,
                        last_ns: 0,
                    })
                } else {
                    Lower::Dyn
                })
            })
            .collect();

        // Phase 2: fuse chains of micro-op elements. A chain extends from
        // a head through port-0 wires as long as the successor is itself
        // micro-op-able, has in-degree exactly 1 (nobody else can inject
        // into the middle of a fused chain), and is not already consumed
        // (which also breaks cycles).
        let n = elements.len();
        let mut in_degree = vec![0usize; n];
        for &(to, _) in edges.values() {
            in_degree[to] += 1;
        }
        let micro = |l: &Option<Lower>| matches!(l, Some(Lower::Micro(_)));
        let mut consumed = vec![false; n];
        let mut chains: Vec<(usize, Vec<usize>)> = Vec::new();
        for head in 0..n {
            if consumed[head] || !micro(&lower[head]) {
                continue;
            }
            consumed[head] = true;
            let mut chain = vec![head];
            let mut cur = head;
            while let Some(&(next, next_port)) = edges.get(&(cur, 0)) {
                if next_port != 0 || consumed[next] || !micro(&lower[next]) || in_degree[next] != 1
                {
                    break;
                }
                consumed[next] = true;
                chain.push(next);
                cur = next;
            }
            chains.push((head, chain));
        }

        // Phase 3: materialize stages. Chain members collapse into their
        // head's `Fused` stage; everything else lowers in place.
        let mut stages: Vec<Stage> = Vec::with_capacity(n);
        for (i, el) in elements.into_iter().enumerate() {
            let stage = match lower[i].take() {
                Some(Lower::Entry(iface)) => Stage::Entry {
                    iface,
                    ring: NetfrontRing::default(),
                },
                Some(Lower::Exit(iface)) => Stage::Exit {
                    iface,
                    ring: NetfrontRing::default(),
                },
                Some(Lower::Classify(p)) => Stage::Classify(p),
                Some(Lower::Bytes(p)) => Stage::ClassifyBytes(p),
                Some(Lower::Route(r)) => Stage::Route(r),
                Some(Lower::Micro(op)) => {
                    // Either the head of a recorded chain, or a member
                    // already absorbed into one.
                    match chains.iter_mut().find(|(h, _)| *h == i) {
                        Some((_, chain)) => {
                            let tail = *chain.last().expect("chains are non-empty");
                            let exit_edge =
                                edges.get(&(tail, 0)).map(|&(t, p)| (t as u32, p as u32));
                            let mut ops = vec![op];
                            for &m in chain.iter().skip(1) {
                                match lower[m].take() {
                                    Some(Lower::Micro(mop)) => ops.push(mop),
                                    _ => unreachable!("chain members are micro-ops"),
                                }
                            }
                            Stage::Fused { ops, exit_edge }
                        }
                        None => Stage::Gone,
                    }
                }
                Some(Lower::Dyn) => Stage::Dyn(el),
                None => Stage::Gone,
            };
            stages.push(stage);
        }

        // Phase 4: flatten the edge map.
        let mut out_base = Vec::with_capacity(n);
        let mut out_count = Vec::with_capacity(n);
        let mut edge_to = Vec::new();
        for (i, decl) in cfg.elements.iter().enumerate() {
            // Output arity from the config declaration: re-instantiate is
            // wasteful, so recover it from the recorded edges plus the
            // stage shape. Declared arity only matters as an upper bound
            // for the port-indexed table; the max wired port suffices.
            let _ = decl;
            let max_port = edges
                .keys()
                .filter(|&&(f, _)| f == i)
                .map(|&(_, p)| p + 1)
                .max()
                .unwrap_or(0);
            out_base.push(edge_to.len() as u32);
            out_count.push(max_port as u32);
            for p in 0..max_port {
                edge_to.push(edges.get(&(i, p)).map(|&(t, tp)| (t as u32, tp as u32)));
            }
        }

        Ok(CompiledRouter {
            stages,
            names,
            out_base,
            out_count,
            edge_to,
            rx_ifaces,
            tx: Vec::new(),
            now_ns: 0,
            stats: RouterStats::default(),
            metrics: None,
            scratch: VecDeque::new(),
            emitted_buf: Vec::new(),
        })
    }

    /// Publishes counters into `registry` under the same
    /// `innet_click_*` names as the interpreter.
    pub fn attach_metrics(&mut self, registry: &innet_obs::Registry) {
        self.metrics = Some(CompiledMetrics::register(registry));
    }

    /// Number of stages (== elements of the source config).
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Human-readable stage listing, e.g.
    /// `["entry(0)", "classify(16 host-table)", "fused[filter]", "exit(0)"]`.
    /// Consumed chain members report as `"gone"`. Used by tests and the
    /// parallel example's compiled-mode marker.
    pub fn describe(&self) -> Vec<String> {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Entry { iface, .. } => format!("entry({iface})"),
                Stage::Exit { iface, .. } => format!("exit({iface})"),
                Stage::Classify(p) => format!("classify({} host-table)", p.table_rules()),
                Stage::ClassifyBytes(p) => format!("classify-bytes({})", p.len()),
                Stage::Route(r) => format!("route({})", r.len()),
                Stage::Fused { ops, .. } => {
                    let names: Vec<&str> = ops.iter().map(|o| o.name()).collect();
                    format!("fused[{}]", names.join(","))
                }
                Stage::Dyn(el) => format!("dyn({})", el.class_name()),
                Stage::Gone => "gone".to_string(),
            })
            .collect()
    }

    /// The element instance names, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Delivers one external packet, mirroring [`Router::deliver`].
    ///
    /// [`Router::deliver`]: crate::graph::Router::deliver
    pub fn deliver(&mut self, iface: u16, pkt: Packet, now_ns: u64) -> Result<(), RouterError> {
        let Some(&idx) = self.rx_ifaces.get(&iface) else {
            return Err(RouterError::NoSuchInterface(iface));
        };
        self.stats.delivered += 1;
        if let Some(m) = &self.metrics {
            m.delivered.inc();
        }
        self.run_from(idx, 0, pkt, now_ns)
    }

    /// Runs the plan from `(idx, port)`.
    ///
    /// The worklist is FIFO like the interpreter's. The one structural
    /// difference is the inline fast path: when the worklist is empty and
    /// a stage emitted exactly one packet, the successor runs immediately
    /// without a queue round-trip. That is FIFO-equivalent by a two-case
    /// argument — with an empty queue, FIFO would pop that same packet
    /// next; with a non-empty queue the fast path is not taken and the
    /// emission is enqueued exactly as the interpreter would. Any
    /// fan-out (0 or 2+ emissions) always goes through the queue.
    fn run_from(
        &mut self,
        idx: u32,
        port: u32,
        pkt: Packet,
        now_ns: u64,
    ) -> Result<(), RouterError> {
        let (_, failed) = self.run_packets(idx, port, std::iter::once(pkt), now_ns, 0);
        if failed > 0 {
            // The only error the plan body can raise.
            Err(RouterError::LoopDetected)
        } else {
            Ok(())
        }
    }

    /// Runs each packet of `pkts` to completion from `(idx, port)`. The
    /// first packet runs at `first_now`; each later one `step_ns` after
    /// its predecessor (the interpreter's virtual-time stepping). Returns
    /// `(ok, failed)` packet counts.
    ///
    /// This is the body behind both [`run_from`](Self::run_from) (a
    /// one-packet batch) and the single-ingress fast path of
    /// [`push_batch`](Self::push_batch), which amortizes the scratch
    /// queue and the stats flush over the whole batch instead of paying
    /// them per packet.
    fn run_packets<I: Iterator<Item = Packet>>(
        &mut self,
        idx: u32,
        port: u32,
        pkts: I,
        first_now: u64,
        step_ns: u64,
    ) -> (u64, u64) {
        let mut ok = 0u64;
        let mut failed = 0u64;
        let mut now = first_now;
        let mut queue = std::mem::take(&mut self.scratch);
        queue.clear();
        // Per-hop accounting accumulates in locals and flushes once on
        // exit: `RouterStats` totals and the metrics counters are only
        // observable between calls, so batching the updates is
        // invisible — and it takes three read-modify-writes plus a
        // metrics branch off every hop.
        let mut counted: u64 = 0;
        let mut sent: u64 = 0;
        for first in pkts {
            self.now_ns = now;
            let ctx = Context::at(now);
            let mut hops = 0usize;
            let mut result = Ok(());
            // The packet being worked on right now, with its (possibly
            // cached) header view. The view survives native stages — none
            // of them move the headers (`DecIPTTL` touches only TTL +
            // checksum, which the view does not read) — and is
            // invalidated by `Dyn` stages and queue crossings. The flag
            // records whether the view includes the transport fields
            // (`PacketView::of`) or is the cheaper L3-only parse
            // (`PacketView::of_l3`); a stage that needs L4 upgrades a
            // light view by re-parsing.
            let mut cur: Option<InFlight> = Some((idx, port, first, None));
            macro_rules! hop {
                ($l:lifetime) => {
                    hops += 1;
                    if hops > MAX_HOPS {
                        result = Err(RouterError::LoopDetected);
                        break $l;
                    }
                    counted += 1;
                };
            }
            macro_rules! drop_unconnected {
                () => {
                    self.stats.dropped_unconnected += 1;
                    if let Some(m) = &self.metrics {
                        m.dropped_unconnected.inc();
                    }
                };
            }
            macro_rules! emit {
                ($i:expr, $p:expr, $pkt:expr, $view:expr) => {
                    match edge_of(&self.out_base, &self.out_count, &self.edge_to, $i, $p) {
                        Some((ni, np)) => {
                            if queue.is_empty() {
                                cur = Some((ni, np, $pkt, $view));
                            } else {
                                queue.push_back((ni, np, $pkt));
                            }
                        }
                        None => {
                            drop_unconnected!();
                        }
                    }
                };
            }

            'run: loop {
                let (i, p, pkt, mut view) = match cur.take() {
                    Some(x) => x,
                    None => match queue.pop_front() {
                        Some((i, p, pkt)) => (i, p, pkt, None),
                        None => break,
                    },
                };
                match &mut self.stages[i as usize] {
                    Stage::Entry { iface, ring } => {
                        hop!('run);
                        ring.transfer(&pkt);
                        let mut pkt = pkt;
                        pkt.meta.ingress = *iface;
                        emit!(i, 0, pkt, view);
                    }
                    Stage::Exit { iface, ring } => {
                        hop!('run);
                        ring.transfer(&pkt);
                        self.tx.push((*iface, pkt));
                        sent += 1;
                    }
                    Stage::Classify(prog) => {
                        hop!('run);
                        let need = prog.needs_l4();
                        let (v, full) = match view.take() {
                            Some((v, full)) if full || !need => (v, full),
                            _ if need => (PacketView::of(&pkt), true),
                            _ => (PacketView::of_l3(&pkt), false),
                        };
                        // No rule matched means a classifier drop.
                        if let Some(out_port) = prog.classify(&v) {
                            emit!(i, out_port as usize, pkt, Some((v, full)));
                        }
                    }
                    Stage::ClassifyBytes(patterns) => {
                        hop!('run);
                        if let Some(out_port) = patterns.iter().position(|pat| pat.matches(&pkt)) {
                            emit!(i, out_port, pkt, view);
                        }
                    }
                    Stage::Route(routes) => {
                        hop!('run);
                        // Routing reads protocol presence and the destination
                        // only, so an L3 view always suffices here.
                        let (v, full) = view
                            .take()
                            .unwrap_or_else(|| (PacketView::of_l3(&pkt), false));
                        // `StaticIPLookup` drops non-IPv4 packets (no header
                        // to read); `proto.is_some()` is exactly the
                        // interpreter's `pkt.ipv4().is_ok()` gate.
                        if v.proto.is_some() {
                            let dst = Ipv4Addr::from(v.dst);
                            // No matching route means a drop.
                            if let Some(&(_, out_port)) =
                                routes.iter().find(|(c, _)| c.contains(dst))
                            {
                                emit!(i, out_port, pkt, Some((v, full)));
                            }
                        }
                    }
                    Stage::Fused { ops, exit_edge } => {
                        let exit_edge = *exit_edge;
                        let mut pkt = pkt;
                        let mut dropped = false;
                        for op in ops.iter_mut() {
                            hop!('run);
                            match op {
                                MicroOp::Filter(f) => {
                                    let need = f.needs_l4();
                                    let pass = match &view {
                                        Some((v, full)) if *full || !need => f.pass(v),
                                        _ => {
                                            let refreshed = if need {
                                                (PacketView::of(&pkt), true)
                                            } else {
                                                (PacketView::of_l3(&pkt), false)
                                            };
                                            let pass = f.pass(&refreshed.0);
                                            view = Some(refreshed);
                                            pass
                                        }
                                    };
                                    if !pass {
                                        dropped = true;
                                        break;
                                    }
                                }
                                MicroOp::CheckIp => {
                                    let ok = pkt
                                        .ipv4()
                                        .map(|ip| ip.version() == 4 && ip.verify_checksum())
                                        .unwrap_or(false);
                                    if !ok {
                                        dropped = true;
                                        break;
                                    }
                                }
                                MicroOp::DecTtl => {
                                    let Ok(mut ip) = pkt.ipv4_mut() else {
                                        dropped = true;
                                        break;
                                    };
                                    let ttl = ip.ttl();
                                    if ttl <= 1 {
                                        dropped = true;
                                        break;
                                    }
                                    ip.set_ttl(ttl - 1);
                                    ip.update_checksum();
                                }
                                MicroOp::Count {
                                    packets,
                                    bytes,
                                    first_ns,
                                    last_ns,
                                } => {
                                    *packets += 1;
                                    *bytes += pkt.len() as u64;
                                    first_ns.get_or_insert(now);
                                    *last_ns = now;
                                }
                            }
                        }
                        if !dropped {
                            match exit_edge {
                                Some((ni, np)) => {
                                    if queue.is_empty() {
                                        cur = Some((ni, np, pkt, view));
                                    } else {
                                        queue.push_back((ni, np, pkt));
                                    }
                                }
                                None => {
                                    drop_unconnected!();
                                }
                            }
                        }
                    }
                    Stage::Dyn(el) => {
                        hop!('run);
                        let before_tx = self.tx.len();
                        let mut emitted = std::mem::take(&mut self.emitted_buf);
                        emitted.clear();
                        {
                            let mut sink = StageSink {
                                emitted: &mut emitted,
                                tx: &mut self.tx,
                            };
                            el.push(p as usize, pkt, &ctx, &mut sink);
                        }
                        sent += (self.tx.len() - before_tx) as u64;
                        if emitted.len() == 1 && queue.is_empty() {
                            let (out_port, out_pkt) = emitted.pop().expect("len checked");
                            emit!(i, out_port, out_pkt, None);
                        } else {
                            for (out_port, out_pkt) in emitted.drain(..) {
                                match edge_of(
                                    &self.out_base,
                                    &self.out_count,
                                    &self.edge_to,
                                    i,
                                    out_port,
                                ) {
                                    Some((ni, np)) => queue.push_back((ni, np, out_pkt)),
                                    None => {
                                        drop_unconnected!();
                                    }
                                }
                            }
                        }
                        self.emitted_buf = emitted;
                    }
                    Stage::Gone => {
                        debug_assert!(false, "packet routed into a fused chain member");
                    }
                }
            }

            match result {
                Ok(()) => ok += 1,
                Err(_) => {
                    // A detected loop abandons that packet's remaining
                    // worklist, exactly as the interpreter's per-call
                    // queue teardown does; the next packet starts clean.
                    queue.clear();
                    failed += 1;
                }
            }
            now = now.wrapping_add(step_ns);
        }
        self.stats.hops += counted;
        self.stats.transmitted += sent;
        if let Some(m) = &self.metrics {
            m.hops.add(counted);
            m.transmitted.add(sent);
        }
        queue.clear();
        self.scratch = queue;
        (ok, failed)
    }

    /// Pushes a whole batch through the plan, mirroring
    /// [`Router::push_batch`] exactly (same virtual-time stepping, same
    /// single-ingress fast path and accounting).
    ///
    /// [`Router::push_batch`]: crate::graph::Router::push_batch
    pub fn push_batch(&mut self, batch: Vec<Packet>, now_ns: u64, step_ns: u64) -> BatchResult {
        let mut result = BatchResult::default();
        let mut now = now_ns;

        let shared_iface = match batch.as_slice() {
            [] => return result,
            [first, rest @ ..] => {
                let iface = first.meta.ingress;
                rest.iter()
                    .all(|p| p.meta.ingress == iface)
                    .then_some(iface)
            }
        };
        if let Some(iface) = shared_iface {
            if let Some(&entry) = self.rx_ifaces.get(&iface) {
                let successor = edge_of(&self.out_base, &self.out_count, &self.edge_to, entry, 0);
                let Stage::Entry { ring, .. } = &mut self.stages[entry as usize] else {
                    unreachable!("rx_ifaces only indexes Entry stages");
                };
                ring.transfer_batch(&batch);
                let n = batch.len() as u64;
                self.stats.delivered += n;
                self.stats.hops += n;
                if let Some(m) = &self.metrics {
                    m.delivered.add(n);
                    m.hops.add(n);
                }
                match successor {
                    Some((ni, np)) => {
                        // Packets here already carry `meta.ingress ==
                        // iface` (that equality is what made the batch
                        // single-ingress), so the Entry stamp is a no-op
                        // and the whole batch runs in one pass.
                        let (ok, failed) =
                            self.run_packets(ni, np, batch.into_iter(), now + step_ns, step_ns);
                        result.delivered += ok;
                        result.failed += failed;
                    }
                    None => {
                        self.stats.dropped_unconnected += n;
                        if let Some(m) = &self.metrics {
                            m.dropped_unconnected.add(n);
                        }
                        self.now_ns = now + step_ns * n;
                        result.delivered += n;
                    }
                }
                return result;
            }
        }

        for pkt in batch {
            now += step_ns;
            let iface = pkt.meta.ingress;
            match self.deliver(iface, pkt, now) {
                Ok(()) => result.delivered += 1,
                Err(_) => result.failed += 1,
            }
        }
        result
    }

    /// Advances virtual time, mirroring [`Router::tick`]: only `Dyn`
    /// stages can hold timed elements (none of the natively-lowered
    /// classes tick).
    ///
    /// [`Router::tick`]: crate::graph::Router::tick
    pub fn tick(&mut self, now_ns: u64) -> Vec<(u16, Packet)> {
        self.now_ns = now_ns;
        let ctx = Context::at(now_ns);
        let mut released: Vec<(u32, usize, Packet)> = Vec::new();
        let mut new_tx = 0u64;
        let mut emitted: Vec<(usize, Packet)> = Vec::new();
        for (i, stage) in self.stages.iter_mut().enumerate() {
            if let Stage::Dyn(el) = stage {
                let before_tx = self.tx.len();
                let mut sink = StageSink {
                    emitted: &mut emitted,
                    tx: &mut self.tx,
                };
                el.tick(&ctx, &mut sink);
                new_tx += (self.tx.len() - before_tx) as u64;
                for (out_port, pkt) in emitted.drain(..) {
                    released.push((i as u32, out_port, pkt));
                }
            }
        }
        self.stats.transmitted += new_tx;
        if let Some(m) = &self.metrics {
            m.transmitted.add(new_tx);
        }
        for (i, out_port, pkt) in released {
            match edge_of(&self.out_base, &self.out_count, &self.edge_to, i, out_port) {
                Some((ni, np)) => {
                    let _ = self.run_from(ni, np, pkt, now_ns);
                }
                None => {
                    self.stats.dropped_unconnected += 1;
                    if let Some(m) = &self.metrics {
                        m.dropped_unconnected.inc();
                    }
                }
            }
        }
        self.take_tx()
    }

    /// The earliest wake-up any (dynamic) stage wants, if any.
    pub fn next_tick_ns(&self) -> Option<u64> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Dyn(el) => el.next_tick_ns(),
                _ => None,
            })
            .min()
    }

    /// Drains and returns packets transmitted since the last call.
    pub fn take_tx(&mut self) -> Vec<(u16, Packet)> {
        std::mem::take(&mut self.tx)
    }

    /// Drains transmitted packets into `out` without allocating.
    pub fn take_tx_into(&mut self, out: &mut Vec<(u16, Packet)>) {
        out.append(&mut self.tx);
    }
}

impl std::fmt::Debug for CompiledRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledRouter")
            .field("stages", &self.describe())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Router;
    use innet_packet::PacketBuilder;

    fn both(cfg: &str) -> (Router, CompiledRouter) {
        let cfg = ClickConfig::parse(cfg).unwrap();
        let reg = Registry::standard();
        (
            Router::from_config(&cfg, &reg).unwrap(),
            CompiledRouter::compile(&cfg, &reg).unwrap(),
        )
    }

    fn mixed_trace(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                let dst = Ipv4Addr::new(10, 0, (i % 7) as u8, (i % 23) as u8 + 1);
                match i % 4 {
                    0 => PacketBuilder::udp().dst(dst, 53).ttl(64).build(),
                    1 => PacketBuilder::tcp().dst(dst, 80).ttl(2).build(),
                    2 => PacketBuilder::udp().dst(dst, 9999).ttl(1).build(),
                    _ => PacketBuilder::tcp().dst(dst, 443).ttl(64).build(),
                }
            })
            .collect()
    }

    fn assert_identical(cfg: &str, pkts: Vec<Packet>) {
        let (mut interp, mut compiled) = both(cfg);
        let ri = interp.push_batch(pkts.clone(), 0, 1_000);
        let rc = compiled.push_batch(pkts, 0, 1_000);
        assert_eq!(ri, rc, "batch results differ");
        assert_eq!(interp.take_tx(), compiled.take_tx(), "tx differs");
        assert_eq!(interp.stats, compiled.stats, "stats differ");
    }

    #[test]
    fn straight_pipeline_identical() {
        assert_identical(
            "FromNetfront() -> Counter() -> ToNetfront();",
            mixed_trace(40),
        );
    }

    #[test]
    fn filter_chain_fuses_and_matches() {
        let cfg = "FromNetfront() -> CheckIPHeader() -> DecIPTTL() \
                   -> IPFilter(allow udp, deny tcp dst port 80, allow tcp) -> ToNetfront();";
        let (_, compiled) = both(cfg);
        let desc = compiled.describe().join(" ");
        assert!(
            desc.contains("fused[checkip,decttl,filter]"),
            "chain did not fuse: {desc}"
        );
        assert!(desc.contains("gone"), "members not consumed: {desc}");
        assert_identical(cfg, mixed_trace(64));
    }

    #[test]
    fn classifier_branches_identical() {
        let cfg = r#"
            src :: FromNetfront();
            c :: IPClassifier(dst host 10.0.1.5, udp dst port 53, tcp, -);
            a :: ToNetfront(0); b :: ToNetfront(1); d :: ToNetfront(2); e :: ToNetfront(3);
            src -> c;
            c[0] -> a; c[1] -> b; c[2] -> d; c[3] -> e;
        "#;
        assert_identical(cfg, mixed_trace(64));
    }

    #[test]
    fn host_table_first_match_wins() {
        // An earlier broad rule must beat a later host rule for packets
        // matching both, and vice versa.
        let prog = ClassifyProgram::build(&[
            "udp dst port 53".parse().unwrap(),
            "dst host 10.0.0.1".parse().unwrap(),
            "dst host 10.0.0.2".parse().unwrap(),
        ]);
        let dns_to_1 = PacketBuilder::udp()
            .dst(Ipv4Addr::new(10, 0, 0, 1), 53)
            .build();
        let tcp_to_1 = PacketBuilder::tcp()
            .dst(Ipv4Addr::new(10, 0, 0, 1), 80)
            .build();
        let tcp_to_9 = PacketBuilder::tcp()
            .dst(Ipv4Addr::new(10, 0, 0, 9), 80)
            .build();
        assert_eq!(prog.classify(&PacketView::of(&dns_to_1)), Some(0));
        assert_eq!(prog.classify(&PacketView::of(&tcp_to_1)), Some(1));
        assert_eq!(prog.classify(&PacketView::of(&tcp_to_9)), None);
    }

    #[test]
    fn specialization_prunes_branches() {
        // `udp dst port 53` in the TCP branch is Known(false); in the UDP
        // branch the proto atom folds away.
        let rules = vec!["udp dst port 53".parse().unwrap()];
        let prog = ClassifyProgram::build(&rules);
        let tcp = PacketBuilder::tcp()
            .dst(Ipv4Addr::new(1, 1, 1, 1), 53)
            .build();
        let udp = PacketBuilder::udp()
            .dst(Ipv4Addr::new(1, 1, 1, 1), 53)
            .build();
        assert_eq!(prog.classify(&PacketView::of(&tcp)), None);
        assert_eq!(prog.classify(&PacketView::of(&udp)), Some(0));
        // Differential over the mixed corpus.
        for pkt in mixed_trace(32) {
            let v = PacketView::of(&pkt);
            let want = rules[0].matches_view(&v).then_some(0);
            assert_eq!(prog.classify(&v), want);
        }
    }

    #[test]
    fn route_table_identical() {
        let cfg = r#"
            src :: FromNetfront();
            r :: StaticIPLookup(10.0.0.0/8 0, 10.1.0.0/16 1, 0.0.0.0/0 2);
            a :: ToNetfront(0); b :: ToNetfront(1); c :: ToNetfront(2);
            src -> r; r[0] -> a; r[1] -> b; r[2] -> c;
        "#;
        assert_identical(cfg, mixed_trace(48));
    }

    #[test]
    fn byte_classifier_identical() {
        let cfg = r#"
            src :: FromNetfront();
            c :: Classifier(12/0800 23/11, 12/0800, -);
            a :: ToNetfront(0); b :: ToNetfront(1); d :: ToNetfront(2);
            src -> c; c[0] -> a; c[1] -> b; c[2] -> d;
        "#;
        assert_identical(cfg, mixed_trace(48));
    }

    #[test]
    fn dyn_fallback_identical() {
        // IPNAT has no native lowering: it must run interpreted inside
        // the plan with identical results.
        let cfg = "FromNetfront() -> IPNAT(5.5.5.5) -> ToNetfront();";
        let pkts: Vec<Packet> = (0..32)
            .map(|i| {
                PacketBuilder::udp()
                    .src(Ipv4Addr::new(10, 0, 0, (i % 5) as u8 + 1), 5000 + i as u16)
                    .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
                    .build()
            })
            .collect();
        assert_identical(cfg, pkts);
    }

    #[test]
    fn tee_fanout_preserves_order() {
        let cfg = r#"
            src :: FromNetfront();
            t :: Tee(2);
            c1 :: Counter(); c2 :: Counter();
            a :: ToNetfront(0); b :: ToNetfront(1);
            src -> t; t[0] -> c1 -> a; t[1] -> c2 -> b;
        "#;
        assert_identical(cfg, mixed_trace(24));
    }

    #[test]
    fn unconnected_and_unknown_iface_identical() {
        // Unwired netfront: batch drops with identical accounting.
        assert_identical("FromNetfront();", mixed_trace(8));
        // Unknown ingress: per-packet failures counted identically.
        let (mut interp, mut compiled) = both("FromNetfront(0) -> ToNetfront();");
        let mut pkts = mixed_trace(6);
        for (i, p) in pkts.iter_mut().enumerate() {
            p.meta.ingress = (i % 3) as u16; // ifaces 1 and 2 do not exist
        }
        let ri = interp.push_batch(pkts.clone(), 0, 1_000);
        let rc = compiled.push_batch(pkts, 0, 1_000);
        assert_eq!(ri, rc);
        assert_eq!(interp.take_tx(), compiled.take_tx());
        assert_eq!(interp.stats, compiled.stats);
    }

    #[test]
    fn timed_elements_tick_identically() {
        let cfg = "FromNetfront() -> Queue(16) -> TimedUnqueue(1, 8) -> ToNetfront();";
        let (mut interp, mut compiled) = both(cfg);
        let pkts = mixed_trace(12);
        interp.push_batch(pkts.clone(), 0, 1_000);
        compiled.push_batch(pkts, 0, 1_000);
        assert_eq!(interp.next_tick_ns(), compiled.next_tick_ns());
        let t = interp.next_tick_ns().unwrap_or(2_000_000_000);
        assert_eq!(interp.tick(t), compiled.tick(t));
        assert_eq!(interp.stats, compiled.stats);
    }

    #[test]
    fn loop_detected_identically() {
        let cfg = "c :: Counter(); d :: FromNetfront(); d -> c; c -> c;";
        let (mut interp, mut compiled) = both(cfg);
        let pkt = PacketBuilder::udp().build();
        assert_eq!(
            interp.deliver(0, pkt.clone(), 0),
            compiled.deliver(0, pkt, 0)
        );
        assert_eq!(interp.stats, compiled.stats);
    }
}
