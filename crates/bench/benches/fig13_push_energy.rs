//! Figure 13: mobile energy versus batching interval, plus the §8
//! HTTP-vs-HTTPS energy comparison.

use innet::experiments::fig13_energy::{http_vs_https_mw, push_energy};
use innet::sim::des::SECOND;
use innet_bench::Report;

fn main() {
    let pts = push_energy(&[30, 60, 120, 240], 30 * SECOND, 3600 * SECOND);
    let mut r = Report::new(
        "fig13_push_energy",
        "Figure 13: average device power vs batching interval (1 notification / 30 s)",
    );
    r.line(&format!(
        "{:>14} {:>16} {:>12}",
        "interval (s)", "avg power (mW)", "delivered"
    ));
    for p in &pts {
        r.line(&format!(
            "{:>14} {:>16.0} {:>12}",
            p.interval_s, p.avg_power_mw, p.delivered
        ));
    }
    r.blank();
    r.line("paper: ~240 mW at 30 s, ~140 mW at 240 s");

    let (http, https) = http_vs_https_mw();
    r.blank();
    r.line(&format!(
        "§8 download power: HTTP {http:.0} mW vs HTTPS {https:.0} mW \
         (paper: 570 vs 650, +15% for TLS CPU)"
    ));
    r.finish();
}
