//! Ablations: what each In-Net mechanism buys (consolidation,
//! on-the-fly instantiation, statically-gated sandboxing).

use innet::experiments::ablations::{consolidation_ablation, onthefly_ablation, sandbox_ablation};
use innet::prelude::*;
use innet::symnet::RequesterClass;
use innet_bench::{quick_mode, Report};
use std::time::Instant;

fn main() {
    let rounds = if quick_mode() { 10 } else { 100 };
    let mut r = Report::new("ablations", "Ablations of the In-Net design choices");

    r.line("== consolidation (one VM for all tenants) vs one VM per tenant ==");
    for tenants in [16usize, 64, 128] {
        let a = consolidation_ablation(tenants, rounds);
        r.line(&format!(
            "{:>4} tenants: consolidated {:>8.0} kpps / {:>6} MB, \
             per-VM {:>8.0} kpps / {:>6} MB  ({}x memory saved)",
            a.tenants,
            a.consolidated_pps / 1e3,
            a.consolidated_mem_mb,
            a.per_vm_pps / 1e3,
            a.per_vm_mem_mb,
            a.per_vm_mem_mb / a.consolidated_mem_mb
        ));
    }

    r.blank();
    r.line("== on-the-fly boot vs pre-booting every registered tenant ==");
    for (reg, act) in [(1000usize, 50usize), (1000, 200), (10_000, 500)] {
        let a = onthefly_ablation(reg, act);
        r.line(&format!(
            "{:>6} registered / {:>4} active: pre-boot {:>7} MB, \
             on-the-fly {:>6} MB, first-packet penalty {:>5.0} ms",
            a.registered, a.active, a.preboot_mem_mb, a.onthefly_mem_mb, a.first_packet_penalty_ms
        ));
    }

    r.blank();
    r.line("== sandbox everything (status quo) vs static gating ==");
    let a = sandbox_ablation(rounds);
    r.line(&format!(
        "Table-1 catalog: {} deployable by a third party, only {} need a sandbox",
        a.deployable, a.need_sandbox
    ));
    r.line(&format!(
        "64 B sandbox throughput ratio: {:.2} (cost avoided for the other {})",
        a.sandbox_throughput_ratio,
        a.deployable - a.need_sandbox
    ));
    r.blank();
    r.line("== §4.3 controller scaling: serial vs 4-way sharded verification ==");
    let (serial_ms, parallel_ms) = deploy_timing();
    r.line(&format!(
        "16 deployments: serial {serial_ms:.0} ms, deploy_batch(4 shards) {parallel_ms:.0} ms \
         ({:.1}x)",
        serial_ms / parallel_ms
    ));
    r.finish();
}

/// Times 16 independent deployments serially vs through the sharded
/// batch path.
fn deploy_timing() -> (f64, f64) {
    let fresh = || {
        let mut c = Controller::new(Topology::figure3());
        for i in 0..16 {
            c.register_client(
                format!("client{i}"),
                RequesterClass::Client,
                vec!["172.16.15.133".parse().unwrap()],
            );
        }
        c
    };
    let request = |i: usize| {
        let text = format!(
            "module m{i}:\nFromNetfront() -> IPFilter(allow udp dst port 1500) \
             -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> dst :: ToNetfront();\n\
             reach from internet udp -> m{i}:dst:0 -> client dst port 1500"
        );
        ClientRequest::parse(&text).expect("parses")
    };
    let batch: Vec<(String, ClientRequest)> = (0..16)
        .map(|i| (format!("client{i}"), request(i)))
        .collect();

    let mut serial = fresh();
    let t0 = Instant::now();
    for (client, req) in batch.clone() {
        serial.deploy(&client, req).expect("deployable");
    }
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut parallel = fresh();
    let t1 = Instant::now();
    let results = parallel.deploy_batch(batch, 4);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(results.iter().all(|r| r.is_ok()));
    (serial_ms, parallel_ms)
}
