//! Differential suite for the compiled flat plan: with
//! `RunnerConfig::compiled(true)`, every corpus must produce byte- and
//! order-identical output to the interpreted `Router` — the interpreter
//! stays the semantic oracle, the compiled plan is only allowed to be
//! faster.
//!
//! Covered: the consolidated multi-tenant firewall, every Figure 12
//! middlebox kind, and the bidirectional stateful corpus (NAT gateway +
//! stateful firewall), each single-threaded and flow-sharded at
//! 1/2/4/8 workers. A property test then drives randomly wired
//! configurations from the standard element registry through both
//! engines directly.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use innet::click::elements::IpNat;
use innet::click::CompiledRouter;
use innet::platform::{
    consolidated_config, middlebox_config, nat_gateway_config, stateful_firewall_config,
};
use innet::prelude::*;
use proptest::prelude::*;

/// A mixed trace: UDP and TCP to a spread of destinations (some matching
/// no tenant), ICMP-less but with a few truncated and non-IP frames so
/// classifier drop paths run too.
fn mixed_trace(n: usize, clients: &[Ipv4Addr]) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let f = i % 64;
            if i % 13 == 0 {
                // Raw short frame: non-IPv4, exercises the NonIp branch.
                Packet::from_bytes(vec![0xde; 20 + (i % 9)])
            } else if i % 5 == 0 {
                PacketBuilder::tcp()
                    .src(Ipv4Addr::new(8, 8, 0, (f % 250) as u8 + 1), 4000 + f as u16)
                    .dst(clients[f % clients.len()], 80)
                    .pad_to(64 + (i % 7) * 16)
                    .build()
            } else {
                let dst = if i % 11 == 0 {
                    // A stranger: matches no tenant rule.
                    Ipv4Addr::new(9, 9, 9, 9)
                } else {
                    clients[f % clients.len()]
                };
                PacketBuilder::udp()
                    .src(Ipv4Addr::new(8, 8, 0, (f % 250) as u8 + 1), 4000 + f as u16)
                    .dst(dst, 80)
                    .pad_to(64 + (i % 7) * 16)
                    .build()
            }
        })
        .collect()
}

/// Groups transmitted packets per output flow key (rewritten tuples are
/// deterministic per connection), preserving relative order. Non-flow
/// packets group under a byte-hash key.
fn by_flow(out: &[(u16, Packet)]) -> BTreeMap<String, Vec<(u16, Vec<u8>)>> {
    let mut groups: BTreeMap<String, Vec<(u16, Vec<u8>)>> = BTreeMap::new();
    for (egress, pkt) in out {
        let key = match FlowKey::of(pkt) {
            Ok(k) => k.to_string(),
            Err(_) => format!("raw-{}", pkt.bytes().len()),
        };
        groups
            .entry(key)
            .or_default()
            .push((*egress, pkt.bytes().to_vec()));
    }
    groups
}

/// Single-threaded contract: the compiled native runner's output must be
/// identical to the interpreted native runner's — same egress, same
/// bytes, same total order, same packet accounting.
fn assert_native_identical(label: &str, cfg: &ClickConfig, trace: &[Packet]) {
    let mut interp = RunnerConfig::new().native(cfg).unwrap();
    let mut compiled = RunnerConfig::new().compiled(true).native(cfg).unwrap();
    assert!(compiled.is_compiled(), "{label}: compiled engine selected");
    let (istats, iout) = interp.run_collect(trace, 1);
    let (cstats, cout) = compiled.run_collect(trace, 1);
    assert_eq!(istats.packets, cstats.packets, "{label}: packets");
    assert_eq!(
        istats.transmitted, cstats.transmitted,
        "{label}: transmitted"
    );
    assert_eq!(iout.len(), cout.len(), "{label}: output count");
    for (n, ((ie, ip), (ce, cp))) in iout.iter().zip(cout.iter()).enumerate() {
        assert_eq!(ie, ce, "{label}: egress of output packet {n}");
        assert_eq!(
            ip.bytes(),
            cp.bytes(),
            "{label}: bytes of output packet {n}"
        );
    }
}

/// Sharded contract: at each worker count, the compiled parallel runner
/// must produce per-flow byte- and order-identical output to the
/// interpreted parallel runner.
fn assert_parallel_identical(label: &str, cfg: &ClickConfig, trace: &[Packet], workers: &[usize]) {
    for &w in workers {
        let mut interp = RunnerConfig::new()
            .workers(w)
            .batch(32)
            .parallel(cfg)
            .unwrap();
        let mut compiled = RunnerConfig::new()
            .workers(w)
            .batch(32)
            .compiled(true)
            .parallel(cfg)
            .unwrap();
        assert!(compiled.is_compiled(), "{label}: compiled engines selected");
        let (istats, iout) = interp.run_collect(trace, 1);
        let (cstats, cout) = compiled.run_collect(trace, 1);
        assert_eq!(istats.packets, cstats.packets, "{label} w{w}: packets");
        assert_eq!(
            istats.transmitted, cstats.transmitted,
            "{label} w{w}: transmitted"
        );
        assert_eq!(
            by_flow(&iout),
            by_flow(&cout),
            "{label} w{w}: per-flow output"
        );
    }
}

#[test]
fn consolidated_corpus_identical() {
    let clients: Vec<Ipv4Addr> = (0..16).map(|i| Ipv4Addr::new(203, 0, 113, 1 + i)).collect();
    let cfg = consolidated_config(&clients);
    let trace = mixed_trace(4096, &clients);
    assert_native_identical("consolidated", &cfg, &trace);
    assert_parallel_identical("consolidated", &cfg, &trace, &[1, 2, 4, 8]);
}

#[test]
fn fig12_middlebox_kinds_identical() {
    let clients = [Ipv4Addr::new(93, 184, 216, 34)];
    let trace = mixed_trace(2048, &clients);
    for kind in ["nat", "iprouter", "firewall", "flowmeter"] {
        let cfg = middlebox_config(kind).expect("known kind");
        assert_native_identical(kind, &cfg, &trace);
        assert_parallel_identical(kind, &cfg, &trace, &[1, 2, 4]);
    }
}

/// The public address the NAT gateway hides the inside network behind.
const PUBLIC: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

/// An interleaved bidirectional trace: even rounds open connections
/// outbound (ingress 0), odd rounds send replies on the outside
/// interface (ingress 1). Connections are filtered to collision-free NAT
/// preferred ports so every reply finds its mapping in both engines.
fn bidirectional_trace(nat: bool) -> Vec<Packet> {
    let mut conns: Vec<(FlowKey, u16)> = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    let mut c = 0usize;
    while conns.len() < 48 {
        let key = FlowKey {
            src: Ipv4Addr::new(10, 0, 0, (c % 250) as u8 + 1),
            dst: Ipv4Addr::new(198, 51, 100, (c % 250) as u8 + 1),
            proto: IpProto::Udp,
            src_port: 5000 + c as u16,
            dst_port: 53,
        };
        c += 1;
        let mapped = IpNat::preferred_port(&key);
        if used.insert(mapped) {
            conns.push((key, mapped));
        }
    }
    let mut pkts = Vec::new();
    for r in 0..16 {
        for (key, mapped) in &conns {
            if r % 2 == 0 {
                pkts.push(
                    PacketBuilder::udp()
                        .src(key.src, key.src_port)
                        .dst(key.dst, key.dst_port)
                        .pad_to(64 + (r % 5) * 16)
                        .build(),
                );
            } else {
                let (dst, dport) = if nat {
                    (PUBLIC, *mapped)
                } else {
                    (key.src, key.src_port)
                };
                let mut reply = PacketBuilder::udp()
                    .src(key.dst, key.dst_port)
                    .dst(dst, dport)
                    .pad_to(64 + (r % 5) * 16)
                    .build();
                reply.meta.ingress = 1;
                pkts.push(reply);
            }
        }
    }
    pkts
}

#[test]
fn stateful_bidirectional_corpora_identical() {
    for (label, cfg, nat) in [
        ("natgw-bidir", nat_gateway_config(PUBLIC), true),
        ("statefulfw-bidir", stateful_firewall_config(), false),
    ] {
        let trace = bidirectional_trace(nat);
        assert_native_identical(label, &cfg, &trace);
        assert_parallel_identical(label, &cfg, &trace, &[1, 2, 4, 8]);
    }
}

// ---------------------------------------------------------------------------
// Property test: random verified configs through both engines directly.
// ---------------------------------------------------------------------------

/// Element templates the generator wires together. Index 0 must be an
/// entry so every generated config can receive traffic.
const TEMPLATES: &[(&str, &[&str])] = &[
    ("FromNetfront", &[]),
    ("ToNetfront", &[]),
    ("IPClassifier", &["dst host 203.0.113.7", "udp", "-"]),
    ("IPFilter", &["allow udp dst port 80", "deny tcp"]),
    ("Classifier", &["12/0800", "-"]),
    ("CheckIPHeader", &[]),
    ("DecIPTTL", &[]),
    ("Counter", &[]),
    ("StaticIPLookup", &["203.0.113.0/24 0", "0.0.0.0/0 1"]),
    ("IPNAT", &["203.0.113.1"]),
    ("Tee", &["2"]),
];

/// Builds a config from generator choices: `classes[i]` picks the
/// template for element `i`; `edges` are raw `(from, port, to)` triples
/// reduced modulo the sizes (duplicate `(from, port)` pairs are skipped
/// to respect the single-wire fanout rule).
fn build_random_config(classes: &[usize], edges: &[(usize, usize, usize)]) -> ClickConfig {
    let mut cfg = ClickConfig::new();
    cfg.add_element("e0", "FromNetfront", &[]);
    for (i, &c) in classes.iter().enumerate() {
        let (class, args) = TEMPLATES[c % TEMPLATES.len()];
        cfg.add_element(format!("e{}", i + 1), class, args);
    }
    let n = classes.len() + 1;
    let mut wired = std::collections::BTreeSet::new();
    for &(f, p, t) in edges {
        let (f, p, t) = (f % n, p % 3, t % n);
        // Skip self-loops: they are legal (and covered by a dedicated
        // unit test) but burn the full hop budget per packet, which
        // makes the property test needlessly slow.
        if f == t || !wired.insert((f, p)) {
            continue;
        }
        cfg.connect(format!("e{f}"), p, format!("e{t}"), 0);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any verified random wiring must push identically through the
    /// interpreter and the compiled plan: same outputs in the same
    /// order, same stats, same error behaviour.
    #[test]
    fn random_configs_push_identically(
        classes in proptest::collection::vec(0usize..11, 1..6),
        edges in proptest::collection::vec((0usize..8, 0usize..3, 0usize..8), 0..10),
        seed in 0usize..4,
    ) {
        let cfg = build_random_config(&classes, &edges);
        if cfg.validate().is_err() {
            // Not a verified config; out of scope.
            return Ok(());
        }
        let registry = Registry::standard();
        // Construction itself must agree: `validate()` does not check
        // port arity, so some generated wirings are rejected at build
        // time — by both engines, or by neither.
        let (mut interp, mut compiled) =
            match (Router::from_config(&cfg, &registry), CompiledRouter::compile(&cfg, &registry)) {
                (Ok(i), Ok(c)) => (i, c),
                (Err(_), Err(_)) => return Ok(()),
                (i, c) => {
                    return Err(format!(
                        "engines disagree on validity: interp {:?} vs compiled {:?}",
                        i.map(|_| ()),
                        c.map(|_| ())
                    ));
                }
            };
        let clients = [Ipv4Addr::new(203, 0, 113, 7), Ipv4Addr::new(10, 0, 0, 1)];
        let trace = mixed_trace(24 + seed, &clients);
        let ir = interp.push_batch(trace.clone(), 1_000, 100);
        let cr = compiled.push_batch(trace, 1_000, 100);
        prop_assert_eq!(ir, cr);
        let itx = interp.take_tx();
        let ctx = compiled.take_tx();
        prop_assert_eq!(itx.len(), ctx.len());
        for ((ie, ip), (ce, cp)) in itx.iter().zip(ctx.iter()) {
            prop_assert_eq!(ie, ce);
            prop_assert_eq!(ip.bytes(), cp.bytes());
        }
        prop_assert_eq!(interp.stats.clone(), compiled.stats.clone());
    }
}
