//! Controller-backed placement for the fleet scenario engine.
//!
//! The scenario engine lives in `innet-platform` and calls out through
//! the [`ScenarioHooks`] trait; this module closes the loop with the
//! real control plane: failover re-homes rank candidates with
//! [`Controller::ranked_platforms`] (the same latency / residual
//! capacity / link-headroom score every deploy uses), and
//! `ExecuteConsolidation` events execute [`plan_fleet`]'s moves — the
//! plan that, before this, was only ever computed.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use innet_platform::{Fleet, ScenarioHooks};
use innet_topology::NodeId;

use crate::consolidate::plan_fleet;
use crate::controller::Controller;
use crate::netmodel::InstalledModule;

/// [`ScenarioHooks`] backed by a [`Controller`]'s placement state. The
/// controller's installed modules must mirror the fleet's tenants
/// (deploy through the controller, register the resulting addresses on
/// the fleet — or [`Controller::adopt_modules`] an equivalent set).
pub struct ControllerHooks<'a> {
    ctl: &'a Controller,
}

impl<'a> ControllerHooks<'a> {
    /// Hooks reading placement state from `ctl`.
    pub fn new(ctl: &'a Controller) -> ControllerHooks<'a> {
        ControllerHooks { ctl }
    }
}

impl ScenarioHooks for ControllerHooks<'_> {
    fn rank_rehome(&mut self, _fleet: &Fleet, _addr: Ipv4Addr, dead: NodeId) -> Vec<NodeId> {
        self.ctl
            .ranked_platforms()
            .into_iter()
            .filter(|&p| p != dead)
            .collect()
    }

    fn plan_consolidation(&mut self, fleet: &Fleet) -> Vec<(Ipv4Addr, NodeId, NodeId)> {
        // Reconcile the controller's installed-module model with the
        // fleet's ground truth before planning: follow re-homes, and
        // drop tenants the fleet no longer serves or whose platform is
        // dead (`plan_fleet` knows nothing about liveness, and a dead
        // consolidation home would invalidate every move).
        let live: Vec<InstalledModule> = self
            .ctl
            .modules()
            .iter()
            .filter_map(|m| {
                let loc = fleet.location(m.addr)?;
                fleet.is_alive(loc).then(|| {
                    let mut m = m.clone();
                    m.platform = loc;
                    m
                })
            })
            .collect();
        let plan = plan_fleet(&live, self.ctl.topology());
        let addr_of: HashMap<&str, Ipv4Addr> =
            live.iter().map(|m| (m.name.as_str(), m.addr)).collect();
        plan.moves
            .into_iter()
            .filter_map(|(name, from, to)| {
                let addr = addr_of.get(name.as_str()).copied()?;
                // Only emit moves the fleet can actually execute: the
                // tenant must be homed where the plan thinks it is.
                (fleet.location(addr) == Some(from)).then_some((addr, from, to))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_click::ClickConfig;
    use innet_platform::ClientEntry;
    use innet_topology::{generate_fleet, FleetParams};

    fn counter_config() -> ClickConfig {
        ClickConfig::parse("FromNetfront() -> Counter() -> ToNetfront();").unwrap()
    }

    #[test]
    fn consolidation_moves_resolve_to_tenant_addresses() {
        let topo = generate_fleet(&FleetParams {
            pops: 2,
            platforms_per_pop: 1,
            clients_per_pop: 1,
            seed: 3,
        });
        let mut fleet = Fleet::new(&topo);
        let ps = fleet.platforms();
        let mut ctl = Controller::new(topo.clone());
        let mut modules = Vec::new();
        for (i, &p) in ps.iter().enumerate() {
            for j in 0..(2 - i) {
                let addr = Ipv4Addr::new(198, 18, i as u8, j as u8 + 1);
                modules.push(InstalledModule {
                    id: (i * 4 + j) as u64,
                    name: format!("t{i}-{j}"),
                    platform: p,
                    addr,
                    config: counter_config(),
                    sandboxed: false,
                    owner: format!("owner{i}"),
                });
                fleet
                    .register(
                        p,
                        ClientEntry {
                            addr,
                            config: counter_config(),
                            stateful: false,
                        },
                    )
                    .unwrap();
            }
        }
        ctl.adopt_modules(modules);
        let mut hooks = ControllerHooks::new(&ctl);
        let moves = hooks.plan_consolidation(&fleet);
        // Two stateless tenants on ps[0], one on ps[1]: the plan homes
        // everyone on ps[0] and moves the one tenant from ps[1].
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].1, ps[1]);
        assert_eq!(moves[0].2, ps[0]);
        assert_eq!(moves[0].0, Ipv4Addr::new(198, 18, 1, 1));

        let ranked = hooks.rank_rehome(&fleet, Ipv4Addr::new(198, 18, 0, 1), ps[0]);
        assert!(!ranked.contains(&ps[0]), "dead platform excluded");
        assert!(ranked.contains(&ps[1]));

        // Kill the would-be home: the reconciled plan must not route
        // moves toward a dead platform (or stale module locations).
        fleet.kill_platform(ps[0], 0).unwrap();
        let moves = hooks.plan_consolidation(&fleet);
        assert!(
            moves.is_empty(),
            "dead platforms can't be consolidation homes: {moves:?}"
        );
    }
}
