//! `StatefulFirewall` — the paper's canonical stateful middlebox: allow
//! selected outbound traffic and only *related* inbound traffic.

use std::any::Any;
use std::collections::HashMap;

use innet_packet::{pattern::PatternExpr, FlowKey, FlowTuple, Packet};

use crate::{
    args::ConfigArgs,
    element::{Context, Element, ElementError, PortCount, Sink},
};

/// Default idle timeout for connection-tracking entries (5 minutes, the
/// usual conntrack default).
pub const DEFAULT_TIMEOUT_S: f64 = 300.0;

/// `StatefulFirewall(allow EXPR, ..., [timeout SECS])`.
///
/// * Input 0 / output 0: inside → outside. Packets matching an allow rule
///   create or refresh a connection entry and pass; others are dropped.
/// * Input 1 / output 1: outside → inside. Packets pass only when they
///   belong to a live connection (the paper's Figure 2 `firewall_in`:
///   `if (p[firewall_tag]) return p; else NULL`).
///
/// Connection entries expire after the idle timeout — the mechanism the
/// paper leans on in §7 to bound implicit authorizations in time.
#[derive(Debug)]
pub struct StatefulFirewall {
    allow: Vec<PatternExpr>,
    timeout_ns: u64,
    conns: HashMap<FlowTuple, u64>,
    passed_out: u64,
    passed_in: u64,
    dropped: u64,
}

impl StatefulFirewall {
    /// Builds a firewall from parsed rules.
    pub fn new(allow: Vec<PatternExpr>, timeout_ns: u64) -> StatefulFirewall {
        StatefulFirewall {
            allow,
            timeout_ns: timeout_ns.max(1),
            conns: HashMap::new(),
            passed_out: 0,
            passed_in: 0,
            dropped: 0,
        }
    }

    /// Parses `StatefulFirewall(...)`.
    pub fn from_args(args: &ConfigArgs) -> Result<StatefulFirewall, ElementError> {
        let bad = |message: String| ElementError::BadArgs {
            class: "StatefulFirewall",
            message,
        };
        let mut allow = Vec::new();
        let mut timeout_s = DEFAULT_TIMEOUT_S;
        for arg in args.all() {
            if let Some(rest) = arg.strip_prefix("timeout") {
                timeout_s = rest
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad timeout '{arg}'")))?;
                continue;
            }
            let expr_s = arg.strip_prefix("allow").unwrap_or(arg).trim();
            allow.push(
                expr_s
                    .parse::<PatternExpr>()
                    .map_err(|e| bad(format!("bad rule '{arg}': {e}")))?,
            );
        }
        if allow.is_empty() {
            return Err(bad("needs at least one allow rule".to_string()));
        }
        if timeout_s <= 0.0 {
            return Err(bad("timeout must be positive".to_string()));
        }
        Ok(StatefulFirewall::new(allow, (timeout_s * 1e9) as u64))
    }

    /// Number of live connection-tracking entries (including expired ones
    /// not yet reaped).
    pub fn tracked(&self) -> usize {
        self.conns.len()
    }

    /// Counters: (outbound passed, inbound passed, dropped).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.passed_out, self.passed_in, self.dropped)
    }

    /// The configured allow rules.
    pub fn allow_rules(&self) -> &[PatternExpr] {
        &self.allow
    }

    fn live(&self, key: &FlowTuple, now_ns: u64) -> bool {
        self.conns
            .get(key)
            .is_some_and(|&last| now_ns.saturating_sub(last) <= self.timeout_ns)
    }
}

impl Element for StatefulFirewall {
    fn class_name(&self) -> &'static str {
        "StatefulFirewall"
    }

    fn ports(&self) -> PortCount {
        PortCount::new(2, 2)
    }

    fn push(&mut self, port: usize, pkt: Packet, ctx: &Context, out: &mut dyn Sink) {
        let Ok(key) = FlowKey::of(&pkt) else {
            self.dropped += 1;
            return;
        };
        let canon = key.canonical();
        match port {
            0 => {
                // Inside -> outside: must match an allow rule.
                if self.allow.iter().any(|r| r.matches(&pkt)) {
                    self.conns.insert(canon, ctx.now_ns);
                    self.passed_out += 1;
                    out.push(0, pkt);
                } else {
                    self.dropped += 1;
                }
            }
            _ => {
                // Outside -> inside: only related traffic.
                if self.live(&canon, ctx.now_ns) {
                    self.conns.insert(canon, ctx.now_ns);
                    self.passed_in += 1;
                    out.push(1, pkt);
                } else {
                    self.dropped += 1;
                }
            }
        }
    }

    fn tick(&mut self, ctx: &Context, _out: &mut dyn Sink) {
        let timeout = self.timeout_ns;
        let now = ctx.now_ns;
        self.conns
            .retain(|_, &mut last| now.saturating_sub(last) <= timeout);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecSink;
    use innet_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn fw() -> StatefulFirewall {
        StatefulFirewall::from_args(&ConfigArgs::parse(
            "StatefulFirewall",
            "allow udp, timeout 60",
        ))
        .unwrap()
    }

    fn out_pkt() -> Packet {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(10, 0, 0, 5), 4000)
            .dst(Ipv4Addr::new(8, 8, 8, 8), 53)
            .build()
    }

    fn reply_pkt() -> Packet {
        PacketBuilder::udp()
            .src(Ipv4Addr::new(8, 8, 8, 8), 53)
            .dst(Ipv4Addr::new(10, 0, 0, 5), 4000)
            .build()
    }

    #[test]
    fn paper_figure1_scenario() {
        // Outbound UDP passes; the related reply comes back in; an
        // unrelated inbound packet is dropped.
        let mut f = fw();
        let mut s = VecSink::new();
        f.push(0, out_pkt(), &Context::at(0), &mut s);
        assert_eq!(s.pushed.len(), 1);
        assert_eq!(s.pushed[0].0, 0);

        f.push(1, reply_pkt(), &Context::at(1_000), &mut s);
        assert_eq!(s.pushed.len(), 2);
        assert_eq!(s.pushed[1].0, 1);

        let stranger = PacketBuilder::udp()
            .src(Ipv4Addr::new(6, 6, 6, 6), 1)
            .dst(Ipv4Addr::new(10, 0, 0, 5), 4000)
            .build();
        f.push(1, stranger, &Context::at(2_000), &mut s);
        assert_eq!(s.pushed.len(), 2, "unrelated inbound dropped");
        assert_eq!(f.counters(), (1, 1, 1));
    }

    #[test]
    fn non_matching_outbound_dropped() {
        let mut f = fw();
        let mut s = VecSink::new();
        let tcp = PacketBuilder::tcp().build();
        f.push(0, tcp, &Context::at(0), &mut s);
        assert!(s.pushed.is_empty());
    }

    #[test]
    fn idle_timeout_revokes_authorization() {
        let mut f = fw(); // 60 s timeout.
        let mut s = VecSink::new();
        f.push(0, out_pkt(), &Context::at(0), &mut s);
        // 61 virtual seconds later the reply no longer passes.
        f.push(1, reply_pkt(), &Context::at(61_000_000_000), &mut s);
        assert_eq!(s.pushed.len(), 1);
    }

    #[test]
    fn reply_refreshes_timer() {
        let mut f = fw();
        let mut s = VecSink::new();
        f.push(0, out_pkt(), &Context::at(0), &mut s);
        f.push(1, reply_pkt(), &Context::at(50_000_000_000), &mut s);
        // 50 s after the reply (100 s after the request) still passes.
        f.push(1, reply_pkt(), &Context::at(100_000_000_000), &mut s);
        assert_eq!(s.pushed.len(), 3);
    }

    #[test]
    fn tick_reaps_expired_entries() {
        let mut f = fw();
        let mut s = VecSink::new();
        f.push(0, out_pkt(), &Context::at(0), &mut s);
        assert_eq!(f.tracked(), 1);
        f.tick(&Context::at(120_000_000_000), &mut s);
        assert_eq!(f.tracked(), 0);
    }

    #[test]
    fn rules_without_allow_prefix_accepted() {
        let f = StatefulFirewall::from_args(&ConfigArgs::parse("StatefulFirewall", "udp"));
        assert!(f.is_ok());
    }

    #[test]
    fn bad_args_rejected() {
        assert!(StatefulFirewall::from_args(&ConfigArgs::parse("StatefulFirewall", "")).is_err());
        assert!(StatefulFirewall::from_args(&ConfigArgs::parse(
            "StatefulFirewall",
            "allow udp, timeout -3"
        ))
        .is_err());
    }
}
