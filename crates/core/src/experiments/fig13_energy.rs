//! Figure 13: mobile energy consumption versus the batching interval of
//! the push-notification module (the §4.5 unifying example measured).
//!
//! The experiment runs the *actual* Figure 4 batcher configuration in the
//! Click runtime: one 1 KB UDP notification arrives every 30 s, the
//! `TimedUnqueue` releases batches every `interval`, and the resulting
//! delivery schedule drives the 3G radio energy model.

use innet_click::{ClickConfig, Registry, Router};
use innet_packet::PacketBuilder;
use innet_sim::des::SimTime;
use innet_sim::energy::{average_power_mw, download_power_mw, DownloadPower, RadioParams};
use std::net::Ipv4Addr;

/// One measurement point.
#[derive(Debug, Clone, Copy)]
pub struct EnergyPoint {
    /// Batching interval in seconds.
    pub interval_s: u64,
    /// Average device power in mW.
    pub avg_power_mw: f64,
    /// Notifications delivered.
    pub delivered: usize,
}

/// Runs the batcher for `duration` with one notification every
/// `notify_every`, collecting the delivery schedule from the real
/// element graph.
pub fn push_energy(
    intervals_s: &[u64],
    notify_every: SimTime,
    duration: SimTime,
) -> Vec<EnergyPoint> {
    intervals_s
        .iter()
        .map(|&interval_s| {
            let cfg = ClickConfig::parse(&format!(
                "FromNetfront() \
                 -> IPFilter(allow udp dst port 1500) \
                 -> IPRewriter(pattern - - 172.16.15.133 - 0 0) \
                 -> TimedUnqueue({interval_s}, 100) \
                 -> ToNetfront();"
            ))
            .expect("valid config");
            let mut router =
                Router::from_config(&cfg, &Registry::standard()).expect("instantiates");

            let mut deliveries: Vec<SimTime> = Vec::new();
            let mut t: SimTime = 0;
            while t < duration {
                let pkt = PacketBuilder::udp()
                    .src(Ipv4Addr::new(8, 8, 8, 8), 9999)
                    .dst(Ipv4Addr::new(203, 0, 113, 10), 1500)
                    .payload(&[0u8; 1000])
                    .build();
                router.deliver(0, pkt, t).expect("interface exists");
                deliveries.extend(router.take_tx().iter().map(|_| t));
                // Drive ticks up to the next notification.
                let next = t + notify_every;
                while let Some(tick_at) = router.next_tick_ns() {
                    if tick_at > next {
                        break;
                    }
                    let released = router.tick(tick_at);
                    deliveries.extend(released.iter().map(|_| tick_at));
                }
                t = next;
            }
            deliveries.sort_unstable();
            // Radio wake-ups: one per delivery *batch* (deliveries within
            // the same instant share a wake-up).
            let mut wakeups = deliveries.clone();
            wakeups.dedup();

            EnergyPoint {
                interval_s,
                avg_power_mw: average_power_mw(&RadioParams::default(), &wakeups, duration),
                delivered: deliveries.len(),
            }
        })
        .collect()
}

/// The §8 HTTP-vs-HTTPS download power comparison.
pub fn http_vs_https_mw() -> (f64, f64) {
    let p = DownloadPower::default();
    (download_power_mw(&p, false), download_power_mw(&p, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use innet_sim::des::SECOND;

    #[test]
    fn figure13_shape_and_endpoints() {
        let hour = 3600 * SECOND;
        let pts = push_energy(&[30, 60, 120, 240], 30 * SECOND, hour);
        assert_eq!(pts.len(), 4);
        // Monotone decline with the batching interval.
        for w in pts.windows(2) {
            assert!(
                w[0].avg_power_mw > w[1].avg_power_mw,
                "{:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // Paper endpoints: ≈240 mW at 30 s, ≈140 mW at 240 s.
        assert!(
            (220.0..=260.0).contains(&pts[0].avg_power_mw),
            "{:?}",
            pts[0]
        );
        assert!(
            (120.0..=155.0).contains(&pts[3].avg_power_mw),
            "{:?}",
            pts[3]
        );
    }

    #[test]
    fn no_notifications_lost_to_batching() {
        let hour = 3600 * SECOND;
        let pts = push_energy(&[120], 30 * SECOND, hour);
        // All notifications that had a release opportunity arrive.
        assert!(pts[0].delivered >= 110, "{:?}", pts[0]);
    }

    #[test]
    fn https_overhead() {
        let (http, https) = http_vs_https_mw();
        assert_eq!((http, https), (570.0, 650.0));
    }
}
