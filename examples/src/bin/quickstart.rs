//! Quickstart: stand up an operator network, deploy a verified processing
//! module, and push real packets through the platform.
//!
//! Run with: `cargo run -p innet-examples --bin quickstart`

use innet::prelude::*;
use innet::symnet;

fn main() {
    // 1. The operator's network (the paper's Figure 3) and controller.
    let mut ctl = Controller::new(Topology::figure3());

    // 2. A mobile customer registers, declaring the addresses it owns.
    ctl.register_client(
        "mobile-7",
        RequesterClass::Client,
        vec!["172.16.15.133".parse().unwrap()],
    );

    // 3. The customer submits the paper's Figure 4 request: a batching
    //    UDP-notification module, plus the requirements that must hold.
    let request = ClientRequest::parse(
        r#"
        module batcher:
        FromNetfront()
          -> IPFilter(allow udp dst port 1500)
          -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
          -> TimedUnqueue(120, 100)
          -> dst :: ToNetfront();

        reach from internet udp
          -> batcher:dst:0 dst 172.16.15.133
          -> client dst port 1500
          const proto && dst port && payload
        "#,
    )
    .expect("request parses");

    // 4. The controller statically verifies and places the module.
    let resp = ctl.deploy("mobile-7", request).expect("deployable");
    println!("deployed '{}' on {}", resp.module_name, resp.platform);
    println!("  module address : {}", resp.public_addr);
    println!("  sandboxed      : {}", resp.sandboxed);
    println!(
        "  verification   : compile {:.1} ms + check {:.1} ms",
        resp.compile_ns as f64 / 1e6,
        resp.check_ns as f64 / 1e6
    );

    // 5. The module is a real Click graph: run packets through it.
    let module = &ctl.modules()[0];
    let mut router =
        Router::from_config(&module.config, &Registry::standard()).expect("instantiates");
    let notification = PacketBuilder::udp()
        .src("8.8.8.8".parse().unwrap(), 9999)
        .dst(resp.public_addr, 1500)
        .payload(b"you have mail")
        .build();
    router.deliver(0, notification, 0).expect("delivered");
    println!("\ninjected one notification; batcher holds it…");
    assert!(router.take_tx().is_empty());

    let released = router.tick(120_000_000_000);
    let out = &released[0].1;
    println!(
        "released after 120 s: dst {} port {} payload {:?}",
        out.ipv4().unwrap().dst(),
        out.udp().unwrap().dst_port(),
        std::str::from_utf8(out.payload().unwrap()).unwrap()
    );

    // 6. A hostile request is rejected by static analysis.
    let evil =
        ClientRequest::parse("module evil:\nFromNetfront() -> SetIPSrc(8.8.8.8) -> ToNetfront();")
            .unwrap();
    match ctl.deploy("mobile-7", evil) {
        Err(DeployError::SecurityReject(report)) => {
            println!("\nspoofing module rejected, as it must be:");
            for v in &report.violations {
                println!("  - {v}");
            }
            assert_eq!(report.verdict, symnet::Verdict::Reject);
        }
        other => panic!("expected a security rejection, got {other:?}"),
    }
}
